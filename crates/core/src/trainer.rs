//! The RLL training loop.

use crate::error::RllError;
use crate::group::{GroupSampler, SamplingStrategy};
use crate::loss::group_softmax_loss;
use crate::model::{RllModel, RllModelConfig};
use crate::state::{config_hash, CheckpointPolicy, FaultPlan, TrainState};
use crate::Result;
use rll_crowd::aggregate::{Aggregator, MajorityVote};
use rll_crowd::{AnnotationMatrix, BetaPrior, ConfidenceEstimator};
use rll_nn::{Adam, GradClip, Optimizer};
use rll_obs::{
    CheckpointStats, EpochProfileStats, EpochStats, EventKind, ProfileNode, Recorder, ResumeStats,
    SamplerStats, Stopwatch,
};
use rll_tensor::{debug_assert_finite, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Which of the paper's RLL variants to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RllVariant {
    /// `RLL`: no confidence weighting (every `δ = 1`).
    Plain,
    /// `RLL+MLE`: confidence from the vote fraction (eq. 1).
    Mle,
    /// `RLL+Bayesian`: confidence from the Beta-posterior mean (eq. 2), with
    /// the prior set from the label class prior as the paper prescribes.
    Bayesian,
    /// `RLL+Worker`: this reproduction's implementation of the paper's stated
    /// future work — confidence from a Dawid–Skene fit, so each worker's vote
    /// is weighted by that worker's estimated confusion matrix.
    WorkerAware,
}

impl RllVariant {
    /// Method name as it appears in Table I (`RLL+Worker` is this
    /// reproduction's extension and does not appear in the paper).
    pub fn name(&self) -> &'static str {
        match self {
            RllVariant::Plain => "RLL",
            RllVariant::Mle => "RLL+MLE",
            RllVariant::Bayesian => "RLL+Bayesian",
            RllVariant::WorkerAware => "RLL+Worker",
        }
    }
}

/// Hyperparameters for RLL training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RllConfig {
    /// Which confidence estimator to use.
    pub variant: RllVariant,
    /// Softmax smoothing `η` (set empirically on held-out data in the paper).
    pub eta: f64,
    /// Negatives per group (the paper's best value is 3; Table II sweeps it).
    pub k: usize,
    /// Encoder hidden layers.
    pub hidden_dims: Vec<usize>,
    /// Embedding dimension.
    pub embedding_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Groups sampled per epoch.
    pub groups_per_epoch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Total pseudo-count `α + β` of the Bayesian prior.
    pub prior_strength: f64,
    /// Negative sampling strategy (the paper's scheme is uniform; the biased
    /// variant is this reproduction's ablation extension).
    pub sampling: SamplingStrategy,
    /// Optional global-norm gradient clipping.
    pub grad_clip: Option<f64>,
    /// Optional learning-rate schedule; `None` keeps `learning_rate` fixed.
    /// When set, the schedule's rate at each epoch overrides `learning_rate`.
    pub lr_schedule: Option<rll_nn::LrSchedule>,
}

impl Default for RllConfig {
    fn default() -> Self {
        RllConfig {
            variant: RllVariant::Bayesian,
            eta: 10.0,
            k: 3,
            hidden_dims: vec![64, 32],
            embedding_dim: 16,
            epochs: 30,
            groups_per_epoch: 256,
            learning_rate: 1e-3,
            prior_strength: 2.0,
            sampling: SamplingStrategy::Uniform,
            grad_clip: Some(5.0),
            lr_schedule: None,
        }
    }
}

impl RllConfig {
    /// Validates all parameters.
    pub fn validate(&self) -> Result<()> {
        if self.eta <= 0.0 || !self.eta.is_finite() {
            return Err(RllError::InvalidConfig {
                reason: format!("eta must be positive, got {}", self.eta),
            });
        }
        if self.k == 0 {
            return Err(RllError::InvalidConfig {
                reason: "k must be at least 1".into(),
            });
        }
        if self.embedding_dim == 0 || self.epochs == 0 || self.groups_per_epoch == 0 {
            return Err(RllError::InvalidConfig {
                reason: "embedding_dim, epochs, and groups_per_epoch must be positive".into(),
            });
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(RllError::InvalidConfig {
                reason: format!("learning_rate must be positive, got {}", self.learning_rate),
            });
        }
        if self.prior_strength <= 0.0 || !self.prior_strength.is_finite() {
            return Err(RllError::InvalidConfig {
                reason: format!(
                    "prior_strength must be positive, got {}",
                    self.prior_strength
                ),
            });
        }
        if let Some(c) = self.grad_clip {
            if c <= 0.0 || !c.is_finite() {
                return Err(RllError::InvalidConfig {
                    reason: format!("grad_clip must be positive, got {c}"),
                });
            }
        }
        if let Some(schedule) = &self.lr_schedule {
            schedule.validate()?;
        }
        Ok(())
    }
}

/// Per-epoch diagnostics from a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingTrace {
    /// Mean group loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Labels inferred from the crowd (majority vote) that training used.
    pub inferred_labels: Vec<u8>,
    /// Per-item label confidences `δ` that eq. (3) used.
    pub confidences: Vec<f64>,
    /// Global gradient norm per epoch, before clipping.
    pub grad_norms_pre_clip: Vec<f64>,
    /// Global gradient norm per epoch, after clipping (equal to the pre-clip
    /// norm when clipping is off or the threshold was not hit).
    pub grad_norms_post_clip: Vec<f64>,
    /// Wall-clock seconds per epoch.
    pub epoch_wall_secs: Vec<f64>,
    /// Per-epoch profiler frame trees ([`RllTrainer::with_profiling`]);
    /// empty when profiling is off. Timings are observability data only —
    /// they never influence the math, so a profiled run's model is bitwise
    /// identical to an unprofiled one's.
    pub epoch_profiles: Vec<EpochProfileStats>,
}

/// Groups per gradient shard. Shard boundaries are a pure function of the
/// batch size — **never** of the thread count — so the shard-order gradient
/// reduction in [`RllTrainer::fit`] produces bitwise-identical weights at
/// any `RLL_THREADS` setting.
const SHARD_GROUPS: usize = 16;

/// Trains [`RllModel`]s from features + crowd annotations.
#[derive(Debug, Clone)]
pub struct RllTrainer {
    config: RllConfig,
    recorder: Recorder,
    threads: usize,
    checkpoint: Option<CheckpointPolicy>,
    fault: Option<FaultPlan>,
    profile: bool,
}

impl RllTrainer {
    /// Creates a trainer after validating the config. Telemetry is disabled
    /// until a recorder is attached with [`Self::with_recorder`]; the
    /// worker-thread count defaults to [`rll_par::configured_threads`]
    /// (the `RLL_THREADS` knob).
    pub fn new(config: RllConfig) -> Result<Self> {
        config.validate()?;
        Ok(RllTrainer {
            config,
            recorder: Recorder::disabled(),
            threads: rll_par::configured_threads(),
            checkpoint: None,
            fault: None,
            profile: false,
        })
    }

    /// Enables the per-epoch phase profiler: every epoch [`Self::fit`] emits
    /// an `EpochProfile` event (sample / shard fan-out {forward, backward} /
    /// shard-reduce / adam step / snapshot write) and appends the frame tree
    /// to [`TrainingTrace::epoch_profiles`]. Profiling only reads clocks —
    /// the trained model is bitwise identical with it on or off (gated in
    /// `scripts/check.sh`).
    pub fn with_profiling(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Enables crash-safe checkpointing: [`Self::fit`] atomically writes a
    /// [`TrainState`] snapshot to the policy's path after every
    /// `every_epochs` completed epochs. A later [`Self::resume`] from that
    /// snapshot finishes the run with bitwise-identical results.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Injects a crash for the fault-injection harness: [`Self::fit`]
    /// returns [`RllError::Interrupted`] right after the plan's epoch
    /// completes (and after any due checkpoint write). Test-only plumbing —
    /// production runs never set this.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches a telemetry recorder; [`Self::fit`] will emit per-epoch
    /// `EpochEnd`, `SamplerBatch`, and `ConfidenceSummary` events through it.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Overrides the worker-thread count (0 is treated as 1). Training
    /// results are bitwise identical for every value — see
    /// [`Self::fit`] — so this knob trades wall-clock time only.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The worker-thread count [`Self::fit`] will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached recorder (a disabled one by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The hyperparameters.
    pub fn config(&self) -> &RllConfig {
        &self.config
    }

    /// Builds the vote-counting confidence estimator for the configured
    /// variant, given the positive prior of the crowd-inferred labels.
    /// [`RllVariant::WorkerAware`] does not reduce to a per-item vote count —
    /// it needs the full Dawid–Skene fit — so it is rejected here and handled
    /// directly in [`RllTrainer::fit`].
    pub fn confidence_estimator(&self, positive_prior: f64) -> Result<ConfidenceEstimator> {
        Ok(match self.config.variant {
            RllVariant::Plain => ConfidenceEstimator::None,
            RllVariant::Mle => ConfidenceEstimator::Mle,
            RllVariant::Bayesian => {
                let prior = BetaPrior::from_class_prior(
                    positive_prior.clamp(0.05, 0.95),
                    self.config.prior_strength,
                )?;
                ConfidenceEstimator::Bayesian(prior)
            }
            RllVariant::WorkerAware => {
                return Err(RllError::InvalidConfig {
                    reason:
                        "WorkerAware confidence requires the annotation table; use RllTrainer::fit"
                            .into(),
                })
            }
        })
    }

    /// Computes the per-item label confidences `δ` for any variant.
    pub fn compute_confidences(
        &self,
        annotations: &AnnotationMatrix,
        labels: &[u8],
        positive_prior: f64,
    ) -> Result<Vec<f64>> {
        match self.config.variant {
            RllVariant::WorkerAware => {
                let fit = rll_crowd::aggregate::DawidSkene::default().fit(annotations)?;
                Ok(
                    rll_crowd::confidence::worker_aware_label_confidences_observed(
                        &fit,
                        labels,
                        &self.recorder,
                    )?,
                )
            }
            _ => {
                let estimator = self.confidence_estimator(positive_prior)?;
                Ok(estimator.label_confidences_observed(annotations, labels, &self.recorder)?)
            }
        }
    }

    /// Full training run: infer labels, estimate confidences, sample groups,
    /// optimize the encoder.
    pub fn fit(
        &self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        seed: u64,
    ) -> Result<(RllModel, TrainingTrace)> {
        self.fit_from(features, annotations, seed, None)
    }

    /// Continues an interrupted run from a [`TrainState`] snapshot, finishing
    /// with **bitwise-identical** weights, trace, and embeddings to the run
    /// that was never interrupted (`features`/`annotations` must be the same
    /// data the snapshot's run trained on; the seed comes from the snapshot).
    ///
    /// Rejects snapshots from a different config or incompatible data with
    /// [`RllError::ResumeMismatch`].
    pub fn resume(
        &self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        state: TrainState,
    ) -> Result<(RllModel, TrainingTrace)> {
        let seed = state.meta.seed;
        self.fit_from(features, annotations, seed, Some(state))
    }

    /// Rejects snapshots that do not belong to this trainer + data.
    fn check_resumable(&self, state: &TrainState, features: &Matrix) -> Result<()> {
        let expected = config_hash(&self.config)?;
        if state.meta.config_hash != expected {
            return Err(RllError::ResumeMismatch {
                reason: format!(
                    "snapshot was written under config hash {:#018x}, this trainer is {expected:#018x}",
                    state.meta.config_hash
                ),
            });
        }
        let snapshot_dim = state.model.config().input_dim;
        if snapshot_dim != features.cols() {
            return Err(RllError::ResumeMismatch {
                reason: format!(
                    "snapshot encoder expects input_dim {snapshot_dim}, features have {} columns",
                    features.cols()
                ),
            });
        }
        Ok(())
    }

    /// Shared fresh-start / resume training loop.
    fn fit_from(
        &self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        seed: u64,
        resume: Option<TrainState>,
    ) -> Result<(RllModel, TrainingTrace)> {
        if features.rows() != annotations.num_items() {
            return Err(RllError::InvalidConfig {
                reason: format!(
                    "{} feature rows for {} annotated items",
                    features.rows(),
                    annotations.num_items()
                ),
            });
        }
        if features.rows() == 0 {
            return Err(RllError::DegenerateData {
                reason: "no training examples".into(),
            });
        }

        // Step 1: crowd labels → hard training labels (majority vote, as the
        // paper's group-4 setup prescribes).
        let labels = MajorityVote::positive_ties().hard_labels(annotations)?;
        let positive_prior =
            labels.iter().filter(|&&l| l == 1).count() as f64 / labels.len() as f64;

        // Step 2: per-item label confidence δ (eq. 1 / eq. 2 / all-ones /
        // worker-aware Dawid–Skene posterior).
        let confidences = self.compute_confidences(annotations, &labels, positive_prior)?;

        // Step 3: grouping layer.
        let sampler = GroupSampler::new(
            &labels,
            self.config.k,
            self.config.sampling,
            Some(&confidences),
        )?;

        // Step 4: optimize the shared encoder.
        let mut rng = Rng64::seed_from_u64(seed);
        let mut model = RllModel::new(
            RllModelConfig {
                input_dim: features.cols(),
                hidden_dims: self.config.hidden_dims.clone(),
                embedding_dim: self.config.embedding_dim,
                ..RllModelConfig::for_input(features.cols())
            },
            &mut rng,
        )?;
        let mut opt = Adam::new(self.config.learning_rate)?;
        let clip = self.config.grad_clip.map(GradClip::new).transpose()?;

        let _fit_span = self.recorder.span("train.fit");
        self.recorder
            .metrics()
            .gauge("train.threads")
            .set(self.threads as f64);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        let mut grad_norms_pre_clip = Vec::with_capacity(self.config.epochs);
        let mut grad_norms_post_clip = Vec::with_capacity(self.config.epochs);
        let mut epoch_wall_secs = Vec::with_capacity(self.config.epochs);
        let mut epoch_profiles: Vec<EpochProfileStats> = Vec::new();
        let mut start_epoch = 0;
        if let Some(state) = resume {
            self.check_resumable(&state, features)?;
            // Swap in the snapshot: weights, optimizer moments, and the
            // sampling RNG continue exactly where the interrupted run left
            // off. Labels/confidences/sampler above were recomputed rather
            // than stored — they are pure functions of the data and config,
            // so they match the original run's by construction.
            model = state.model;
            opt.restore(state.optimizer)?;
            rng = Rng64::from_state(&state.rng)?;
            start_epoch = state.meta.epochs_done;
            epoch_losses = state.trace.epoch_losses;
            grad_norms_pre_clip = state.trace.grad_norms_pre_clip;
            grad_norms_post_clip = state.trace.grad_norms_post_clip;
            epoch_wall_secs = state.trace.epoch_wall_secs;
            epoch_profiles = state.trace.epoch_profiles;
            self.recorder.emit(EventKind::ResumeFrom(ResumeStats {
                epochs_done: start_epoch,
                total_epochs: self.config.epochs,
                seed,
            }));
        }
        for epoch in start_epoch..self.config.epochs {
            let epoch_start = Stopwatch::start();
            let learning_rate = match &self.config.lr_schedule {
                Some(schedule) => {
                    let lr = schedule.at_epoch(epoch);
                    opt.set_learning_rate(lr);
                    lr
                }
                None => self.config.learning_rate,
            };

            let sample_start = Stopwatch::start();
            let (groups, batch_stats) =
                sampler.sample_batch_with_stats(self.config.groups_per_epoch, &mut rng)?;
            let sample_secs = sample_start.elapsed_secs();
            self.recorder.emit(EventKind::SamplerBatch(SamplerStats {
                groups: batch_stats.groups,
                positive_pool: batch_stats.positive_pool,
                negative_pool: batch_stats.negative_pool,
                rejections: batch_stats.rejections,
                fallbacks: batch_stats.fallbacks,
                duplicate_rate: batch_stats.duplicate_rate,
            }));
            let metrics = self.recorder.metrics();
            metrics
                .counter("train.groups_sampled")
                .add(groups.len() as u64);
            metrics
                .counter("train.sampler_rejections")
                .add(batch_stats.rejections);
            metrics
                .counter("train.sampler_fallbacks")
                .add(batch_stats.fallbacks);

            // Forward/backward over the batch, sharded across worker threads.
            // Determinism contract (holds for every thread count, including
            // 1): shard boundaries are fixed by SHARD_GROUPS alone; each
            // shard accumulates gradients into a thread-local clone in
            // serial group order; partials are reduced into the model in
            // shard-index order below. Only scheduling varies with
            // `self.threads` — never which floats are added in which order.
            model.mlp_mut().zero_grad();
            let shards = rll_par::fixed_shards(groups.len(), SHARD_GROUPS);
            let fanout_start = Stopwatch::start();
            let (shard_outputs, shard_secs) = {
                let mlp = model.mlp();
                let groups = &groups;
                let confidences = &confidences;
                rll_par::try_map_ordered_timed(&shards, self.threads, |shard_idx, range| {
                    // The RLL encoder trains with dropout 0, so this rng is
                    // never consulted; seeding it from (seed, epoch, shard)
                    // keeps the stream thread-count-independent if a future
                    // config ever enables dropout.
                    let mut shard_rng = Rng64::seed_from_u64(
                        seed ^ ((epoch as u64) << 24) ^ ((shard_idx as u64) << 8),
                    );
                    let mut local = mlp.clone();
                    local.zero_grad();
                    let mut loss_sum = 0.0;
                    let mut forward_secs = 0.0;
                    let mut backward_secs = 0.0;
                    for group in &groups[range.clone()] {
                        let members = group.members();
                        let forward_start = Stopwatch::start();
                        let member_features = features.select_rows(&members)?;
                        let cache = local.forward_cached(&member_features, &mut shard_rng)?;
                        // Candidate confidences: δ_j for the positive, then
                        // the negatives' δ, in member order.
                        let cand_conf: Vec<f64> =
                            members[1..].iter().map(|&m| confidences[m]).collect();
                        let (loss, grads) =
                            group_softmax_loss(cache.output(), &cand_conf, self.config.eta)?;
                        forward_secs += forward_start.elapsed_secs();
                        loss_sum += loss;
                        let backward_start = Stopwatch::start();
                        local.backward(&cache, &grads)?;
                        backward_secs += backward_start.elapsed_secs();
                    }
                    Ok::<_, RllError>((loss_sum, forward_secs, backward_secs, local))
                })?
            };
            let fanout_secs = fanout_start.elapsed_secs();
            // Per-shard wall times (worker-side, so at >1 thread they overlap
            // and can sum past the fan-out wall — CPU time, not elapsed).
            let shard_histogram = metrics.duration_histogram("train.shard.secs");
            for &secs in &shard_secs {
                shard_histogram.observe(secs);
            }
            let reduce_start = Stopwatch::start();
            let mut total_loss = 0.0;
            let mut forward_secs = 0.0;
            let mut backward_secs = 0.0;
            for (loss_sum, fwd, bwd, shard_mlp) in &shard_outputs {
                total_loss += loss_sum;
                forward_secs += fwd;
                backward_secs += bwd;
                model.mlp_mut().add_grads_from(shard_mlp)?;
            }
            let reduce_secs = reduce_start.elapsed_secs();

            let step_start = Stopwatch::start();
            model.mlp_mut().scale_grads(1.0 / groups.len() as f64);
            let mut params = model.mlp_mut().param_grad_pairs();
            let grad_norm_pre_clip = global_grad_norm(params.iter().map(|(_, g)| g));
            debug_assert_finite!([grad_norm_pre_clip], "epoch gradient norm (pre-clip)");
            let grad_norm_post_clip = match &clip {
                Some(clip) => {
                    let mut grads: Vec<Matrix> = params.iter().map(|(_, g)| g.clone()).collect();
                    clip.clip(&mut grads);
                    let post = global_grad_norm(grads.iter());
                    for ((_, g), clipped) in params.iter_mut().zip(grads) {
                        *g = clipped;
                    }
                    post
                }
                None => grad_norm_pre_clip,
            };
            opt.step(params)?;
            let step_secs = step_start.elapsed_secs();

            let mean_loss = total_loss / groups.len() as f64;
            let wall_secs = epoch_start.elapsed_secs();
            self.recorder.emit(EventKind::EpochEnd(EpochStats {
                epoch,
                mean_loss,
                grad_norm_pre_clip,
                grad_norm_post_clip,
                learning_rate,
                groups_sampled: groups.len(),
                wall_secs,
                sample_secs,
                forward_secs,
                backward_secs,
                step_secs,
            }));
            metrics.duration_histogram("train.epoch").observe(wall_secs);
            metrics.gauge("train.mean_loss").set(mean_loss);

            epoch_losses.push(mean_loss);
            grad_norms_pre_clip.push(grad_norm_pre_clip);
            grad_norms_post_clip.push(grad_norm_post_clip);
            epoch_wall_secs.push(wall_secs);

            let epochs_done = epoch + 1;
            let mut snapshot_write_secs = None;
            if let Some(policy) = &self.checkpoint {
                if policy.due_after(epochs_done) {
                    let write_start = Stopwatch::start();
                    let state = TrainState::new(
                        &self.config,
                        seed,
                        epochs_done,
                        self.recorder.run_id(),
                        model.clone(),
                        opt.state(),
                        rng.state(),
                        TrainingTrace {
                            epoch_losses: epoch_losses.clone(),
                            inferred_labels: labels.clone(),
                            confidences: confidences.clone(),
                            grad_norms_pre_clip: grad_norms_pre_clip.clone(),
                            grad_norms_post_clip: grad_norms_post_clip.clone(),
                            epoch_wall_secs: epoch_wall_secs.clone(),
                            epoch_profiles: epoch_profiles.clone(),
                        },
                    )?;
                    let bytes = state.save(policy.path())?;
                    let write_secs = write_start.elapsed_secs();
                    self.recorder
                        .emit(EventKind::CheckpointWritten(CheckpointStats {
                            epochs_done,
                            path: policy.path().display().to_string(),
                            bytes,
                            write_secs,
                        }));
                    metrics.counter("train.checkpoints_written").add(1);
                    snapshot_write_secs = Some(write_secs);
                }
            }
            if self.profile {
                // The root's total is re-read here so it covers the snapshot
                // write; forward/backward are worker-side sums, so under
                // parallelism they can exceed the fan-out wall (CPU time
                // inside a wall-time frame — self time floors at zero).
                let mut root = ProfileNode::new("epoch");
                root.add(epoch_start.elapsed_secs());
                root.child("sample").add(sample_secs);
                let fanout = root.child("shard_fanout");
                fanout.add(fanout_secs);
                fanout.child("forward").add(forward_secs);
                fanout.child("backward").add(backward_secs);
                root.child("shard_reduce").add(reduce_secs);
                root.child("adam_step").add(step_secs);
                if let Some(secs) = snapshot_write_secs {
                    root.child("snapshot_write").add(secs);
                }
                let profile = EpochProfileStats { epoch, root };
                self.recorder.emit(EventKind::EpochProfile(profile.clone()));
                epoch_profiles.push(profile);
            }
            // The injected crash fires *after* any due snapshot write — a
            // real crash between epochs lands the same way.
            if let Some(plan) = &self.fault {
                if plan.kill_after_epoch == epoch {
                    return Err(RllError::Interrupted { epochs_done });
                }
            }
        }

        Ok((
            model,
            TrainingTrace {
                epoch_losses,
                inferred_labels: labels,
                confidences,
                grad_norms_pre_clip,
                grad_norms_post_clip,
                epoch_wall_secs,
                epoch_profiles,
            },
        ))
    }
}

/// Global L2 norm over a set of gradient matrices.
fn global_grad_norm<'a>(grads: impl Iterator<Item = &'a Matrix>) -> f64 {
    grads
        .map(|g| g.frobenius_norm().powi(2))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_crowd::simulate::{WorkerModel, WorkerPool};

    fn crowd_dataset(n: usize, seed: u64) -> (Matrix, AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.6));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.6).unwrap(),
                rng.normal(-c, 0.6).unwrap(),
                rng.normal(0.0, 1.0).unwrap(),
            ]);
            truth.push(l);
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let pool = WorkerPool::new(vec![
            WorkerModel::OneCoin { accuracy: 0.85 },
            WorkerModel::OneCoin { accuracy: 0.8 },
            WorkerModel::OneCoin { accuracy: 0.75 },
            WorkerModel::OneCoin { accuracy: 0.8 },
            WorkerModel::OneCoin { accuracy: 0.9 },
        ]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (features, ann, truth)
    }

    fn fast_config(variant: RllVariant) -> RllConfig {
        RllConfig {
            variant,
            epochs: 15,
            groups_per_epoch: 64,
            ..Default::default()
        }
    }

    #[test]
    fn loss_decreases_during_training() {
        let (x, ann, _) = crowd_dataset(80, 1);
        let trainer = RllTrainer::new(fast_config(RllVariant::Bayesian)).unwrap();
        let (_, trace) = trainer.fit(&x, &ann, 3).unwrap();
        let first = trace.epoch_losses.first().unwrap();
        let last = trace.epoch_losses.last().unwrap();
        assert!(last < first, "loss {first} -> {last} should decrease");
    }

    #[test]
    fn embeddings_separate_classes() {
        let (x, ann, truth) = crowd_dataset(100, 2);
        let trainer = RllTrainer::new(RllConfig {
            epochs: 40,
            ..fast_config(RllVariant::Bayesian)
        })
        .unwrap();
        let (model, _) = trainer.fit(&x, &ann, 4).unwrap();
        let emb = model.embed(&x).unwrap();
        // Mean cosine similarity within class should beat across class.
        let mut same = 0.0;
        let mut same_n = 0;
        let mut diff = 0.0;
        let mut diff_n = 0;
        for i in 0..emb.rows() {
            for j in (i + 1)..emb.rows() {
                let c =
                    rll_tensor::ops::cosine_similarity(emb.row(i).unwrap(), emb.row(j).unwrap())
                        .unwrap();
                if truth[i] == truth[j] {
                    same += c;
                    same_n += 1;
                } else {
                    diff += c;
                    diff_n += 1;
                }
            }
        }
        let (same, diff) = (same / same_n as f64, diff / diff_n as f64);
        assert!(same > diff + 0.2, "same-cos {same} vs diff-cos {diff}");
    }

    #[test]
    fn all_variants_train() {
        let (x, ann, _) = crowd_dataset(60, 5);
        for variant in [RllVariant::Plain, RllVariant::Mle, RllVariant::Bayesian] {
            let trainer = RllTrainer::new(fast_config(variant)).unwrap();
            let (model, trace) = trainer.fit(&x, &ann, 6).unwrap();
            assert_eq!(model.embedding_dim(), 16);
            assert_eq!(trace.inferred_labels.len(), 60);
            assert_eq!(trace.confidences.len(), 60);
            assert!(!variant.name().is_empty());
        }
    }

    #[test]
    fn variant_confidences_differ_as_specified() {
        let (x, ann, _) = crowd_dataset(50, 7);
        let plain = RllTrainer::new(fast_config(RllVariant::Plain)).unwrap();
        let (_, trace_plain) = plain.fit(&x, &ann, 8).unwrap();
        assert!(trace_plain.confidences.iter().all(|&c| c == 1.0));

        let mle = RllTrainer::new(fast_config(RllVariant::Mle)).unwrap();
        let (_, trace_mle) = mle.fit(&x, &ann, 8).unwrap();
        assert!(trace_mle.confidences.iter().any(|&c| c < 1.0));

        let bay = RllTrainer::new(fast_config(RllVariant::Bayesian)).unwrap();
        let (_, trace_bay) = bay.fit(&x, &ann, 8).unwrap();
        // Bayesian shrinkage: no confidence exactly 1.
        assert!(trace_bay.confidences.iter().all(|&c| c < 1.0 && c > 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, ann, _) = crowd_dataset(40, 9);
        let trainer = RllTrainer::new(fast_config(RllVariant::Bayesian)).unwrap();
        let (m1, _) = trainer.fit(&x, &ann, 11).unwrap();
        let (m2, _) = trainer.fit(&x, &ann, 11).unwrap();
        assert!(m1.embed(&x).unwrap().approx_eq(&m2.embed(&x).unwrap(), 0.0));
        let (m3, _) = trainer.fit(&x, &ann, 12).unwrap();
        assert!(!m1
            .embed(&x)
            .unwrap()
            .approx_eq(&m3.embed(&x).unwrap(), 1e-9));
    }

    #[test]
    fn thread_count_never_changes_training_results() {
        // The tentpole invariant: bitwise-identical weights and losses for
        // any worker-thread count. assert_eq! on raw f64 matrices — no
        // tolerances anywhere.
        let (x, ann, _) = crowd_dataset(60, 21);
        let cfg = fast_config(RllVariant::Bayesian);
        let reference = RllTrainer::new(cfg.clone()).unwrap().with_threads(1);
        let (ref_model, ref_trace) = reference.fit(&x, &ann, 22).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let trainer = RllTrainer::new(cfg.clone()).unwrap().with_threads(threads);
            assert_eq!(trainer.threads(), threads);
            let (model, trace) = trainer.fit(&x, &ann, 22).unwrap();
            for (got, want) in model.mlp().layers().iter().zip(ref_model.mlp().layers()) {
                assert_eq!(got.weights(), want.weights(), "threads={threads}");
                assert_eq!(got.bias(), want.bias(), "threads={threads}");
            }
            assert_eq!(trace.epoch_losses, ref_trace.epoch_losses);
            assert_eq!(trace.grad_norms_pre_clip, ref_trace.grad_norms_pre_clip);
            assert_eq!(trace.grad_norms_post_clip, ref_trace.grad_norms_post_clip);
            assert_eq!(model.embed(&x).unwrap(), ref_model.embed(&x).unwrap());
        }
        // 0 is clamped to 1, not an error.
        let clamped = RllTrainer::new(cfg).unwrap().with_threads(0);
        assert_eq!(clamped.threads(), 1);
    }

    #[test]
    fn profiling_never_changes_training_results() {
        // The tracing-determinism contract at trainer level: a profiled run
        // must produce bitwise-identical weights, losses, and grad norms to
        // an unprofiled one — the profiler may read clocks, nothing else.
        let (x, ann, _) = crowd_dataset(50, 41);
        let cfg = fast_config(RllVariant::Bayesian);
        let plain = RllTrainer::new(cfg.clone()).unwrap();
        let (plain_model, plain_trace) = plain.fit(&x, &ann, 42).unwrap();
        assert!(plain_trace.epoch_profiles.is_empty());

        let profiled = RllTrainer::new(cfg).unwrap().with_profiling(true);
        let (model, trace) = profiled.fit(&x, &ann, 42).unwrap();
        for (got, want) in model.mlp().layers().iter().zip(plain_model.mlp().layers()) {
            assert_eq!(got.weights(), want.weights());
            assert_eq!(got.bias(), want.bias());
        }
        assert_eq!(trace.epoch_losses, plain_trace.epoch_losses);
        assert_eq!(trace.grad_norms_pre_clip, plain_trace.grad_norms_pre_clip);
        assert_eq!(trace.grad_norms_post_clip, plain_trace.grad_norms_post_clip);

        // One frame tree per epoch, with the documented phase taxonomy.
        assert_eq!(trace.epoch_profiles.len(), trace.epoch_losses.len());
        for (i, profile) in trace.epoch_profiles.iter().enumerate() {
            assert_eq!(profile.epoch, i);
            assert_eq!(profile.root.name, "epoch");
            assert!(profile.root.total_secs > 0.0);
            let names: Vec<&str> = profile
                .root
                .children
                .iter()
                .map(|c| c.name.as_str())
                .collect();
            assert_eq!(
                names,
                vec!["sample", "shard_fanout", "shard_reduce", "adam_step"]
            );
            let fanout = &profile.root.children[1];
            assert!(fanout.children.iter().any(|c| c.name == "forward"));
            assert!(fanout.children.iter().any(|c| c.name == "backward"));
        }
        // The EpochProfile events flowed through the recorder too.
        assert_eq!(
            profiled
                .recorder()
                .metrics()
                .counter("events.epoch_profile")
                .get(),
            trace.epoch_losses.len() as u64
        );
        // Per-shard timings landed in the shard histogram.
        assert!(
            profiled
                .recorder()
                .metrics()
                .duration_histogram("train.shard.secs")
                .count()
                > 0
        );
    }

    #[test]
    fn profiled_checkpoint_includes_snapshot_write_frame() {
        let (x, ann, _) = crowd_dataset(40, 43);
        let dir = std::env::temp_dir().join("rll_core_profile_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profiled.rllstate");
        let trainer = RllTrainer::new(fast_config(RllVariant::Bayesian))
            .unwrap()
            .with_profiling(true)
            .with_checkpoint_policy(CheckpointPolicy::every(&path, 5).unwrap());
        let (_, trace) = trainer.fit(&x, &ann, 44).unwrap();
        // Epochs 4 and 9 (1-based 5 and 10) wrote snapshots; their profiles
        // carry the snapshot_write frame, the others don't.
        let with_write: Vec<usize> = trace
            .epoch_profiles
            .iter()
            .filter(|p| p.root.children.iter().any(|c| c.name == "snapshot_write"))
            .map(|p| p.epoch)
            .collect();
        assert_eq!(with_write, vec![4, 9, 14]);
        // The persisted snapshot round-trips the profiles it has seen.
        let state = TrainState::load(&path).unwrap();
        assert_eq!(state.meta.epochs_done, 15);
        assert!(!state.trace.epoch_profiles.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_from_snapshot_is_bitwise_identical() {
        // The crash-safety contract in miniature: kill training at assorted
        // epochs, resume from the snapshot on disk, and require the final
        // weights and per-epoch losses to be *exactly* the uninterrupted
        // run's — assert_eq! on raw f64, no tolerances.
        let (x, ann, _) = crowd_dataset(50, 31);
        let cfg = fast_config(RllVariant::Bayesian);
        let golden = RllTrainer::new(cfg.clone()).unwrap();
        let (gold_model, gold_trace) = golden.fit(&x, &ann, 32).unwrap();

        let dir = std::env::temp_dir().join("rll_core_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        for kill_after in [1usize, 4, 7, 13] {
            let path = dir.join(format!("resume_{kill_after}.rllstate"));
            let interrupted = RllTrainer::new(cfg.clone())
                .unwrap()
                .with_checkpoint_policy(CheckpointPolicy::every(&path, 2).unwrap())
                .with_fault_plan(FaultPlan {
                    kill_after_epoch: kill_after,
                });
            match interrupted.fit(&x, &ann, 32) {
                Err(RllError::Interrupted { epochs_done }) => {
                    assert_eq!(epochs_done, kill_after + 1)
                }
                other => panic!("expected Interrupted, got {other:?}"),
            }
            let state = TrainState::load(&path).unwrap();
            assert!(state.meta.epochs_done <= kill_after + 1);
            assert_eq!(state.meta.seed, 32);
            // Resume on a *different* thread count: snapshot + thread-count
            // determinism compose.
            let resumed = RllTrainer::new(cfg.clone()).unwrap().with_threads(4);
            let (model, trace) = resumed.resume(&x, &ann, state).unwrap();
            for (got, want) in model.mlp().layers().iter().zip(gold_model.mlp().layers()) {
                assert_eq!(got.weights(), want.weights(), "kill_after={kill_after}");
                assert_eq!(got.bias(), want.bias(), "kill_after={kill_after}");
            }
            assert_eq!(trace.epoch_losses, gold_trace.epoch_losses);
            assert_eq!(trace.grad_norms_pre_clip, gold_trace.grad_norms_pre_clip);
            assert_eq!(trace.grad_norms_post_clip, gold_trace.grad_norms_post_clip);
            assert_eq!(model.embed(&x).unwrap(), gold_model.embed(&x).unwrap());
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn resume_rejects_foreign_snapshots() {
        let (x, ann, _) = crowd_dataset(40, 33);
        let cfg = fast_config(RllVariant::Bayesian);
        let dir = std::env::temp_dir().join("rll_core_resume_mismatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.rllstate");
        let trainer = RllTrainer::new(cfg.clone())
            .unwrap()
            .with_checkpoint_policy(CheckpointPolicy::every(&path, 3).unwrap())
            .with_fault_plan(FaultPlan {
                kill_after_epoch: 5,
            });
        assert!(matches!(
            trainer.fit(&x, &ann, 34),
            Err(RllError::Interrupted { epochs_done: 6 })
        ));
        // Different hyperparameters → different config hash → rejected.
        let other_cfg = RllConfig {
            eta: 5.0,
            ..cfg.clone()
        };
        let other = RllTrainer::new(other_cfg).unwrap();
        let state = TrainState::load(&path).unwrap();
        assert!(matches!(
            other.resume(&x, &ann, state),
            Err(RllError::ResumeMismatch { .. })
        ));
        // Same config, wrong feature width → rejected.
        let same = RllTrainer::new(cfg).unwrap();
        let state = TrainState::load(&path).unwrap();
        let narrow = Matrix::from_fn(x.rows(), 2, |r, c| (r % 3) as f64 - 0.5 * c as f64);
        assert!(matches!(
            same.resume(&narrow, &ann, state),
            Err(RllError::ResumeMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fault_plan_without_checkpointing_still_interrupts() {
        let (x, ann, _) = crowd_dataset(40, 37);
        let trainer = RllTrainer::new(fast_config(RllVariant::Bayesian))
            .unwrap()
            .with_fault_plan(FaultPlan {
                kill_after_epoch: 0,
            });
        assert!(matches!(
            trainer.fit(&x, &ann, 38),
            Err(RllError::Interrupted { epochs_done: 1 })
        ));
    }

    #[test]
    fn worker_aware_variant_trains_and_uses_ds_posteriors() {
        let (x, ann, _) = crowd_dataset(70, 15);
        let trainer = RllTrainer::new(fast_config(RllVariant::WorkerAware)).unwrap();
        let (model, trace) = trainer.fit(&x, &ann, 16).unwrap();
        assert_eq!(model.embedding_dim(), 16);
        // DS posteriors of the argmax label are never below 0.5 and rarely
        // exactly 1 under smoothing.
        assert!(trace.confidences.iter().all(|&c| (0.0..=1.0).contains(&c)));
        assert!(trace.confidences.iter().any(|&c| c < 1.0));
        // The vote-counting estimator path rejects this variant explicitly.
        assert!(trainer.confidence_estimator(0.5).is_err());
    }

    #[test]
    fn lr_schedule_is_applied() {
        use rll_nn::LrSchedule;
        let (x, ann, _) = crowd_dataset(50, 17);
        // A cosine schedule down to ~0 should still train without error and
        // validate its own parameters.
        let cfg = RllConfig {
            lr_schedule: Some(LrSchedule::Cosine {
                lr: 1e-3,
                min_lr: 1e-5,
                total_epochs: 15,
            }),
            ..fast_config(RllVariant::Bayesian)
        };
        let trainer = RllTrainer::new(cfg).unwrap();
        assert!(trainer.fit(&x, &ann, 18).is_ok());
        // Invalid schedules are rejected at construction.
        let bad = RllConfig {
            lr_schedule: Some(LrSchedule::Constant { lr: 0.0 }),
            ..fast_config(RllVariant::Bayesian)
        };
        assert!(RllTrainer::new(bad).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(RllTrainer::new(RllConfig {
            eta: 0.0,
            ..Default::default()
        })
        .is_err());
        // Non-finite values must be rejected, not silently train garbage.
        assert!(RllTrainer::new(RllConfig {
            eta: f64::NAN,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            eta: f64::INFINITY,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            learning_rate: f64::NAN,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            learning_rate: f64::INFINITY,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            prior_strength: f64::NAN,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            grad_clip: Some(f64::NAN),
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            k: 0,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            epochs: 0,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            learning_rate: -1.0,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            prior_strength: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(RllTrainer::new(RllConfig {
            grad_clip: Some(0.0),
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn degenerate_data_rejected() {
        let trainer = RllTrainer::new(fast_config(RllVariant::Plain)).unwrap();
        // All-positive crowd votes → no negatives → grouping impossible.
        let x = Matrix::ones(4, 2);
        let ann = AnnotationMatrix::from_dense_binary(&vec![vec![1; 3]; 4]).unwrap();
        assert!(trainer.fit(&x, &ann, 1).is_err());
        // Row mismatch.
        let (x2, ann2, _) = crowd_dataset(10, 13);
        assert!(trainer
            .fit(&x2.select_rows(&[0, 1]).unwrap(), &ann2, 1)
            .is_err());
        drop(x);
    }
}
