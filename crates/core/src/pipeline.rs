//! End-to-end pipeline: RLL embeddings + logistic-regression classifier.
//!
//! Mirrors the paper's evaluation protocol: the encoder and the classifier
//! train on *crowd-derived* labels only; expert labels are consulted
//! exclusively to score held-out predictions.

use crate::error::RllError;
use crate::model::RllModel;
use crate::state::{CheckpointPolicy, FaultPlan, TrainState};
use crate::trainer::{RllConfig, RllTrainer, TrainingTrace};
use crate::Result;
use rll_baselines::LogisticRegression;
use rll_crowd::AnnotationMatrix;
use rll_data::{Normalizer, StratifiedKFold};
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Held-out classification scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Fraction of correct predictions.
    pub accuracy: f64,
    /// F1 of the positive class.
    pub f1: f64,
    /// Precision of the positive class.
    pub precision: f64,
    /// Recall of the positive class.
    pub recall: f64,
    /// Held-out example count.
    pub n_test: usize,
}

/// Computes accuracy/precision/recall/F1 against expert labels.
pub fn score_predictions(predictions: &[u8], expert: &[u8]) -> Result<EvalReport> {
    if predictions.len() != expert.len() || predictions.is_empty() {
        return Err(RllError::InvalidConfig {
            reason: format!(
                "{} predictions for {} labels",
                predictions.len(),
                expert.len()
            ),
        });
    }
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut tn = 0usize;
    let mut fn_ = 0usize;
    for (&p, &t) in predictions.iter().zip(expert) {
        match (p, t) {
            (1, 1) => tp += 1,
            (1, 0) => fp += 1,
            (0, 0) => tn += 1,
            (0, 1) => fn_ += 1,
            _ => {
                return Err(RllError::InvalidConfig {
                    reason: "labels must be binary".into(),
                })
            }
        }
    }
    let accuracy = (tp + tn) as f64 / predictions.len() as f64;
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        0.0
    };
    let recall = if tp + fn_ > 0 {
        tp as f64 / (tp + fn_) as f64
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Ok(EvalReport {
        accuracy,
        f1,
        precision,
        recall,
        n_test: predictions.len(),
    })
}

/// RLL encoder + logistic-regression classifier, trained together from crowd
/// annotations.
pub struct RllPipeline {
    config: RllConfig,
    recorder: rll_obs::Recorder,
    threads: Option<usize>,
    checkpoint: Option<CheckpointPolicy>,
    fault: Option<FaultPlan>,
    profile: bool,
    normalizer: Option<Normalizer>,
    model: Option<RllModel>,
    classifier: Option<LogisticRegression>,
    trace: Option<TrainingTrace>,
}

impl RllPipeline {
    /// Creates an unfitted pipeline.
    pub fn new(config: RllConfig) -> Self {
        RllPipeline {
            config,
            recorder: rll_obs::Recorder::disabled(),
            threads: None,
            checkpoint: None,
            fault: None,
            profile: false,
            normalizer: None,
            model: None,
            classifier: None,
            trace: None,
        }
    }

    /// Enables crash-safe checkpointing during [`Self::fit`]; the trainer
    /// atomically writes a `.rllstate` snapshot on the policy's cadence, and
    /// [`Self::resume_fit`] finishes an interrupted run from it with
    /// bitwise-identical results.
    pub fn with_checkpoint_policy(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Injects a crash for the fault-injection harness — see
    /// [`RllTrainer::with_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches a telemetry recorder; it is handed to the trainer on
    /// [`Self::fit`], so training emits per-epoch events through it.
    pub fn with_recorder(mut self, recorder: rll_obs::Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Enables the trainer's per-epoch phase profiler — see
    /// [`RllTrainer::with_profiling`]. Pure observation: the fitted model is
    /// bitwise identical with profiling on or off.
    pub fn with_profiling(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Overrides the trainer's worker-thread count (0 is treated as 1).
    /// Without an override the trainer reads the `RLL_THREADS` knob. Results
    /// are bitwise identical at every setting — see [`RllTrainer::fit`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The hyperparameters.
    pub fn config(&self) -> &RllConfig {
        &self.config
    }

    /// The training trace of the last fit.
    pub fn trace(&self) -> Option<&TrainingTrace> {
        self.trace.as_ref()
    }

    /// The trained encoder, if [`Self::fit`] has run.
    ///
    /// Together with [`Self::normalizer`] this is the train→checkpoint
    /// handoff: `rll-serve` snapshots both into a versioned checkpoint so a
    /// server process can answer embedding queries without retraining.
    pub fn model(&self) -> Option<&RllModel> {
        self.model.as_ref()
    }

    /// The fitted feature normalizer, if [`Self::fit`] has run. Serving must
    /// apply the *training-time* normalization to raw features before the
    /// encoder sees them, so it ships inside the checkpoint next to the model.
    pub fn normalizer(&self) -> Option<&Normalizer> {
        self.normalizer.as_ref()
    }

    /// Trains the encoder and the downstream classifier from crowd labels.
    pub fn fit(
        &mut self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        seed: u64,
    ) -> Result<()> {
        let (normalizer, normalized) = Self::normalize(features)?;
        let (model, trace) = self.trainer()?.fit(&normalized, annotations, seed)?;
        self.store_fitted(normalizer, &normalized, model, trace)
    }

    /// Finishes an interrupted [`Self::fit`] from a `.rllstate` snapshot,
    /// then trains the downstream classifier as usual. `features` and
    /// `annotations` must be the same data the interrupted run saw — the
    /// normalizer is re-fitted from them, which reproduces the original
    /// normalization exactly because `Normalizer::fit` is deterministic.
    /// The final model is bitwise identical to an uninterrupted run's.
    pub fn resume_fit(
        &mut self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        state: TrainState,
    ) -> Result<()> {
        let (normalizer, normalized) = Self::normalize(features)?;
        let (model, trace) = self.trainer()?.resume(&normalized, annotations, state)?;
        self.store_fitted(normalizer, &normalized, model, trace)
    }

    /// Builds the trainer with every configured override applied.
    fn trainer(&self) -> Result<RllTrainer> {
        let mut trainer = RllTrainer::new(self.config.clone())?
            .with_recorder(self.recorder.clone())
            .with_profiling(self.profile);
        if let Some(threads) = self.threads {
            trainer = trainer.with_threads(threads);
        }
        if let Some(policy) = self.checkpoint.clone() {
            trainer = trainer.with_checkpoint_policy(policy);
        }
        if let Some(plan) = self.fault {
            trainer = trainer.with_fault_plan(plan);
        }
        Ok(trainer)
    }

    /// Fits the feature normalizer and applies it.
    fn normalize(features: &Matrix) -> Result<(Normalizer, Matrix)> {
        let normalizer = Normalizer::fit(features).map_err(|e| RllError::InvalidConfig {
            reason: format!("feature normalization failed: {e}"),
        })?;
        let normalized = normalizer
            .transform(features)
            .map_err(|e| RllError::InvalidConfig {
                reason: format!("feature normalization failed: {e}"),
            })?;
        Ok((normalizer, normalized))
    }

    /// Trains the downstream classifier on the encoder's embeddings and
    /// stores every fitted part.
    fn store_fitted(
        &mut self,
        normalizer: Normalizer,
        normalized: &Matrix,
        model: RllModel,
        trace: TrainingTrace,
    ) -> Result<()> {
        let embeddings = model.embed(normalized)?;
        let mut classifier = LogisticRegression::with_defaults();
        classifier.fit(&embeddings, &trace.inferred_labels)?;
        self.normalizer = Some(normalizer);
        self.model = Some(model);
        self.classifier = Some(classifier);
        self.trace = Some(trace);
        Ok(())
    }

    /// Embeds features with the trained encoder.
    pub fn embed(&self, features: &Matrix) -> Result<Matrix> {
        let normalizer = self.normalizer.as_ref().ok_or(RllError::NotFitted)?;
        let model = self.model.as_ref().ok_or(RllError::NotFitted)?;
        let normalized = normalizer
            .transform(features)
            .map_err(|e| RllError::InvalidConfig {
                reason: format!("feature normalization failed: {e}"),
            })?;
        model.embed(&normalized)
    }

    /// `P(y = 1 | x)` for every row.
    pub fn predict_proba(&self, features: &Matrix) -> Result<Vec<f64>> {
        let classifier = self.classifier.as_ref().ok_or(RllError::NotFitted)?;
        let embeddings = self.embed(features)?;
        Ok(classifier.predict_proba(&embeddings)?)
    }

    /// Hard predictions at threshold 0.5.
    pub fn predict(&self, features: &Matrix) -> Result<Vec<u8>> {
        Ok(self
            .predict_proba(features)?
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect())
    }

    /// Single-split convenience: train on 4/5 of the data, score on the held
    /// 1/5 against expert labels. Splits stratify on crowd majority-vote
    /// labels so no expert information leaks into training.
    pub fn fit_evaluate(
        &mut self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        expert_labels: &[u8],
        seed: u64,
    ) -> Result<EvalReport> {
        if expert_labels.len() != features.rows() {
            return Err(RllError::InvalidConfig {
                reason: format!(
                    "{} expert labels for {} rows",
                    expert_labels.len(),
                    features.rows()
                ),
            });
        }
        use rll_crowd::aggregate::{Aggregator, MajorityVote};
        let crowd_labels = MajorityVote::positive_ties().hard_labels(annotations)?;
        let folds =
            StratifiedKFold::new(&crowd_labels, 5, seed).map_err(|e| RllError::InvalidConfig {
                reason: format!("cross-validation split failed: {e}"),
            })?;
        let split = folds.split(0).map_err(|e| RllError::InvalidConfig {
            reason: format!("cross-validation split failed: {e}"),
        })?;
        let train_x = features.select_rows(&split.train)?;
        let train_ann = annotations.select_items(&split.train)?;
        self.fit(&train_x, &train_ann, seed)?;
        let test_x = features.select_rows(&split.test)?;
        let predictions = self.predict(&test_x)?;
        let test_expert: Vec<u8> = split.test.iter().map(|&i| expert_labels[i]).collect();
        score_predictions(&predictions, &test_expert)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::RllVariant;
    use rll_crowd::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn crowd_dataset(n: usize, seed: u64) -> (Matrix, AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.6));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.6).unwrap(),
                rng.normal(-c, 0.6).unwrap(),
            ]);
            truth.push(l);
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let pool = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 0.8 }; 5]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (features, ann, truth)
    }

    fn fast_config() -> RllConfig {
        RllConfig {
            variant: RllVariant::Bayesian,
            epochs: 15,
            groups_per_epoch: 64,
            ..Default::default()
        }
    }

    #[test]
    fn score_predictions_known_values() {
        let report = score_predictions(&[1, 1, 0, 0], &[1, 0, 0, 1]).unwrap();
        assert!((report.accuracy - 0.5).abs() < 1e-12);
        assert!((report.precision - 0.5).abs() < 1e-12);
        assert!((report.recall - 0.5).abs() < 1e-12);
        assert!((report.f1 - 0.5).abs() < 1e-12);
        assert_eq!(report.n_test, 4);
    }

    #[test]
    fn score_predictions_perfect_and_degenerate() {
        let p = score_predictions(&[1, 0, 1], &[1, 0, 1]).unwrap();
        assert_eq!(p.accuracy, 1.0);
        assert_eq!(p.f1, 1.0);
        // No positive predictions → zero precision/recall/F1, not NaN.
        let z = score_predictions(&[0, 0], &[1, 1]).unwrap();
        assert_eq!(z.f1, 0.0);
        assert!(score_predictions(&[1], &[1, 0]).is_err());
        assert!(score_predictions(&[], &[]).is_err());
        assert!(score_predictions(&[2], &[1]).is_err());
    }

    #[test]
    fn fit_predict_beats_chance() {
        let (x, ann, truth) = crowd_dataset(100, 1);
        let mut pipeline = RllPipeline::new(fast_config());
        pipeline.fit(&x, &ann, 2).unwrap();
        let pred = pipeline.predict(&x).unwrap();
        let acc =
            pred.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64;
        assert!(acc > 0.8, "training accuracy {acc}");
        assert!(pipeline.trace().is_some());
    }

    #[test]
    fn fit_evaluate_produces_sane_report() {
        let (x, ann, truth) = crowd_dataset(120, 3);
        let mut pipeline = RllPipeline::new(fast_config());
        let report = pipeline.fit_evaluate(&x, &ann, &truth, 4).unwrap();
        assert!(
            report.accuracy > 0.6,
            "held-out accuracy {}",
            report.accuracy
        );
        assert!(report.f1 > 0.6, "held-out F1 {}", report.f1);
        assert!(report.n_test >= 20);
    }

    #[test]
    fn fitted_parts_are_exposed_for_checkpointing() {
        let (x, ann, _) = crowd_dataset(60, 8);
        let mut pipeline = RllPipeline::new(fast_config());
        assert!(pipeline.model().is_none());
        assert!(pipeline.normalizer().is_none());
        pipeline.fit(&x, &ann, 9).unwrap();
        let model = pipeline.model().unwrap();
        let normalizer = pipeline.normalizer().unwrap();
        // The exposed parts reproduce the pipeline's own embedding exactly.
        let direct = model.embed(&normalizer.transform(&x).unwrap()).unwrap();
        assert_eq!(direct, pipeline.embed(&x).unwrap());
    }

    #[test]
    fn resume_fit_matches_uninterrupted_fit() {
        let (x, ann, _) = crowd_dataset(60, 11);
        let mut golden = RllPipeline::new(fast_config());
        golden.fit(&x, &ann, 12).unwrap();

        let dir = std::env::temp_dir().join("rll_core_pipeline_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pipe.rllstate");
        let mut broken = RllPipeline::new(fast_config())
            .with_checkpoint_policy(CheckpointPolicy::every(&path, 4).unwrap())
            .with_fault_plan(FaultPlan {
                kill_after_epoch: 9,
            });
        assert!(matches!(
            broken.fit(&x, &ann, 12),
            Err(RllError::Interrupted { epochs_done: 10 })
        ));
        // The interrupted pipeline stored nothing.
        assert!(broken.model().is_none());

        let state = TrainState::load(&path).unwrap();
        assert_eq!(state.meta.epochs_done, 8);
        let mut resumed = RllPipeline::new(fast_config());
        resumed.resume_fit(&x, &ann, state).unwrap();
        // Bitwise-identical end state: embeddings AND downstream classifier
        // probabilities match the never-interrupted pipeline exactly.
        assert_eq!(resumed.embed(&x).unwrap(), golden.embed(&x).unwrap());
        assert_eq!(
            resumed.predict_proba(&x).unwrap(),
            golden.predict_proba(&x).unwrap()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn predict_before_fit_errors() {
        let pipeline = RllPipeline::new(fast_config());
        assert!(matches!(
            pipeline.predict(&Matrix::ones(1, 2)),
            Err(RllError::NotFitted)
        ));
        assert!(matches!(
            pipeline.embed(&Matrix::ones(1, 2)),
            Err(RllError::NotFitted)
        ));
    }

    #[test]
    fn fit_evaluate_validates_label_count() {
        let (x, ann, _) = crowd_dataset(40, 5);
        let mut pipeline = RllPipeline::new(fast_config());
        assert!(pipeline.fit_evaluate(&x, &ann, &[1, 0], 1).is_err());
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, ann, _) = crowd_dataset(60, 6);
        let mut pipeline = RllPipeline::new(fast_config());
        pipeline.fit(&x, &ann, 7).unwrap();
        let probs = pipeline.predict_proba(&x).unwrap();
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
