//! The confidence-weighted group-softmax loss (paper eq. 3).
//!
//! Given a group's embeddings `f(x⁺_i), f(x⁺_j), f(x⁻_1), …, f(x⁻_k)` and the
//! candidates' label confidences `δ`, the model's posterior of retrieving the
//! paired positive is
//!
//! ```text
//!                 exp(η · δ_j · r(f_i, f_j))
//! p̂(x⁺_j | x⁺_i) = ─────────────────────────────────
//!                 Σ_{x_* ∈ g, x_* ≠ x_i} exp(η · δ_* · r(f_i, f_*))
//! ```
//!
//! with `r = cosine`. The loss is `-log p̂`. Setting every `δ = 1` recovers
//! the unweighted objective (plain RLL, the paper's eq. for `p`).
//!
//! [`group_softmax_loss`] returns both the loss and its gradient with respect
//! to **every** embedding in the group (anchor included), so the trainer can
//! push one backward pass per member through the shared MLP.

// Index-based loops below walk several parallel arrays at once; iterator
// zips would obscure the alignment, so the clippy lint is silenced.
#![allow(clippy::needless_range_loop)]

use crate::error::RllError;
use crate::Result;
use rll_tensor::ops;
use rll_tensor::{debug_assert_finite, kernels, Kernel, Matrix};

/// Computes the loss and embedding gradients for one group.
///
/// `embeddings` holds the group members as rows: row 0 is the anchor
/// `x⁺_i`, row 1 the paired positive `x⁺_j`, rows 2.. the negatives.
/// `confidences` aligns with the *candidates* (rows 1..): `confidences[0]` is
/// `δ_j`, `confidences[m]` is `δ` of negative `m-1`. `eta` is the softmax
/// smoothing hyperparameter `η`.
///
/// Returns `(loss, gradients)` where `gradients` has the same shape as
/// `embeddings`.
///
/// Runs on the configured kernel variant (the `RLL_KERNEL` knob): the
/// `tiled` variant fuses the per-candidate cosine, the softmax, and the
/// gradient passes into single sweeps over each embedding row, and is
/// bitwise identical to the scalar composition-of-`ops` oracle — see
/// [`group_softmax_loss_with`].
pub fn group_softmax_loss(
    embeddings: &Matrix,
    confidences: &[f64],
    eta: f64,
) -> Result<(f64, Matrix)> {
    group_softmax_loss_with(embeddings, confidences, eta, kernels::configured_kernel())
}

/// [`group_softmax_loss`] with an explicit kernel variant.
///
/// The fused path preserves the scalar path's reduction trees exactly: the
/// dot product and squared-norm accumulate in the same element order as
/// [`ops::dot`]/[`ops::norm`] (two independent chains in one sweep), the
/// inline softmax keeps [`ops::softmax`]'s max-fold/exp/sum/normalize order,
/// and the gradient expressions are verbatim — so `Scalar` and `Tiled`
/// return byte-identical `(loss, gradients)` (asserted by the tests below
/// and the trainer's checkpoint byte-compare gate).
pub fn group_softmax_loss_with(
    embeddings: &Matrix,
    confidences: &[f64],
    eta: f64,
    kernel: Kernel,
) -> Result<(f64, Matrix)> {
    let members = embeddings.rows();
    if members < 3 {
        return Err(RllError::InvalidConfig {
            reason: format!(
                "a group needs at least 3 members (anchor, positive, ≥1 negative), got {members}"
            ),
        });
    }
    let candidates = members - 1;
    if confidences.len() != candidates {
        return Err(RllError::InvalidConfig {
            reason: format!(
                "{} confidences for {candidates} candidates",
                confidences.len()
            ),
        });
    }
    if eta <= 0.0 || !eta.is_finite() {
        return Err(RllError::InvalidConfig {
            reason: format!("eta must be positive and finite, got {eta}"),
        });
    }
    if let Some(&bad) = confidences.iter().find(|c| !(0.0..=1.0).contains(*c)) {
        return Err(RllError::InvalidConfig {
            reason: format!("confidence {bad} outside [0, 1]"),
        });
    }
    match kernel {
        Kernel::Scalar => loss_scalar(embeddings, confidences, eta),
        Kernel::Tiled => loss_fused(embeddings, confidences, eta),
    }
}

/// The oracle: the loss composed from the `ops::` building blocks, one pass
/// per quantity.
fn loss_scalar(embeddings: &Matrix, confidences: &[f64], eta: f64) -> Result<(f64, Matrix)> {
    let members = embeddings.rows();
    let candidates = members - 1;
    let anchor = embeddings.row(0)?;
    let anchor_norm = ops::norm(anchor);

    // Scores s_c = η δ_c cos(anchor, candidate_c).
    let mut cosines = Vec::with_capacity(candidates);
    let mut scores = Vec::with_capacity(candidates);
    for c in 0..candidates {
        let cand = embeddings.row(c + 1)?;
        let r = ops::cosine_similarity(anchor, cand)?;
        cosines.push(r);
        scores.push(eta * confidences[c] * r);
    }
    let probs = ops::softmax(&scores)?;
    let loss = -probs[0].max(1e-300).ln();

    // dL/ds_c = p_c - 1[c == positive].
    let mut grads = Matrix::zeros(members, embeddings.cols());
    let dim = embeddings.cols();
    let mut grad_anchor = vec![0.0; dim];
    for c in 0..candidates {
        let dl_ds = probs[c] - if c == 0 { 1.0 } else { 0.0 };
        let dl_dr = dl_ds * eta * confidences[c];
        let cand = embeddings.row(c + 1)?;
        let cand_norm = ops::norm(cand);
        if anchor_norm <= f64::EPSILON || cand_norm <= f64::EPSILON {
            // cosine() returned the neutral 0 here; use the zero subgradient.
            continue;
        }
        let inv = 1.0 / (anchor_norm * cand_norm);
        let r = cosines[c];
        // dr/d(anchor) = cand/(|a||c|) - r * a / |a|^2
        for d in 0..dim {
            grad_anchor[d] += dl_dr * (cand[d] * inv - r * anchor[d] / (anchor_norm * anchor_norm));
        }
        // dr/d(cand) = a/(|a||c|) - r * c / |c|^2
        let grad_cand = grads.row_mut(c + 1)?;
        for d in 0..dim {
            grad_cand[d] = dl_dr * (anchor[d] * inv - r * cand[d] / (cand_norm * cand_norm));
        }
    }
    grads.row_mut(0)?.copy_from_slice(&grad_anchor);
    debug_assert_finite!([loss], "group softmax loss");
    debug_assert_finite!(grads, "group softmax gradients");
    Ok((loss, grads))
}

/// The fused kernel: one sweep per candidate row for the forward quantities
/// (dot product and squared norm as two independent chains), an inline
/// softmax, and one sweep per candidate row for both gradient rows.
///
/// Bitwise-identity notes, matched against [`loss_scalar`] term by term:
/// the anchor norm is computed once and reused (same chain, same bits as
/// recomputing), each candidate's norm is stashed from the forward sweep
/// for the gradient sweep, and the gradient expressions keep the oracle's
/// exact operation order — in particular the `r·x/(norm·norm)` divisions
/// are *not* strength-reduced to a reciprocal multiply, which would round
/// differently.
fn loss_fused(embeddings: &Matrix, confidences: &[f64], eta: f64) -> Result<(f64, Matrix)> {
    let members = embeddings.rows();
    let candidates = members - 1;
    let dim = embeddings.cols();
    let anchor = embeddings.row(0)?;
    let anchor_norm = ops::norm(anchor);

    // Forward sweep: cosine and score per candidate, candidate norms kept
    // for the gradient sweep.
    let mut cosines = vec![0.0; candidates];
    let mut cand_norms = vec![0.0; candidates];
    let mut scores = vec![0.0; candidates];
    for c in 0..candidates {
        let cand = embeddings.row(c + 1)?;
        let mut dot = 0.0;
        let mut sq = 0.0;
        for (&x, &y) in anchor.iter().zip(cand) {
            dot += x * y;
            sq += y * y;
        }
        let cand_norm = sq.sqrt();
        let r = if anchor_norm <= f64::EPSILON || cand_norm <= f64::EPSILON {
            0.0
        } else {
            dot / (anchor_norm * cand_norm)
        };
        cosines[c] = r;
        cand_norms[c] = cand_norm;
        scores[c] = eta * confidences[c] * r;
    }

    // Inline softmax, preserving ops::softmax's fold/exp/sum/normalize order
    // (exps and probs reuse the scores buffer in place).
    let m = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() && m < 0.0 {
        return Err(RllError::Tensor(rll_tensor::TensorError::NonFinite {
            op: "softmax",
            reason: "the maximum input is -inf (no finite score to normalize against)",
        }));
    }
    for s in scores.iter_mut() {
        *s = (*s - m).exp();
    }
    let z: f64 = scores.iter().sum();
    for e in scores.iter_mut() {
        *e /= z;
    }
    let probs = scores;
    let loss = -probs[0].max(1e-300).ln();

    // Gradient sweep: both gradient rows of candidate c in one pass over d.
    let mut grads = Matrix::zeros(members, dim);
    let mut grad_anchor = vec![0.0; dim];
    for c in 0..candidates {
        let dl_ds = probs[c] - if c == 0 { 1.0 } else { 0.0 };
        let dl_dr = dl_ds * eta * confidences[c];
        let cand = embeddings.row(c + 1)?;
        let cand_norm = cand_norms[c];
        if anchor_norm <= f64::EPSILON || cand_norm <= f64::EPSILON {
            // cosine() returned the neutral 0 here; use the zero subgradient.
            continue;
        }
        let inv = 1.0 / (anchor_norm * cand_norm);
        let r = cosines[c];
        let grad_cand = grads.row_mut(c + 1)?;
        for d in 0..dim {
            // dr/d(anchor) = cand/(|a||c|) - r * a / |a|^2
            grad_anchor[d] += dl_dr * (cand[d] * inv - r * anchor[d] / (anchor_norm * anchor_norm));
            // dr/d(cand) = a/(|a||c|) - r * c / |c|^2
            grad_cand[d] = dl_dr * (anchor[d] * inv - r * cand[d] / (cand_norm * cand_norm));
        }
    }
    grads.row_mut(0)?.copy_from_slice(&grad_anchor);
    debug_assert_finite!([loss], "group softmax loss");
    debug_assert_finite!(grads, "group softmax gradients");
    Ok((loss, grads))
}

/// The posterior `p̂(x⁺_j | x⁺_i)` for a group (no gradients) — used by
/// diagnostics and tests.
pub fn group_posterior(embeddings: &Matrix, confidences: &[f64], eta: f64) -> Result<f64> {
    let candidates = embeddings.rows().saturating_sub(1);
    if confidences.len() != candidates || candidates < 2 {
        return Err(RllError::InvalidConfig {
            reason: "malformed group".into(),
        });
    }
    let anchor = embeddings.row(0)?;
    let mut scores = Vec::with_capacity(candidates);
    for c in 0..candidates {
        let r = ops::cosine_similarity(anchor, embeddings.row(c + 1)?)?;
        scores.push(eta * confidences[c] * r);
    }
    Ok(ops::softmax(&scores)?[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_tensor::Rng64;

    fn random_group(members: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::seed_from_u64(seed);
        Matrix::from_fn(members, dim, |_, _| rng.standard_normal())
    }

    #[test]
    fn perfect_embedding_has_low_loss() {
        // Anchor == positive direction, negatives opposite.
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![-1.0, 0.0],
        ])
        .unwrap();
        let (loss, _) = group_softmax_loss(&emb, &[1.0, 1.0, 1.0], 10.0).unwrap();
        assert!(loss < 0.01, "loss {loss}");
    }

    #[test]
    fn inverted_embedding_has_high_loss() {
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![-1.0, 0.0], // positive far away
            vec![1.0, 0.0],  // negative identical to anchor
            vec![1.0, 0.0],
        ])
        .unwrap();
        let (loss, _) = group_softmax_loss(&emb, &[1.0, 1.0, 1.0], 10.0).unwrap();
        assert!(loss > 5.0, "loss {loss}");
    }

    #[test]
    fn uniform_embedding_gives_log_candidates() {
        // All candidates identical → uniform softmax → loss = ln(k + 1).
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0],
        ])
        .unwrap();
        let (loss, _) = group_softmax_loss(&emb, &[1.0, 1.0, 1.0], 5.0).unwrap();
        assert!((loss - 3.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let emb = random_group(5, 4, 1);
        let conf = [0.9, 0.7, 0.8, 0.6];
        let eta = 8.0;
        let (_, grads) = group_softmax_loss(&emb, &conf, eta).unwrap();
        let eps = 1e-6;
        for r in 0..emb.rows() {
            for c in 0..emb.cols() {
                let mut up = emb.clone();
                up.set(r, c, emb.get(r, c).unwrap() + eps).unwrap();
                let mut down = emb.clone();
                down.set(r, c, emb.get(r, c).unwrap() - eps).unwrap();
                let lu = group_softmax_loss(&up, &conf, eta).unwrap().0;
                let ld = group_softmax_loss(&down, &conf, eta).unwrap().0;
                let numeric = (lu - ld) / (2.0 * eps);
                let analytic = grads.get(r, c).unwrap();
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "grad[{r}][{c}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_across_random_groups() {
        for seed in 2..8 {
            let emb = random_group(4, 3, seed);
            let conf = [1.0, 0.5, 0.75];
            let (_, grads) = group_softmax_loss(&emb, &conf, 12.0).unwrap();
            let eps = 1e-6;
            // Spot-check one coordinate per member.
            for r in 0..4 {
                let mut up = emb.clone();
                up.set(r, 0, emb.get(r, 0).unwrap() + eps).unwrap();
                let mut down = emb.clone();
                down.set(r, 0, emb.get(r, 0).unwrap() - eps).unwrap();
                let numeric = (group_softmax_loss(&up, &conf, 12.0).unwrap().0
                    - group_softmax_loss(&down, &conf, 12.0).unwrap().0)
                    / (2.0 * eps);
                assert!(
                    (numeric - grads.get(r, 0).unwrap()).abs() < 1e-4,
                    "seed {seed} row {r}"
                );
            }
        }
    }

    #[test]
    fn confidence_weighting_softens_negative_push() {
        // A confusable negative with low confidence should contribute a
        // smaller gradient than the same negative at full confidence.
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.1],
            vec![0.8, 0.3],
            vec![0.9, 0.2], // near-anchor negative
        ])
        .unwrap();
        let (_, g_full) = group_softmax_loss(&emb, &[1.0, 1.0], 10.0).unwrap();
        let (_, g_soft) = group_softmax_loss(&emb, &[1.0, 0.2], 10.0).unwrap();
        let norm_neg = |g: &Matrix| ops::norm(g.row(2).unwrap());
        assert!(
            norm_neg(&g_soft) < norm_neg(&g_full),
            "soft {} vs full {}",
            norm_neg(&g_soft),
            norm_neg(&g_full)
        );
    }

    #[test]
    fn eta_sharpens_probabilities() {
        let emb = random_group(4, 3, 9);
        let conf = [1.0, 1.0, 1.0];
        let p_soft = group_posterior(&emb, &conf, 1.0).unwrap();
        let p_sharp = group_posterior(&emb, &conf, 50.0).unwrap();
        // Sharpening pushes the posterior toward 0 or 1.
        assert!((p_sharp - 0.5).abs() >= (p_soft - 0.5).abs() - 1e-9);
    }

    #[test]
    fn zero_norm_embedding_yields_zero_subgradient() {
        let emb = Matrix::from_rows(&[
            vec![0.0, 0.0], // degenerate anchor
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ])
        .unwrap();
        let (loss, grads) = group_softmax_loss(&emb, &[1.0, 1.0], 10.0).unwrap();
        assert!(loss.is_finite());
        assert_eq!(grads.sum(), 0.0);
    }

    #[test]
    fn validates_inputs() {
        let emb = random_group(4, 3, 10);
        assert!(group_softmax_loss(&emb, &[1.0, 1.0], 10.0).is_err()); // conf count
        assert!(group_softmax_loss(&emb, &[1.0, 1.0, 1.0], 0.0).is_err()); // eta
        assert!(group_softmax_loss(&emb, &[1.0, 1.0, 1.5], 10.0).is_err()); // conf range
        let tiny = random_group(2, 3, 11);
        assert!(group_softmax_loss(&tiny, &[1.0], 10.0).is_err()); // too small
        assert!(group_posterior(&tiny, &[1.0], 10.0).is_err());
    }

    #[test]
    fn fused_kernel_is_bitwise_scalar() {
        // The tiled loss kernel must reproduce the scalar oracle exactly —
        // same bits, not just close — across group sizes, dims, and
        // confidence patterns (including exact 0/1 confidences).
        for seed in 0..20 {
            let members = 3 + (seed as usize % 5);
            let dim = 1 + (seed as usize % 7);
            let emb = random_group(members, dim, seed);
            let mut conf = vec![0.0; members - 1];
            let mut rng = Rng64::seed_from_u64(seed ^ 0x5eed);
            for (i, c) in conf.iter_mut().enumerate() {
                *c = match i % 3 {
                    0 => 1.0,
                    1 => 0.0,
                    _ => rng.uniform(),
                };
            }
            let eta = 0.5 + (seed as f64) * 1.7;
            let (ls, gs) = group_softmax_loss_with(&emb, &conf, eta, Kernel::Scalar).unwrap();
            let (lf, gf) = group_softmax_loss_with(&emb, &conf, eta, Kernel::Tiled).unwrap();
            assert_eq!(ls.to_bits(), lf.to_bits(), "loss bits, seed {seed}");
            assert_eq!(gs, gf, "gradient bits, seed {seed}");
        }
    }

    #[test]
    fn fused_kernel_handles_zero_norm_members() {
        // The zero-subgradient guard must behave identically in both paths.
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![0.0, 0.0], // degenerate positive
            vec![-1.0, 0.2],
        ])
        .unwrap();
        let (ls, gs) = group_softmax_loss_with(&emb, &[1.0, 0.8], 9.0, Kernel::Scalar).unwrap();
        let (lf, gf) = group_softmax_loss_with(&emb, &[1.0, 0.8], 9.0, Kernel::Tiled).unwrap();
        assert_eq!(ls.to_bits(), lf.to_bits());
        assert_eq!(gs, gf);
    }

    #[test]
    fn gradient_matches_finite_differences_fused() {
        // Gradcheck stays green through the fused kernel, not just the
        // scalar oracle.
        let emb = random_group(5, 4, 21);
        let conf = [0.9, 0.7, 0.8, 0.6];
        let eta = 8.0;
        let (_, grads) = group_softmax_loss_with(&emb, &conf, eta, Kernel::Tiled).unwrap();
        let eps = 1e-6;
        for r in 0..emb.rows() {
            for c in 0..emb.cols() {
                let mut up = emb.clone();
                up.set(r, c, emb.get(r, c).unwrap() + eps).unwrap();
                let mut down = emb.clone();
                down.set(r, c, emb.get(r, c).unwrap() - eps).unwrap();
                let lu = group_softmax_loss_with(&up, &conf, eta, Kernel::Tiled)
                    .unwrap()
                    .0;
                let ld = group_softmax_loss_with(&down, &conf, eta, Kernel::Tiled)
                    .unwrap()
                    .0;
                let numeric = (lu - ld) / (2.0 * eps);
                let analytic = grads.get(r, c).unwrap();
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "fused grad[{r}][{c}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn posterior_consistent_with_loss() {
        let emb = random_group(5, 4, 12);
        let conf = [0.8, 0.9, 0.7, 0.85];
        let (loss, _) = group_softmax_loss(&emb, &conf, 6.0).unwrap();
        let p = group_posterior(&emb, &conf, 6.0).unwrap();
        assert!((loss + p.ln()).abs() < 1e-9);
    }
}
