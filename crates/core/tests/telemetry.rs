//! Trainer-level telemetry contract: one `EpochEnd` and one `SamplerBatch`
//! per configured epoch, one `ConfidenceSummary` per fit, and a
//! `TrainingTrace` whose new diagnostic vectors line up with the epochs.

use std::sync::Arc;

use rll_core::{RllConfig, RllTrainer, RllVariant};
use rll_crowd::simulate::{WorkerModel, WorkerPool};
use rll_crowd::AnnotationMatrix;
use rll_obs::{EventKind, MemorySink, Recorder};
use rll_tensor::{Matrix, Rng64};

fn crowd_dataset(n: usize, seed: u64) -> (Matrix, AnnotationMatrix) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..n {
        let l = u8::from(rng.bernoulli(0.6));
        let c = if l == 1 { 1.0 } else { -1.0 };
        rows.push(vec![
            rng.normal(c, 0.6).unwrap(),
            rng.normal(-c, 0.6).unwrap(),
            rng.normal(0.0, 1.0).unwrap(),
        ]);
        truth.push(l);
    }
    let features = Matrix::from_rows(&rows).unwrap();
    let pool = WorkerPool::new(vec![
        WorkerModel::OneCoin { accuracy: 0.85 },
        WorkerModel::OneCoin { accuracy: 0.8 },
        WorkerModel::OneCoin { accuracy: 0.9 },
    ]);
    let ann = pool.annotate(&truth, &mut rng).unwrap();
    (features, ann)
}

#[test]
fn fit_emits_one_epoch_event_per_configured_epoch() {
    const EPOCHS: usize = 7;
    let (x, ann) = crowd_dataset(60, 11);
    let config = RllConfig {
        variant: RllVariant::Bayesian,
        epochs: EPOCHS,
        groups_per_epoch: 32,
        ..Default::default()
    };
    let sink = Arc::new(MemorySink::new());
    let recorder = Recorder::new("trainer-telemetry", vec![Box::new(sink.clone())]);
    let trainer = RllTrainer::new(config)
        .unwrap()
        .with_recorder(recorder.clone());
    let (_, trace) = trainer.fit(&x, &ann, 5).unwrap();

    let events = sink.events();
    let epoch_events: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::EpochEnd(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    let sampler_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SamplerBatch(_)))
        .count();
    let confidence_events = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ConfidenceSummary(_)))
        .count();

    assert_eq!(epoch_events.len(), EPOCHS, "one EpochEnd per epoch");
    assert_eq!(sampler_events, EPOCHS, "one SamplerBatch per epoch");
    assert_eq!(confidence_events, 1, "one ConfidenceSummary per fit");
    for (i, stats) in epoch_events.iter().enumerate() {
        assert_eq!(stats.epoch, i);
        assert_eq!(stats.groups_sampled, 32);
        assert!(stats.mean_loss.is_finite());
        assert!(stats.grad_norm_pre_clip >= stats.grad_norm_post_clip);
        assert!(stats.learning_rate > 0.0);
        assert!(stats.wall_secs >= 0.0);
    }

    // The trace's diagnostic vectors march in step with the epochs.
    assert_eq!(trace.epoch_losses.len(), EPOCHS);
    assert_eq!(trace.grad_norms_pre_clip.len(), EPOCHS);
    assert_eq!(trace.grad_norms_post_clip.len(), EPOCHS);
    assert_eq!(trace.epoch_wall_secs.len(), EPOCHS);

    // Metrics side: counters and the span histogram saw the same run.
    let metrics = recorder.metrics().snapshot();
    assert_eq!(
        metrics.counters.get("train.groups_sampled"),
        Some(&(EPOCHS as u64 * 32))
    );
    assert_eq!(metrics.histograms["train.epoch"].count, EPOCHS as u64);
    assert_eq!(metrics.histograms["span.train.fit"].count, 1);
}

#[test]
fn disabled_recorder_trains_identically() {
    let (x, ann) = crowd_dataset(50, 23);
    let config = RllConfig {
        variant: RllVariant::Mle,
        epochs: 5,
        groups_per_epoch: 24,
        ..Default::default()
    };
    let silent = RllTrainer::new(config.clone()).unwrap();
    let sink = Arc::new(MemorySink::new());
    let observed = RllTrainer::new(config)
        .unwrap()
        .with_recorder(Recorder::new("t", vec![Box::new(sink.clone())]));
    let (_, trace_a) = silent.fit(&x, &ann, 7).unwrap();
    let (_, trace_b) = observed.fit(&x, &ann, 7).unwrap();
    // Telemetry must be a pure observer: same seed, same losses.
    assert_eq!(trace_a.epoch_losses, trace_b.epoch_losses);
    assert!(!sink.is_empty());
}
