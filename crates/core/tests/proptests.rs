//! Property-based tests for the RLL core: grouping invariants and loss
//! identities that must hold for arbitrary well-formed inputs.

use proptest::prelude::*;
use rll_core::loss::{group_posterior, group_softmax_loss};
use rll_core::{GroupSampler, SamplingStrategy};
use rll_tensor::{Matrix, Rng64};

/// Strategy: a label vector with at least 2 positives and 3 negatives.
fn viable_labels() -> impl Strategy<Value = Vec<u8>> {
    (2usize..12, 3usize..12, 0u64..1000).prop_map(|(pos, neg, seed)| {
        let mut labels = vec![1u8; pos];
        labels.extend(vec![0u8; neg]);
        let mut rng = Rng64::seed_from_u64(seed);
        rng.shuffle(&mut labels);
        labels
    })
}

/// Strategy: a random embedding matrix for a k-negative group.
fn group_embeddings() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (1usize..6, 2usize..8, 0u64..1000).prop_map(|(k, dim, seed)| {
        let mut rng = Rng64::seed_from_u64(seed);
        let emb = Matrix::from_fn(k + 2, dim, |_, _| rng.standard_normal());
        let conf: Vec<f64> = (0..k + 1).map(|_| 0.05 + 0.9 * rng.uniform()).collect();
        (emb, conf)
    })
}

proptest! {
    #[test]
    fn sampled_groups_satisfy_invariants(labels in viable_labels(), seed in 0u64..500, k in 1usize..4) {
        prop_assume!(labels.iter().filter(|&&l| l == 0).count() >= k);
        let sampler = GroupSampler::new(&labels, k, SamplingStrategy::Uniform, None).unwrap();
        let mut rng = Rng64::seed_from_u64(seed);
        let g = sampler.sample(&mut rng).unwrap();
        prop_assert_ne!(g.anchor, g.positive);
        prop_assert_eq!(labels[g.anchor], 1);
        prop_assert_eq!(labels[g.positive], 1);
        prop_assert_eq!(g.negatives.len(), k);
        let mut negs = g.negatives.clone();
        negs.sort_unstable();
        negs.dedup();
        prop_assert_eq!(negs.len(), k, "negatives must be distinct");
        for &n in &g.negatives {
            prop_assert_eq!(labels[n], 0);
        }
    }

    #[test]
    fn group_space_matches_combinatorics(labels in viable_labels()) {
        let pos = labels.iter().filter(|&&l| l == 1).count() as u128;
        let neg = labels.iter().filter(|&&l| l == 0).count() as u128;
        prop_assume!(neg >= 3);
        let sampler = GroupSampler::new(&labels, 3, SamplingStrategy::Uniform, None).unwrap();
        let c3 = neg * (neg - 1) * (neg - 2) / 6; // C(neg, 3)
        prop_assert_eq!(sampler.group_space_size(), pos * (pos - 1) * c3);
    }

    #[test]
    fn loss_is_positive_and_finite((emb, conf) in group_embeddings(), eta in 0.5f64..30.0) {
        let (loss, grads) = group_softmax_loss(&emb, &conf, eta).unwrap();
        prop_assert!(loss > 0.0, "softmax NLL is strictly positive, got {loss}");
        prop_assert!(loss.is_finite());
        prop_assert!(grads.as_slice().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn loss_matches_posterior((emb, conf) in group_embeddings(), eta in 0.5f64..30.0) {
        let (loss, _) = group_softmax_loss(&emb, &conf, eta).unwrap();
        let p = group_posterior(&emb, &conf, eta).unwrap();
        prop_assert!((loss + p.ln()).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn gradient_spot_check((emb, conf) in group_embeddings()) {
        let eta = 8.0;
        let (_, grads) = group_softmax_loss(&emb, &conf, eta).unwrap();
        let eps = 1e-6;
        // Check the anchor's first coordinate against finite differences.
        let mut up = emb.clone();
        up.set(0, 0, emb.get(0, 0).unwrap() + eps).unwrap();
        let mut down = emb.clone();
        down.set(0, 0, emb.get(0, 0).unwrap() - eps).unwrap();
        let numeric = (group_softmax_loss(&up, &conf, eta).unwrap().0
            - group_softmax_loss(&down, &conf, eta).unwrap().0)
            / (2.0 * eps);
        let analytic = grads.get(0, 0).unwrap();
        prop_assert!(
            (numeric - analytic).abs() < 1e-4,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn embedding_scale_invariance((emb, conf) in group_embeddings(), scale in 0.5f64..5.0) {
        // Cosine relevance is scale-invariant, so scaling ALL embeddings by a
        // positive constant leaves the loss unchanged.
        let (loss, _) = group_softmax_loss(&emb, &conf, 10.0).unwrap();
        let scaled = emb.scale(scale);
        let (loss_scaled, _) = group_softmax_loss(&scaled, &conf, 10.0).unwrap();
        prop_assert!((loss - loss_scaled).abs() < 1e-9);
    }

    #[test]
    fn higher_confidence_on_positive_reduces_loss_when_aligned(seed in 0u64..500) {
        // Build a group where the positive is the best-aligned candidate;
        // raising δ_j (positive's confidence) must then lower the loss.
        let mut rng = Rng64::seed_from_u64(seed);
        let dim = 4;
        let mut anchor: Vec<f64> = (0..dim).map(|_| rng.standard_normal()).collect();
        rll_tensor::ops::l2_normalize(&mut anchor);
        let positive = anchor.clone();
        let negatives: Vec<Vec<f64>> = (0..2)
            .map(|_| anchor.iter().map(|x| -x + 0.1 * rng.standard_normal()).collect())
            .collect();
        let mut rows = vec![anchor, positive];
        rows.extend(negatives);
        let emb = Matrix::from_rows(&rows).unwrap();
        let (loss_low, _) = group_softmax_loss(&emb, &[0.3, 0.8, 0.8], 10.0).unwrap();
        let (loss_high, _) = group_softmax_loss(&emb, &[0.95, 0.8, 0.8], 10.0).unwrap();
        prop_assert!(loss_high < loss_low, "high {loss_high} vs low {loss_low}");
    }

    #[test]
    fn confidence_biased_sampler_only_picks_negatives(labels in viable_labels(), seed in 0u64..200) {
        let conf: Vec<f64> = labels.iter().map(|&l| if l == 1 { 0.9 } else { 0.6 }).collect();
        let negs = labels.iter().filter(|&&l| l == 0).count();
        prop_assume!(negs >= 2);
        let sampler = GroupSampler::new(
            &labels,
            2,
            SamplingStrategy::ConfidenceBiased { gamma: 1.5 },
            Some(&conf),
        )
        .unwrap();
        let mut rng = Rng64::seed_from_u64(seed);
        let g = sampler.sample(&mut rng).unwrap();
        for &n in &g.negatives {
            prop_assert_eq!(labels[n], 0);
        }
    }
}
