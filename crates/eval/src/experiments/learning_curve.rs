//! Label-budget learning curve (extension).
//!
//! The paper's motivation is that crowdsourced labels are *limited* — 880 and
//! 472 examples — and that the grouping layer manufactures training signal
//! from that scarcity. This experiment makes the claim measurable: sweep the
//! number of labeled examples `n` and compare a raw-feature baseline
//! (SoftProb) against RLL-Bayesian. The gap should widen as labels get
//! scarcer, because `O(|D⁺|²·|D⁻|^k)` groups amplify small `n` far more than
//! it amplifies large `n`.

use crate::experiments::ExperimentScale;
use crate::harness::{CrossValidator, MethodScore};
use crate::method::MethodSpec;
use crate::Result;
use rll_core::RllVariant;
use rll_data::presets;
use serde::{Deserialize, Serialize};

/// One point of the learning curve, averaged over dataset seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Labeled-example budget.
    pub n: usize,
    /// Mean baseline (SoftProb) accuracy across dataset seeds.
    pub baseline_accuracy: f64,
    /// Mean RLL-Bayesian accuracy across dataset seeds.
    pub rll_accuracy: f64,
    /// Per-seed scores for both methods (aligned), for variance analysis.
    pub baseline_runs: Vec<MethodScore>,
    /// Per-seed RLL scores.
    pub rll_runs: Vec<MethodScore>,
}

/// Result of a learning-curve run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LearningCurveResult {
    /// Points in ascending `n`.
    pub points: Vec<CurvePoint>,
    /// Seed the run used.
    pub seed: u64,
}

impl LearningCurveResult {
    /// Renders a text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Learning curve (oral simulation): SoftProb vs RLL-Bayesian"
        );
        let _ = writeln!(
            out,
            "{:<8}{:<14}{:<14}{:<10}",
            "n", "SoftProb-Acc", "RLL-Acc", "gap"
        );
        let _ = writeln!(out, "{}", "-".repeat(46));
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<8}{:<14.3}{:<14.3}{:+.3}",
                p.n,
                p.baseline_accuracy,
                p.rll_accuracy,
                p.rll_accuracy - p.baseline_accuracy
            );
        }
        out
    }
}

/// Runs the sweep over label budgets on `oral`-flavoured simulations.
///
/// Each budget point averages over `repeats` independently generated
/// datasets (seeds `seed`, `seed + 1000`, …) — a single simulation of a few
/// hundred examples is too noisy to read a trend from.
pub fn run_repeated(
    scale: ExperimentScale,
    seed: u64,
    ns: &[usize],
    repeats: usize,
) -> Result<LearningCurveResult> {
    run_repeated_observed(scale, seed, ns, repeats, &rll_obs::Recorder::disabled())
}

/// [`run_repeated`] with telemetry through `recorder`.
pub fn run_repeated_observed(
    scale: ExperimentScale,
    seed: u64,
    ns: &[usize],
    repeats: usize,
    recorder: &rll_obs::Recorder,
) -> Result<LearningCurveResult> {
    if repeats == 0 {
        return Err(crate::EvalError::InvalidConfig {
            reason: "repeats must be positive".into(),
        });
    }
    let mut points = Vec::with_capacity(ns.len());
    for &n in ns {
        recorder.note(format!("learning curve: n={n} ({repeats} repeats)"));
        let mut baseline_runs = Vec::with_capacity(repeats);
        let mut rll_runs = Vec::with_capacity(repeats);
        for r in 0..repeats {
            let run_seed = seed + 1000 * r as u64;
            let cv = CrossValidator {
                folds: scale.folds(),
                budget: scale.budget(),
                seed: run_seed,
                parallel: true,
            };
            let ds = presets::oral_scaled(n, run_seed)?;
            baseline_runs.push(cv.evaluate_with(MethodSpec::SoftProb, &ds, recorder)?);
            rll_runs.push(cv.evaluate_with(
                MethodSpec::Rll(RllVariant::Bayesian),
                &ds,
                recorder,
            )?);
        }
        let mean = |runs: &[MethodScore]| {
            runs.iter().map(|s| s.accuracy.mean).sum::<f64>() / runs.len() as f64
        };
        points.push(CurvePoint {
            n,
            baseline_accuracy: mean(&baseline_runs),
            rll_accuracy: mean(&rll_runs),
            baseline_runs,
            rll_runs,
        });
    }
    Ok(LearningCurveResult { points, seed })
}

/// Single-repeat convenience wrapper around [`run_repeated`].
pub fn run(scale: ExperimentScale, seed: u64, ns: &[usize]) -> Result<LearningCurveResult> {
    run_repeated(scale, seed, ns, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_runs_and_renders() {
        let result = run(ExperimentScale::Quick, 9, &[60, 120]).unwrap();
        assert_eq!(result.points.len(), 2);
        assert_eq!(result.points[0].n, 60);
        let table = result.render();
        assert!(table.contains("Learning curve"));
        assert!(table.contains("60"));
        for p in &result.points {
            assert!(p.baseline_accuracy > 0.4);
            assert!(p.rll_accuracy > 0.4);
            assert_eq!(p.baseline_runs.len(), 1);
        }
    }

    #[test]
    fn repeated_runs_average() {
        let result = run_repeated(ExperimentScale::Quick, 5, &[60], 2).unwrap();
        let p = &result.points[0];
        assert_eq!(p.baseline_runs.len(), 2);
        let manual = (p.baseline_runs[0].accuracy.mean + p.baseline_runs[1].accuracy.mean) / 2.0;
        assert!((p.baseline_accuracy - manual).abs() < 1e-12);
        assert!(run_repeated(ExperimentScale::Quick, 5, &[60], 0).is_err());
    }
}
