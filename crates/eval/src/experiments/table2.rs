//! Table II: RLL-Bayesian accuracy/F1 as the group's negative count `k`
//! sweeps over {2, 3, 4, 5}.

use crate::experiments::ExperimentScale;
use crate::harness::{CrossValidator, MethodScore};
use crate::method::{MethodSpec, TrainBudget};
use crate::report::format_sweep_table;
use crate::Result;
use rll_core::RllVariant;
use rll_data::presets;
use serde::{Deserialize, Serialize};

/// Result of a Table II run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// The swept `k` values.
    pub ks: Vec<usize>,
    /// Per-`k` scores on `oral` (aligned with `ks`).
    pub oral: Vec<MethodScore>,
    /// Per-`k` scores on `class`.
    pub class: Vec<MethodScore>,
    /// Scale and seed.
    pub scale: ExperimentScale,
    /// Seed the run used.
    pub seed: u64,
}

impl Table2Result {
    /// Renders the paper-style sweep table.
    pub fn render(&self) -> String {
        format_sweep_table(
            "Table II: RLL-Bayesian results with different k",
            "k",
            &self.ks.iter().map(usize::to_string).collect::<Vec<_>>(),
            &["oral", "class"],
            &[self.oral.clone(), self.class.clone()],
        )
    }

    /// The `k` with the highest mean accuracy on a dataset (`true` = oral).
    pub fn best_k(&self, oral: bool) -> usize {
        let scores = if oral { &self.oral } else { &self.class };
        let (i, _) = scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.accuracy.mean.total_cmp(&b.accuracy.mean))
            // lint: allow(no-panic-lib) — structural invariant: Table2Result is
            // only built by run_with_ks(), which pushes one entry per k.
            .expect("sweep has entries");
        self.ks[i]
    }
}

/// Runs the sweep with the paper's values `k ∈ {2, 3, 4, 5}`.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Table2Result> {
    run_with_ks(scale, seed, &[2, 3, 4, 5])
}

/// [`run`] with telemetry through `recorder`.
pub fn run_observed(
    scale: ExperimentScale,
    seed: u64,
    recorder: &rll_obs::Recorder,
) -> Result<Table2Result> {
    run_with_ks_observed(scale, seed, &[2, 3, 4, 5], recorder)
}

/// Runs the sweep with custom `k` values.
pub fn run_with_ks(scale: ExperimentScale, seed: u64, ks: &[usize]) -> Result<Table2Result> {
    run_with_ks_observed(scale, seed, ks, &rll_obs::Recorder::disabled())
}

/// [`run_with_ks`] with telemetry through `recorder`.
pub fn run_with_ks_observed(
    scale: ExperimentScale,
    seed: u64,
    ks: &[usize],
    recorder: &rll_obs::Recorder,
) -> Result<Table2Result> {
    let oral_ds = presets::oral_scaled(scale.oral_n(), seed)?;
    let class_ds = presets::class_scaled(scale.class_n(), seed + 1)?;
    let mut oral = Vec::with_capacity(ks.len());
    let mut class = Vec::with_capacity(ks.len());
    for &k in ks {
        recorder.note(format!("table2: sweeping k={k}"));
        let budget = TrainBudget {
            k,
            ..scale.budget()
        };
        let cv = CrossValidator {
            folds: scale.folds(),
            budget,
            seed,
            parallel: true,
        };
        oral.push(cv.evaluate_with(MethodSpec::Rll(RllVariant::Bayesian), &oral_ds, recorder)?);
        class.push(cv.evaluate_with(MethodSpec::Rll(RllVariant::Bayesian), &class_ds, recorder)?);
    }
    Ok(Table2Result {
        ks: ks.to_vec(),
        oral,
        class,
        scale,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_runs() {
        let result = run_with_ks(ExperimentScale::Quick, 7, &[2, 3]).unwrap();
        assert_eq!(result.ks, vec![2, 3]);
        assert_eq!(result.oral.len(), 2);
        let table = result.render();
        assert!(table.contains("Table II"));
        let best = result.best_k(true);
        assert!(best == 2 || best == 3);
    }
}
