//! Table III: RLL-Bayesian accuracy/F1 as the number of crowd workers per
//! item `d` sweeps over {1, 3, 5}.
//!
//! The full 5-worker annotation tables are generated once; each sweep point
//! restricts every item to its first `d` workers, mirroring "hire fewer
//! annotators" without resampling the underlying items.

use crate::experiments::ExperimentScale;
use crate::harness::{CrossValidator, MethodScore};
use crate::method::MethodSpec;
use crate::report::format_sweep_table;
use crate::Result;
use rll_core::RllVariant;
use rll_data::presets;
use serde::{Deserialize, Serialize};

/// Result of a Table III run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// The swept worker counts.
    pub ds: Vec<usize>,
    /// Per-`d` scores on `oral` (aligned with `ds`).
    pub oral: Vec<MethodScore>,
    /// Per-`d` scores on `class`.
    pub class: Vec<MethodScore>,
    /// Scale and seed.
    pub scale: ExperimentScale,
    /// Seed the run used.
    pub seed: u64,
}

impl Table3Result {
    /// Renders the paper-style sweep table.
    pub fn render(&self) -> String {
        format_sweep_table(
            "Table III: RLL-Bayesian results with different d",
            "d",
            &self.ds.iter().map(usize::to_string).collect::<Vec<_>>(),
            &["oral", "class"],
            &[self.oral.clone(), self.class.clone()],
        )
    }

    /// Whether accuracy is non-decreasing in `d` on a dataset, the paper's
    /// headline observation for this table.
    pub fn monotone_accuracy(&self, oral: bool) -> bool {
        let scores = if oral { &self.oral } else { &self.class };
        scores
            .windows(2)
            .all(|w| w[1].accuracy.mean >= w[0].accuracy.mean - 1e-9)
    }
}

/// Runs the sweep with the paper's values `d ∈ {1, 3, 5}`.
pub fn run(scale: ExperimentScale, seed: u64) -> Result<Table3Result> {
    run_with_ds(scale, seed, &[1, 3, 5])
}

/// [`run`] with telemetry through `recorder`.
pub fn run_observed(
    scale: ExperimentScale,
    seed: u64,
    recorder: &rll_obs::Recorder,
) -> Result<Table3Result> {
    run_with_ds_observed(scale, seed, &[1, 3, 5], recorder)
}

/// Runs the sweep with custom worker counts (each must be ≤ 5, the pool size
/// of the presets).
pub fn run_with_ds(scale: ExperimentScale, seed: u64, ds: &[usize]) -> Result<Table3Result> {
    run_with_ds_observed(scale, seed, ds, &rll_obs::Recorder::disabled())
}

/// [`run_with_ds`] with telemetry through `recorder`.
pub fn run_with_ds_observed(
    scale: ExperimentScale,
    seed: u64,
    ds: &[usize],
    recorder: &rll_obs::Recorder,
) -> Result<Table3Result> {
    let oral_full = presets::oral_scaled(scale.oral_n(), seed)?;
    let class_full = presets::class_scaled(scale.class_n(), seed + 1)?;
    let cv = CrossValidator {
        folds: scale.folds(),
        budget: scale.budget(),
        seed,
        parallel: true,
    };
    let mut oral = Vec::with_capacity(ds.len());
    let mut class = Vec::with_capacity(ds.len());
    for &d in ds {
        recorder.note(format!("table3: restricting to d={d} workers"));
        let oral_d = oral_full.with_workers(d)?;
        let class_d = class_full.with_workers(d)?;
        oral.push(cv.evaluate_with(MethodSpec::Rll(RllVariant::Bayesian), &oral_d, recorder)?);
        class.push(cv.evaluate_with(MethodSpec::Rll(RllVariant::Bayesian), &class_d, recorder)?);
    }
    Ok(Table3Result {
        ds: ds.to_vec(),
        oral,
        class,
        scale,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_runs() {
        let result = run_with_ds(ExperimentScale::Quick, 9, &[1, 5]).unwrap();
        assert_eq!(result.ds, vec![1, 5]);
        let table = result.render();
        assert!(table.contains("Table III"));
        // monotone_accuracy computes without panicking on two points.
        let _ = result.monotone_accuracy(true);
    }
}
