//! Table I: the main comparison — 15 methods × {oral, class} × {accuracy, F1}.

use crate::experiments::ExperimentScale;
use crate::harness::{CrossValidator, MethodScore};
use crate::method::MethodSpec;
use crate::report::format_comparison_table;
use crate::Result;
use rll_data::presets;
use serde::{Deserialize, Serialize};

/// Result of a Table I run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Scores on the simulated `oral` dataset, in Table I row order.
    pub oral: Vec<MethodScore>,
    /// Scores on the simulated `class` dataset, same order.
    pub class: Vec<MethodScore>,
    /// Scale the run used.
    pub scale: ExperimentScale,
    /// Seed the run used.
    pub seed: u64,
}

impl Table1Result {
    /// Renders the paper-style text table.
    pub fn render(&self) -> String {
        format_comparison_table(
            "Table I: prediction results on the (simulated) oral and class datasets",
            &["oral", "class"],
            &[self.oral.clone(), self.class.clone()],
        )
    }

    /// The row with the highest mean accuracy on a dataset (`true` = oral).
    pub fn best_method(&self, oral: bool) -> &MethodScore {
        let scores = if oral { &self.oral } else { &self.class };
        scores
            .iter()
            .max_by(|a, b| a.accuracy.mean.total_cmp(&b.accuracy.mean))
            // lint: allow(no-panic-lib) — structural invariant: Table1Result is
            // only built by run(), which pushes one row per method spec.
            .expect("table has rows")
    }

    /// Mean accuracy of a group across both datasets — used to check the
    /// paper's group ordering claim (4 > 3 > 1/2 on average).
    pub fn group_mean_accuracy(&self, group: u8) -> f64 {
        let scores: Vec<f64> = self
            .oral
            .iter()
            .chain(&self.class)
            .filter(|s| s.group == group)
            .map(|s| s.accuracy.mean)
            .collect();
        scores.iter().sum::<f64>() / scores.len().max(1) as f64
    }
}

/// Runs the experiment. `methods` defaults to all 15 rows; pass a subset to
/// iterate faster.
pub fn run(
    scale: ExperimentScale,
    seed: u64,
    methods: Option<&[MethodSpec]>,
) -> Result<Table1Result> {
    run_observed(scale, seed, methods, &rll_obs::Recorder::disabled())
}

/// [`run`] with telemetry: per-fold, per-method, and (for RLL rows)
/// per-epoch events flow through `recorder`.
pub fn run_observed(
    scale: ExperimentScale,
    seed: u64,
    methods: Option<&[MethodSpec]>,
    recorder: &rll_obs::Recorder,
) -> Result<Table1Result> {
    let all = MethodSpec::table1_rows();
    let methods = methods.unwrap_or(&all);
    let oral_ds = presets::oral_scaled(scale.oral_n(), seed)?;
    let class_ds = presets::class_scaled(scale.class_n(), seed + 1)?;
    let cv = CrossValidator {
        folds: scale.folds(),
        budget: scale.budget(),
        seed,
        parallel: true,
    };
    recorder.note(format!(
        "table1: {} methods on oral (n={}) and class (n={})",
        methods.len(),
        oral_ds.len(),
        class_ds.len()
    ));
    Ok(Table1Result {
        oral: cv.evaluate_all_with(methods, &oral_ds, recorder)?,
        class: cv.evaluate_all_with(methods, &class_ds, recorder)?,
        scale,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_core::RllVariant;

    #[test]
    fn quick_subset_run_produces_table() {
        // Three representative methods, one per interesting group.
        let methods = [
            MethodSpec::SoftProb,
            MethodSpec::Em,
            MethodSpec::Rll(RllVariant::Bayesian),
        ];
        let result = run(ExperimentScale::Quick, 42, Some(&methods)).unwrap();
        assert_eq!(result.oral.len(), 3);
        assert_eq!(result.class.len(), 3);
        let table = result.render();
        assert!(table.contains("SoftProb"));
        assert!(table.contains("RLL+Bayesian"));
        // Everything should beat coin flipping on the simulated data.
        for s in result.oral.iter().chain(&result.class) {
            assert!(
                s.accuracy.mean > 0.5,
                "{} acc {}",
                s.method,
                s.accuracy.mean
            );
        }
        let _ = result.best_method(true);
        let _ = result.group_mean_accuracy(1);
    }
}
