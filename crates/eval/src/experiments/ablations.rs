//! Ablations of RLL's design choices (DESIGN.md §7).
//!
//! These go beyond the paper's tables: they isolate the contribution of the
//! confidence estimator, the softmax temperature `η`, the embedding
//! dimension, and the (extension) confidence-biased negative sampling.

use crate::experiments::ExperimentScale;
use crate::harness::{CrossValidator, MethodScore};
use crate::method::{MethodSpec, TrainBudget};
use crate::Result;
use rll_core::pipeline::score_predictions;
use rll_core::{RllConfig, RllPipeline, RllVariant, SamplingStrategy};
use rll_data::{presets, Dataset, StratifiedKFold};
use serde::{Deserialize, Serialize};

/// One ablation point: a label and its cross-validated scores.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    /// What was varied (e.g. `"eta=5"`).
    pub label: String,
    /// Scores at this setting.
    pub score: MethodScore,
}

/// Sweeps the softmax temperature `η` for RLL-Bayesian on `oral`.
pub fn eta_sweep(scale: ExperimentScale, seed: u64, etas: &[f64]) -> Result<Vec<AblationPoint>> {
    eta_sweep_observed(scale, seed, etas, &rll_obs::Recorder::disabled())
}

/// [`eta_sweep`] with telemetry through `recorder`.
pub fn eta_sweep_observed(
    scale: ExperimentScale,
    seed: u64,
    etas: &[f64],
    recorder: &rll_obs::Recorder,
) -> Result<Vec<AblationPoint>> {
    let ds = presets::oral_scaled(scale.oral_n(), seed)?;
    etas.iter()
        .map(|&eta| {
            recorder.note(format!("ablation: eta={eta}"));
            let budget = TrainBudget {
                eta,
                ..scale.budget()
            };
            let cv = CrossValidator {
                folds: scale.folds(),
                budget,
                seed,
                parallel: true,
            };
            Ok(AblationPoint {
                label: format!("eta={eta}"),
                score: cv.evaluate_with(MethodSpec::Rll(RllVariant::Bayesian), &ds, recorder)?,
            })
        })
        .collect()
}

/// Compares the three confidence estimators at a fixed seed and budget — the
/// core ablation behind the paper's RLL / RLL+MLE / RLL+Bayesian rows.
pub fn confidence_ablation(scale: ExperimentScale, seed: u64) -> Result<Vec<AblationPoint>> {
    confidence_ablation_observed(scale, seed, &rll_obs::Recorder::disabled())
}

/// [`confidence_ablation`] with telemetry through `recorder`.
pub fn confidence_ablation_observed(
    scale: ExperimentScale,
    seed: u64,
    recorder: &rll_obs::Recorder,
) -> Result<Vec<AblationPoint>> {
    let ds = presets::class_scaled(scale.class_n(), seed)?;
    let cv = CrossValidator {
        folds: scale.folds(),
        budget: scale.budget(),
        seed,
        parallel: true,
    };
    [
        RllVariant::Plain,
        RllVariant::Mle,
        RllVariant::Bayesian,
        RllVariant::WorkerAware,
    ]
    .into_iter()
    .map(|variant| {
        Ok(AblationPoint {
            label: variant.name().to_string(),
            score: cv.evaluate_with(MethodSpec::Rll(variant), &ds, recorder)?,
        })
    })
    .collect()
}

/// Sweeps the embedding dimension for RLL-Bayesian on `oral`.
pub fn dim_sweep(scale: ExperimentScale, seed: u64, dims: &[usize]) -> Result<Vec<AblationPoint>> {
    dim_sweep_observed(scale, seed, dims, &rll_obs::Recorder::disabled())
}

/// [`dim_sweep`] with telemetry through `recorder`.
pub fn dim_sweep_observed(
    scale: ExperimentScale,
    seed: u64,
    dims: &[usize],
    recorder: &rll_obs::Recorder,
) -> Result<Vec<AblationPoint>> {
    let ds = presets::oral_scaled(scale.oral_n(), seed)?;
    dims.iter()
        .map(|&dim| {
            recorder.note(format!("ablation: embedding dim={dim}"));
            let budget = TrainBudget {
                embedding_dim: dim,
                ..scale.budget()
            };
            let cv = CrossValidator {
                folds: scale.folds(),
                budget,
                seed,
                parallel: true,
            };
            Ok(AblationPoint {
                label: format!("dim={dim}"),
                score: cv.evaluate_with(MethodSpec::Rll(RllVariant::Bayesian), &ds, recorder)?,
            })
        })
        .collect()
}

/// Compares uniform vs. confidence-biased negative sampling (this
/// reproduction's extension) on one dataset, single held-out fold per seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingAblation {
    /// Accuracy with the paper's uniform sampling.
    pub uniform_accuracy: f64,
    /// Accuracy with confidence-biased sampling.
    pub biased_accuracy: f64,
    /// Gamma used by the biased variant.
    pub gamma: f64,
}

/// Runs the sampling-strategy ablation.
pub fn sampling_ablation(
    scale: ExperimentScale,
    seed: u64,
    gamma: f64,
) -> Result<SamplingAblation> {
    sampling_ablation_observed(scale, seed, gamma, &rll_obs::Recorder::disabled())
}

/// [`sampling_ablation`] with telemetry through `recorder`. The sampler's
/// rejection counts in `SamplerBatch` events are the interesting part here:
/// they show how contended the confidence-biased weights are.
pub fn sampling_ablation_observed(
    scale: ExperimentScale,
    seed: u64,
    gamma: f64,
    recorder: &rll_obs::Recorder,
) -> Result<SamplingAblation> {
    let ds = presets::class_scaled(scale.class_n(), seed)?;
    let run = |strategy: SamplingStrategy| -> Result<f64> {
        recorder.note(format!("ablation: sampling strategy {strategy:?}"));
        let budget = scale.budget();
        let config = RllConfig {
            sampling: strategy,
            ..budget.rll_config(RllVariant::Bayesian)
        };
        single_fold_accuracy(&ds, config, seed, recorder)
    };
    Ok(SamplingAblation {
        uniform_accuracy: run(SamplingStrategy::Uniform)?,
        biased_accuracy: run(SamplingStrategy::ConfidenceBiased { gamma })?,
        gamma,
    })
}

/// Trains on folds 1.. and scores fold 0 against expert labels.
fn single_fold_accuracy(
    ds: &Dataset,
    config: RllConfig,
    seed: u64,
    recorder: &rll_obs::Recorder,
) -> Result<f64> {
    let folds = StratifiedKFold::new(&ds.expert_labels, 5, seed)?;
    let split = folds.split(0)?;
    let train = ds.select(&split.train)?;
    let test = ds.select(&split.test)?;
    let mut pipeline = RllPipeline::new(config).with_recorder(recorder.clone());
    pipeline.fit(&train.features, &train.annotations, seed)?;
    let pred = pipeline.predict(&test.features)?;
    Ok(score_predictions(&pred, &test.expert_labels)?.accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_sweep_runs() {
        let points = eta_sweep(ExperimentScale::Quick, 3, &[5.0, 10.0]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[0].label.contains("eta=5"));
        assert!(points.iter().all(|p| p.score.accuracy.mean > 0.4));
    }

    #[test]
    fn confidence_ablation_runs() {
        let points = confidence_ablation(ExperimentScale::Quick, 4).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label, "RLL");
        assert_eq!(points[2].label, "RLL+Bayesian");
        assert_eq!(points[3].label, "RLL+Worker");
    }

    #[test]
    fn sampling_ablation_runs() {
        let result = sampling_ablation(ExperimentScale::Quick, 5, 1.0).unwrap();
        assert!(result.uniform_accuracy > 0.4);
        assert!(result.biased_accuracy > 0.4);
        assert_eq!(result.gamma, 1.0);
    }
}
