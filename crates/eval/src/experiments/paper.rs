//! The paper's reported numbers, for side-by-side comparison in
//! `EXPERIMENTS.md` and the repro binaries.

/// One reported row: `(method, oral_acc, oral_f1, class_acc, class_f1)`.
pub type PaperRow = (&'static str, f64, f64, f64, f64);

/// Table I as printed in the paper.
pub const TABLE1: [PaperRow; 15] = [
    ("SoftProb", 0.815, 0.869, 0.758, 0.810),
    ("EM", 0.843, 0.887, 0.606, 0.698),
    ("GLAD", 0.831, 0.881, 0.697, 0.773),
    ("SiameseNet", 0.802, 0.859, 0.719, 0.836),
    ("TripletNet", 0.847, 0.889, 0.750, 0.857),
    ("RelationNet", 0.843, 0.890, 0.730, 0.842),
    ("SiameseNet+EM", 0.798, 0.856, 0.727, 0.842),
    ("SiameseNet+GLAD", 0.815, 0.871, 0.727, 0.842),
    ("TripletNet+EM", 0.843, 0.887, 0.727, 0.842),
    ("TripletNet+GLAD", 0.843, 0.890, 0.667, 0.792),
    ("RelationNet+EM", 0.860, 0.899, 0.727, 0.842),
    ("RelationNet+GLAD", 0.854, 0.889, 0.730, 0.842),
    ("RLL", 0.871, 0.901, 0.818, 0.880),
    ("RLL+MLE", 0.871, 0.903, 0.848, 0.902),
    ("RLL+Bayesian", 0.888, 0.915, 0.879, 0.920),
];

/// Table II: RLL-Bayesian with `k ∈ {2, 3, 4, 5}`.
pub const TABLE2: [(usize, f64, f64, f64, f64); 4] = [
    (2, 0.809, 0.852, 0.699, 0.813),
    (3, 0.888, 0.915, 0.879, 0.920),
    (4, 0.831, 0.875, 0.757, 0.855),
    (5, 0.803, 0.851, 0.750, 0.846),
];

/// Table III: RLL-Bayesian with `d ∈ {1, 3, 5}`.
pub const TABLE3: [(usize, f64, f64, f64, f64); 3] = [
    (1, 0.826, 0.873, 0.727, 0.842),
    (3, 0.876, 0.922, 0.758, 0.840),
    (5, 0.888, 0.915, 0.879, 0.920),
];

/// The paper's best-performing `k` (Table II peaks at 3).
pub const BEST_K: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_claims_hold_in_paper_numbers() {
        // RLL+Bayesian is the best row on both datasets.
        let best = TABLE1.last().unwrap();
        assert_eq!(best.0, "RLL+Bayesian");
        for row in &TABLE1[..14] {
            assert!(best.1 >= row.1, "oral acc: {} vs {}", best.0, row.0);
            assert!(best.3 >= row.3, "class acc: {} vs {}", best.0, row.0);
        }
        // Variant ordering: Bayesian ≥ MLE ≥ plain RLL.
        let rll = TABLE1[12];
        let mle = TABLE1[13];
        let bay = TABLE1[14];
        assert!(bay.1 >= mle.1 && mle.1 >= rll.1);
        assert!(bay.3 >= mle.3 && mle.3 >= rll.3);
    }

    #[test]
    fn table2_peaks_at_k3() {
        let best = TABLE2
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(best.0, BEST_K);
    }

    #[test]
    fn table3_monotone_in_d() {
        for w in TABLE3.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "oral accuracy should not drop with more workers"
            );
            assert!(
                w[1].3 >= w[0].3,
                "class accuracy should not drop with more workers"
            );
        }
    }
}
