//! One runner per paper artifact.
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`table1::run`] | Table I — prediction results, 15 methods × 2 datasets |
//! | [`table2::run`] | Table II — RLL-Bayesian vs. `k ∈ {2,3,4,5}` |
//! | [`table3::run`] | Table III — RLL-Bayesian vs. `d ∈ {1,3,5}` |
//! | [`ablations`] | DESIGN.md §7 — η sweep, confidence ablation, embedding-dim sweep, sampling-strategy ablation |
//!
//! Figure 1 is the architecture diagram; `examples/quickstart.rs` walks its
//! stages executably.

pub mod ablations;
pub mod learning_curve;
pub mod paper;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::method::TrainBudget;
use serde::{Deserialize, Serialize};

/// How much compute an experiment run spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Small datasets + short budgets: smoke tests and CI.
    Quick,
    /// Paper-size datasets (oral n=880, class n=472) + full budgets.
    Full,
}

impl ExperimentScale {
    /// Dataset size for the `oral` simulation.
    pub fn oral_n(&self) -> usize {
        match self {
            ExperimentScale::Quick => 160,
            ExperimentScale::Full => 880,
        }
    }

    /// Dataset size for the `class` simulation.
    pub fn class_n(&self) -> usize {
        match self {
            ExperimentScale::Quick => 120,
            ExperimentScale::Full => 472,
        }
    }

    /// The train budget this scale implies.
    pub fn budget(&self) -> TrainBudget {
        match self {
            ExperimentScale::Quick => TrainBudget::quick(),
            ExperimentScale::Full => TrainBudget::full(),
        }
    }

    /// Cross-validation folds.
    pub fn folds(&self) -> usize {
        match self {
            ExperimentScale::Quick => 3,
            ExperimentScale::Full => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(ExperimentScale::Full.oral_n() > ExperimentScale::Quick.oral_n());
        assert_eq!(ExperimentScale::Full.oral_n(), 880);
        assert_eq!(ExperimentScale::Full.class_n(), 472);
        assert_eq!(ExperimentScale::Full.folds(), 5);
        assert!(ExperimentScale::Quick.budget().epochs < ExperimentScale::Full.budget().epochs);
    }
}
