//! Stratified 5-fold cross validation over the methods, matching the paper's
//! protocol ("for each task, we conduct a 5-fold cross validation on the
//! datasets and report the average performance").

use crate::error::EvalError;
use crate::method::{fit_predict_observed, MethodSpec, TrainBudget};
use crate::metrics::ConfusionMatrix;
use crate::Result;
use rll_data::{Dataset, StratifiedKFold};
use rll_obs::{EventKind, FoldStats, MethodStats, Recorder, Stopwatch};
use serde::{Deserialize, Serialize};

/// Mean ± std of a metric across folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FoldScores {
    /// Mean across folds.
    pub mean: f64,
    /// Population standard deviation across folds.
    pub std: f64,
    /// Per-fold values.
    #[serde(skip)]
    pub values_cached: (),
}

impl FoldScores {
    /// Summarizes per-fold values.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        let mean = rll_tensor::stats::mean(values)?;
        let std = rll_tensor::stats::std_dev(values)?;
        Ok(FoldScores {
            mean,
            std,
            values_cached: (),
        })
    }
}

/// Cross-validated scores for one method on one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodScore {
    /// Method name (Table I row label).
    pub method: String,
    /// Paper group (1–4).
    pub group: u8,
    /// Dataset name.
    pub dataset: String,
    /// Accuracy across folds.
    pub accuracy: FoldScores,
    /// F1 across folds.
    pub f1: FoldScores,
    /// Per-fold accuracies (for significance analysis).
    pub fold_accuracies: Vec<f64>,
    /// Per-fold F1 scores.
    pub fold_f1s: Vec<f64>,
}

/// Runs stratified K-fold cross validation of methods over a dataset.
#[derive(Debug, Clone)]
pub struct CrossValidator {
    /// Number of folds (the paper uses 5).
    pub folds: usize,
    /// Compute budget per fit.
    pub budget: TrainBudget,
    /// Base seed; fold `f` trains with seed `seed + f`.
    pub seed: u64,
    /// Run folds concurrently on up to `RLL_THREADS` scoped worker threads
    /// (fold scores are identical either way; only wall-clock time changes).
    pub parallel: bool,
}

impl CrossValidator {
    /// The paper's protocol: 5 folds.
    pub fn paper_protocol(budget: TrainBudget, seed: u64) -> Self {
        CrossValidator {
            folds: 5,
            budget,
            seed,
            parallel: true,
        }
    }

    /// Evaluates one method on one dataset (no telemetry).
    pub fn evaluate(&self, spec: MethodSpec, dataset: &Dataset) -> Result<MethodScore> {
        self.evaluate_with(spec, dataset, &Recorder::disabled())
    }

    /// Evaluates one method on one dataset, emitting a `FoldEnd` event per
    /// fold and a `MethodEnd` summary through `recorder`. The recorder is
    /// also threaded into RLL training, so per-epoch events appear inside
    /// each fold (interleaved across folds when `parallel` is set; fold ids
    /// on `FoldEnd` events disambiguate).
    pub fn evaluate_with(
        &self,
        spec: MethodSpec,
        dataset: &Dataset,
        recorder: &Recorder,
    ) -> Result<MethodScore> {
        if self.folds < 2 {
            return Err(EvalError::InvalidConfig {
                reason: format!("need at least 2 folds, got {}", self.folds),
            });
        }
        dataset.validate()?;
        let method_start = Stopwatch::start();
        // Stratify on expert labels: the paper's CV splits the *dataset*, and
        // fold boundaries are part of the protocol, not the method. (Expert
        // labels still never reach training.)
        let kfold = StratifiedKFold::new(&dataset.expert_labels, self.folds, self.seed)?;

        let run_fold = |fold: usize| -> Result<(f64, f64)> {
            let fold_start = Stopwatch::start();
            let split = kfold.split(fold)?;
            let train = dataset.select(&split.train)?;
            let test = dataset.select(&split.test)?;
            let predictions = fit_predict_observed(
                spec,
                self.budget,
                &train.features,
                &train.annotations,
                &test.features,
                self.seed + fold as u64,
                recorder,
            )?;
            let cm = ConfusionMatrix::from_predictions(&predictions, &test.expert_labels)?;
            recorder.emit(EventKind::FoldEnd(FoldStats {
                method: spec.name(),
                fold,
                accuracy: cm.accuracy(),
                wall_secs: fold_start.elapsed_secs(),
            }));
            Ok((cm.accuracy(), cm.f1()))
        };

        // Every fold owns an independent seeded RNG (`seed + fold`), so folds
        // can run concurrently without touching each other's streams.
        // `try_map_ordered` hands results back in fold order — not completion
        // order — so fold scores (and any error) are scheduler-independent.
        let threads = if self.parallel {
            self.folds.min(rll_par::configured_threads())
        } else {
            1
        };
        let fold_ids: Vec<usize> = (0..self.folds).collect();
        let fold_results = rll_par::try_map_ordered(&fold_ids, threads, |_, &fold| run_fold(fold))?;
        let accs: Vec<f64> = fold_results.iter().map(|(a, _)| *a).collect();
        let f1s: Vec<f64> = fold_results.iter().map(|(_, f)| *f).collect();
        let accuracy = FoldScores::from_values(&accs)?;
        recorder.emit(EventKind::MethodEnd(MethodStats {
            method: spec.name(),
            folds: accs.len(),
            mean_accuracy: accuracy.mean,
            std_accuracy: accuracy.std,
            wall_secs: method_start.elapsed_secs(),
        }));
        Ok(MethodScore {
            method: spec.name(),
            group: spec.group(),
            dataset: dataset.name.clone(),
            accuracy,
            f1: FoldScores::from_values(&f1s)?,
            fold_accuracies: accs,
            fold_f1s: f1s,
        })
    }

    /// Evaluates a list of methods on one dataset (no telemetry).
    pub fn evaluate_all(
        &self,
        specs: &[MethodSpec],
        dataset: &Dataset,
    ) -> Result<Vec<MethodScore>> {
        self.evaluate_all_with(specs, dataset, &Recorder::disabled())
    }

    /// Evaluates a list of methods on one dataset, emitting per-fold and
    /// per-method events through `recorder`.
    pub fn evaluate_all_with(
        &self,
        specs: &[MethodSpec],
        dataset: &Dataset,
        recorder: &Recorder,
    ) -> Result<Vec<MethodScore>> {
        specs
            .iter()
            .map(|&s| self.evaluate_with(s, dataset, recorder))
            .collect()
    }
}

/// Outcome of comparing two methods on the same folds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Mean accuracy difference (`a - b`).
    pub accuracy_delta: f64,
    /// Paired t-statistic on per-fold accuracies (`None` when the folds are
    /// identical, i.e. no measurable difference).
    pub t_statistic: Option<f64>,
    /// Approximate two-sided p-value (normal approximation; `None` when the
    /// t-statistic is undefined).
    pub p_value: Option<f64>,
}

/// Paired comparison of two [`MethodScore`]s produced by the *same*
/// [`CrossValidator`] on the *same* dataset (so folds align).
pub fn compare(a: &MethodScore, b: &MethodScore) -> Result<Comparison> {
    if a.fold_accuracies.len() != b.fold_accuracies.len() {
        return Err(EvalError::InvalidConfig {
            reason: format!(
                "fold counts differ: {} vs {}",
                a.fold_accuracies.len(),
                b.fold_accuracies.len()
            ),
        });
    }
    let accuracy_delta = a.accuracy.mean - b.accuracy.mean;
    match rll_tensor::stats::paired_t(&a.fold_accuracies, &b.fold_accuracies) {
        Ok((t, df)) => Ok(Comparison {
            accuracy_delta,
            t_statistic: Some(t),
            p_value: Some(rll_tensor::stats::approx_two_sided_p(t, df)),
        }),
        // Zero-variance differences (e.g. identical predictions): report "no
        // measurable difference" rather than erroring the whole experiment.
        Err(_) => Ok(Comparison {
            accuracy_delta,
            t_statistic: None,
            p_value: None,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_core::RllVariant;
    use rll_crowd::simulate::WorkerModel;
    use rll_data::generator::gaussian_mixture;

    fn quick_cv(parallel: bool) -> CrossValidator {
        CrossValidator {
            folds: 3,
            budget: TrainBudget::quick(),
            seed: 11,
            parallel,
        }
    }

    fn dataset() -> Dataset {
        gaussian_mixture(
            90,
            3,
            2.5,
            0.6,
            &[WorkerModel::OneCoin { accuracy: 0.8 }; 5],
            5,
        )
        .unwrap()
    }

    #[test]
    fn fold_scores_summary() {
        let s = FoldScores::from_values(&[0.8, 0.9, 1.0]).unwrap();
        assert!((s.mean - 0.9).abs() < 1e-12);
        assert!(s.std > 0.0);
        assert!(FoldScores::from_values(&[]).is_err());
    }

    #[test]
    fn evaluates_a_simple_method() {
        let ds = dataset();
        let score = quick_cv(false).evaluate(MethodSpec::SoftProb, &ds).unwrap();
        assert_eq!(score.method, "SoftProb");
        assert_eq!(score.group, 1);
        assert_eq!(score.fold_accuracies.len(), 3);
        assert!(
            score.accuracy.mean > 0.7,
            "accuracy {}",
            score.accuracy.mean
        );
        assert!(score.f1.mean > 0.7);
    }

    #[test]
    fn parallel_matches_sequential() {
        let ds = dataset();
        let seq = quick_cv(false).evaluate(MethodSpec::Em, &ds).unwrap();
        let par = quick_cv(true).evaluate(MethodSpec::Em, &ds).unwrap();
        assert_eq!(seq.fold_accuracies, par.fold_accuracies);
        assert_eq!(seq.fold_f1s, par.fold_f1s);
    }

    #[test]
    fn rll_evaluates_under_cv() {
        let ds = dataset();
        let score = quick_cv(true)
            .evaluate(MethodSpec::Rll(RllVariant::Bayesian), &ds)
            .unwrap();
        assert_eq!(score.method, "RLL+Bayesian");
        assert_eq!(score.group, 4);
        assert!(
            score.accuracy.mean > 0.6,
            "accuracy {}",
            score.accuracy.mean
        );
    }

    #[test]
    fn validates_fold_count() {
        let ds = dataset();
        let cv = CrossValidator {
            folds: 1,
            budget: TrainBudget::quick(),
            seed: 1,
            parallel: false,
        };
        assert!(cv.evaluate(MethodSpec::SoftProb, &ds).is_err());
    }

    #[test]
    fn evaluate_all_preserves_order() {
        let ds = dataset();
        let specs = [MethodSpec::SoftProb, MethodSpec::Em];
        let scores = quick_cv(false).evaluate_all(&specs, &ds).unwrap();
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0].method, "SoftProb");
        assert_eq!(scores[1].method, "EM");
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let a = quick_cv(false).evaluate(MethodSpec::SoftProb, &ds).unwrap();
        let b = quick_cv(false).evaluate(MethodSpec::SoftProb, &ds).unwrap();
        assert_eq!(a.fold_accuracies, b.fold_accuracies);
    }

    #[test]
    fn compare_self_is_no_difference() {
        let ds = dataset();
        let a = quick_cv(false).evaluate(MethodSpec::SoftProb, &ds).unwrap();
        let cmp = compare(&a, &a).unwrap();
        assert_eq!(cmp.accuracy_delta, 0.0);
        assert!(cmp.t_statistic.is_none());
        assert!(cmp.p_value.is_none());
    }

    #[test]
    fn compare_different_methods() {
        let ds = dataset();
        let cv = quick_cv(false);
        let a = cv.evaluate(MethodSpec::SoftProb, &ds).unwrap();
        let b = cv.evaluate(MethodSpec::Em, &ds).unwrap();
        let cmp = compare(&a, &b).unwrap();
        assert!((cmp.accuracy_delta - (a.accuracy.mean - b.accuracy.mean)).abs() < 1e-12);
        if let Some(p) = cmp.p_value {
            assert!((0.0..=1.0).contains(&p));
        }
        // Fold-count mismatch rejected.
        let mut short = b.clone();
        short.fold_accuracies.pop();
        assert!(compare(&a, &short).is_err());
    }
}
