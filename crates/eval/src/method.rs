//! The fifteen methods of Table I behind one interface.

use crate::error::EvalError;
use crate::Result;
use rll_baselines::two_stage::{AggregationMethod, EmbeddingMethod, TwoStagePipeline};
use rll_baselines::{
    Embedder, LogisticRegression, RelationNet, RelationNetConfig, SiameseNet, SiameseNetConfig,
    TripletNet, TripletNetConfig,
};
use rll_core::{RllConfig, RllPipeline, RllVariant, SamplingStrategy};
use rll_crowd::aggregate::{Aggregator, DawidSkene, Glad, MajorityVote, SoftLabels};
use rll_crowd::AnnotationMatrix;
use rll_data::Normalizer;
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which Group-2 embedding architecture a two-stage pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbedKind {
    /// Contrastive Siamese network.
    Siamese,
    /// Triplet-margin network.
    Triplet,
    /// Relation network.
    Relation,
}

impl EmbedKind {
    fn name(&self) -> &'static str {
        match self {
            EmbedKind::Siamese => "SiameseNet",
            EmbedKind::Triplet => "TripletNet",
            EmbedKind::Relation => "RelationNet",
        }
    }
}

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodSpec {
    /// Group 1: logistic regression on every (instance, label) crowd pair.
    SoftProb,
    /// Group 1: logistic regression on Dawid–Skene EM labels.
    Em,
    /// Group 1: logistic regression on GLAD labels.
    Glad,
    /// Group 2: embedding learner on majority-vote labels.
    Embed(EmbedKind),
    /// Group 3: two-stage `embed + aggregate` combination.
    TwoStage(EmbedKind, TwoStageAgg),
    /// Group 4: an RLL variant.
    Rll(RllVariant),
}

/// Aggregators used by the paper's Group-3 combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TwoStageAgg {
    /// Dawid–Skene EM.
    Em,
    /// GLAD.
    Glad,
}

impl MethodSpec {
    /// All fifteen Table I rows, in the paper's order.
    pub fn table1_rows() -> Vec<MethodSpec> {
        vec![
            MethodSpec::SoftProb,
            MethodSpec::Em,
            MethodSpec::Glad,
            MethodSpec::Embed(EmbedKind::Siamese),
            MethodSpec::Embed(EmbedKind::Triplet),
            MethodSpec::Embed(EmbedKind::Relation),
            MethodSpec::TwoStage(EmbedKind::Siamese, TwoStageAgg::Em),
            MethodSpec::TwoStage(EmbedKind::Siamese, TwoStageAgg::Glad),
            MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Em),
            MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Glad),
            MethodSpec::TwoStage(EmbedKind::Relation, TwoStageAgg::Em),
            MethodSpec::TwoStage(EmbedKind::Relation, TwoStageAgg::Glad),
            MethodSpec::Rll(RllVariant::Plain),
            MethodSpec::Rll(RllVariant::Mle),
            MethodSpec::Rll(RllVariant::Bayesian),
        ]
    }

    /// Method name as printed in Table I.
    pub fn name(&self) -> String {
        match self {
            MethodSpec::SoftProb => "SoftProb".into(),
            MethodSpec::Em => "EM".into(),
            MethodSpec::Glad => "GLAD".into(),
            MethodSpec::Embed(kind) => kind.name().into(),
            MethodSpec::TwoStage(kind, agg) => format!(
                "{}+{}",
                kind.name(),
                match agg {
                    TwoStageAgg::Em => "EM",
                    TwoStageAgg::Glad => "GLAD",
                }
            ),
            MethodSpec::Rll(v) => v.name().into(),
        }
    }

    /// The paper's group number (1–4).
    pub fn group(&self) -> u8 {
        match self {
            MethodSpec::SoftProb | MethodSpec::Em | MethodSpec::Glad => 1,
            MethodSpec::Embed(_) => 2,
            MethodSpec::TwoStage(..) => 3,
            MethodSpec::Rll(_) => 4,
        }
    }
}

/// Compute budget for one `fit`, shared across methods so comparisons stay
/// fair. `quick()` keeps tests fast; `full()` matches the repro binaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainBudget {
    /// Epochs for every neural method (Group 2/3 embedders and RLL).
    pub epochs: usize,
    /// Pairs/triplets/groups sampled per epoch.
    pub tuples_per_epoch: usize,
    /// Negatives per RLL group (`k`).
    pub k: usize,
    /// RLL softmax smoothing `η`.
    pub eta: f64,
    /// Embedding dimension for all embedding methods.
    pub embedding_dim: usize,
}

impl TrainBudget {
    /// Full budget used by the table-reproduction binaries.
    pub fn full() -> Self {
        TrainBudget {
            epochs: 60,
            tuples_per_epoch: 512,
            k: 3,
            eta: 10.0,
            embedding_dim: 16,
        }
    }

    /// Reduced budget for unit tests and smoke runs.
    pub fn quick() -> Self {
        TrainBudget {
            epochs: 12,
            tuples_per_epoch: 96,
            k: 3,
            eta: 10.0,
            embedding_dim: 16,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.epochs == 0 || self.tuples_per_epoch == 0 || self.k == 0 || self.embedding_dim == 0
        {
            return Err(EvalError::InvalidConfig {
                reason: "budget fields must be positive".into(),
            });
        }
        Ok(())
    }

    fn siamese_config(&self) -> SiameseNetConfig {
        SiameseNetConfig {
            embedding_dim: self.embedding_dim,
            epochs: self.epochs,
            pairs_per_epoch: self.tuples_per_epoch,
            ..Default::default()
        }
    }

    fn triplet_config(&self) -> TripletNetConfig {
        TripletNetConfig {
            embedding_dim: self.embedding_dim,
            epochs: self.epochs,
            triplets_per_epoch: self.tuples_per_epoch,
            ..Default::default()
        }
    }

    fn relation_config(&self) -> RelationNetConfig {
        RelationNetConfig {
            embedding_dim: self.embedding_dim,
            epochs: self.epochs,
            pairs_per_epoch: self.tuples_per_epoch,
            ..Default::default()
        }
    }

    /// The RLL config this budget induces for a given variant.
    pub fn rll_config(&self, variant: RllVariant) -> RllConfig {
        RllConfig {
            variant,
            eta: self.eta,
            k: self.k,
            embedding_dim: self.embedding_dim,
            epochs: self.epochs,
            groups_per_epoch: self.tuples_per_epoch,
            sampling: SamplingStrategy::Uniform,
            ..RllConfig::default()
        }
    }
}

/// Trains the method on `(train_x, train_ann)` and predicts hard labels for
/// `test_x`. Features are raw; normalization is fitted on the training split
/// internally. Expert labels never enter this function.
pub fn fit_predict(
    spec: MethodSpec,
    budget: TrainBudget,
    train_x: &Matrix,
    train_ann: &AnnotationMatrix,
    test_x: &Matrix,
    seed: u64,
) -> Result<Vec<u8>> {
    fit_predict_observed(
        spec,
        budget,
        train_x,
        train_ann,
        test_x,
        seed,
        &rll_obs::Recorder::disabled(),
    )
}

/// [`fit_predict`] with a telemetry recorder threaded into training. Only the
/// RLL methods emit training events (epoch/sampler/confidence); the baseline
/// methods run unobserved apart from the harness's fold-level events.
#[allow(clippy::too_many_arguments)]
pub fn fit_predict_observed(
    spec: MethodSpec,
    budget: TrainBudget,
    train_x: &Matrix,
    train_ann: &AnnotationMatrix,
    test_x: &Matrix,
    seed: u64,
    recorder: &rll_obs::Recorder,
) -> Result<Vec<u8>> {
    budget.validate()?;
    if train_x.rows() != train_ann.num_items() {
        return Err(EvalError::InvalidConfig {
            reason: format!(
                "{} training rows for {} annotated items",
                train_x.rows(),
                train_ann.num_items()
            ),
        });
    }

    match spec {
        MethodSpec::SoftProb => {
            let (ztrain, ztest) = Normalizer::fit_transform(train_x, test_x)?;
            let soft = SoftLabels::new().soft_binary_targets(train_ann)?;
            let mut lr = LogisticRegression::with_defaults();
            lr.fit_soft(&ztrain, &soft, None)?;
            Ok(lr.predict(&ztest)?)
        }
        MethodSpec::Em => {
            let (ztrain, ztest) = Normalizer::fit_transform(train_x, test_x)?;
            let labels = DawidSkene::default().hard_labels(train_ann)?;
            let mut lr = LogisticRegression::with_defaults();
            lr.fit(&ztrain, &labels)?;
            Ok(lr.predict(&ztest)?)
        }
        MethodSpec::Glad => {
            let (ztrain, ztest) = Normalizer::fit_transform(train_x, test_x)?;
            let labels = Glad::default().hard_labels(train_ann)?;
            let mut lr = LogisticRegression::with_defaults();
            lr.fit(&ztrain, &labels)?;
            Ok(lr.predict(&ztest)?)
        }
        MethodSpec::Embed(kind) => {
            let (ztrain, ztest) = Normalizer::fit_transform(train_x, test_x)?;
            let labels = MajorityVote::positive_ties().hard_labels(train_ann)?;
            let mut embedder: Box<dyn Embedder> = match kind {
                EmbedKind::Siamese => Box::new(SiameseNet::new(budget.siamese_config())?),
                EmbedKind::Triplet => Box::new(TripletNet::new(budget.triplet_config())?),
                EmbedKind::Relation => Box::new(RelationNet::new(budget.relation_config())?),
            };
            embedder.fit(&ztrain, &labels, seed)?;
            classify_on_embeddings(embedder.as_ref(), &ztrain, &labels, &ztest)
        }
        MethodSpec::TwoStage(kind, agg) => {
            let (ztrain, ztest) = Normalizer::fit_transform(train_x, test_x)?;
            let aggregation = match agg {
                TwoStageAgg::Em => AggregationMethod::Em,
                TwoStageAgg::Glad => AggregationMethod::Glad,
            };
            let embedding = match kind {
                EmbedKind::Siamese => EmbeddingMethod::Siamese(budget.siamese_config()),
                EmbedKind::Triplet => EmbeddingMethod::Triplet(budget.triplet_config()),
                EmbedKind::Relation => EmbeddingMethod::Relation(budget.relation_config()),
            };
            let mut pipeline = TwoStagePipeline::new(aggregation, embedding);
            pipeline.fit(&ztrain, train_ann, seed)?;
            let train_emb = pipeline.embed(&ztrain)?;
            let test_emb = pipeline.embed(&ztest)?;
            let mut lr = LogisticRegression::with_defaults();
            lr.fit(&train_emb, pipeline.inferred_labels())?;
            Ok(lr.predict(&test_emb)?)
        }
        MethodSpec::Rll(variant) => {
            let mut pipeline =
                RllPipeline::new(budget.rll_config(variant)).with_recorder(recorder.clone());
            pipeline.fit(train_x, train_ann, seed)?;
            Ok(pipeline.predict(test_x)?)
        }
    }
}

fn classify_on_embeddings(
    embedder: &dyn Embedder,
    train_x: &Matrix,
    train_labels: &[u8],
    test_x: &Matrix,
) -> Result<Vec<u8>> {
    let train_emb = embedder.embed(train_x)?;
    let test_emb = embedder.embed(test_x)?;
    let mut lr = LogisticRegression::with_defaults();
    lr.fit(&train_emb, train_labels)?;
    Ok(lr.predict(&test_emb)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_crowd::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn crowd_dataset(n: usize, seed: u64) -> (Matrix, AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.6));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.7).unwrap(),
                rng.normal(-c, 0.7).unwrap(),
            ]);
            truth.push(l);
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let pool = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 0.8 }; 5]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (features, ann, truth)
    }

    #[test]
    fn table1_has_fifteen_rows_in_paper_order() {
        let rows = MethodSpec::table1_rows();
        assert_eq!(rows.len(), 15);
        let names: Vec<String> = rows.iter().map(MethodSpec::name).collect();
        assert_eq!(names[0], "SoftProb");
        assert_eq!(names[3], "SiameseNet");
        assert_eq!(names[6], "SiameseNet+EM");
        assert_eq!(names[11], "RelationNet+GLAD");
        assert_eq!(names[12], "RLL");
        assert_eq!(names[14], "RLL+Bayesian");
        // Groups partition as 3 / 3 / 6 / 3.
        let by_group = |g: u8| rows.iter().filter(|r| r.group() == g).count();
        assert_eq!(
            (by_group(1), by_group(2), by_group(3), by_group(4)),
            (3, 3, 6, 3)
        );
    }

    #[test]
    fn every_method_fits_and_predicts() {
        let (x, ann, _) = crowd_dataset(60, 1);
        let split = 48;
        let train_idx: Vec<usize> = (0..split).collect();
        let test_idx: Vec<usize> = (split..60).collect();
        let train_x = x.select_rows(&train_idx).unwrap();
        let test_x = x.select_rows(&test_idx).unwrap();
        let train_ann = ann.select_items(&train_idx).unwrap();
        for spec in MethodSpec::table1_rows() {
            let pred = fit_predict(spec, TrainBudget::quick(), &train_x, &train_ann, &test_x, 7)
                .unwrap_or_else(|e| panic!("{} failed: {e}", spec.name()));
            assert_eq!(pred.len(), 12, "{}", spec.name());
            assert!(pred.iter().all(|&p| p <= 1), "{}", spec.name());
        }
    }

    #[test]
    fn methods_beat_chance_on_easy_data() {
        let (x, ann, truth) = crowd_dataset(120, 2);
        let train_idx: Vec<usize> = (0..90).collect();
        let test_idx: Vec<usize> = (90..120).collect();
        let train_x = x.select_rows(&train_idx).unwrap();
        let test_x = x.select_rows(&test_idx).unwrap();
        let train_ann = ann.select_items(&train_idx).unwrap();
        let test_truth: Vec<u8> = test_idx.iter().map(|&i| truth[i]).collect();
        for spec in [
            MethodSpec::SoftProb,
            MethodSpec::Em,
            MethodSpec::Rll(RllVariant::Bayesian),
        ] {
            let pred =
                fit_predict(spec, TrainBudget::quick(), &train_x, &train_ann, &test_x, 3).unwrap();
            let acc = pred.iter().zip(&test_truth).filter(|(a, b)| a == b).count() as f64
                / test_truth.len() as f64;
            assert!(acc > 0.7, "{} accuracy {acc}", spec.name());
        }
    }

    #[test]
    fn budget_validation() {
        let (x, ann, _) = crowd_dataset(20, 3);
        let bad = TrainBudget {
            epochs: 0,
            ..TrainBudget::quick()
        };
        assert!(fit_predict(MethodSpec::SoftProb, bad, &x, &ann, &x, 1).is_err());
        let mismatched = x.select_rows(&[0, 1]).unwrap();
        assert!(fit_predict(
            MethodSpec::SoftProb,
            TrainBudget::quick(),
            &mismatched,
            &ann,
            &x,
            1
        )
        .is_err());
    }

    #[test]
    fn rll_config_from_budget() {
        let budget = TrainBudget::full();
        let cfg = budget.rll_config(RllVariant::Mle);
        assert_eq!(cfg.k, 3);
        assert_eq!(cfg.epochs, 60);
        assert_eq!(cfg.variant, RllVariant::Mle);
    }
}
