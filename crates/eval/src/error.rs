//! Typed errors for the evaluation harness.

use rll_baselines::BaselineError;
use rll_core::RllError;
use rll_crowd::CrowdError;
use rll_data::DataError;
use rll_tensor::TensorError;
use std::fmt;

/// Errors produced by metrics, cross validation, and experiment runners.
#[derive(Debug)]
pub enum EvalError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A crowdsourcing operation failed.
    Crowd(CrowdError),
    /// A dataset operation failed.
    Data(DataError),
    /// A baseline learner failed.
    Baseline(BaselineError),
    /// The RLL framework failed.
    Rll(RllError),
    /// An evaluation configuration was invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Serializing results failed.
    Serialization(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Tensor(e) => write!(f, "tensor error: {e}"),
            EvalError::Crowd(e) => write!(f, "crowd error: {e}"),
            EvalError::Data(e) => write!(f, "data error: {e}"),
            EvalError::Baseline(e) => write!(f, "baseline error: {e}"),
            EvalError::Rll(e) => write!(f, "rll error: {e}"),
            EvalError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            EvalError::Serialization(msg) => write!(f, "serialization failed: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Tensor(e) => Some(e),
            EvalError::Crowd(e) => Some(e),
            EvalError::Data(e) => Some(e),
            EvalError::Baseline(e) => Some(e),
            EvalError::Rll(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for EvalError {
    fn from(e: TensorError) -> Self {
        EvalError::Tensor(e)
    }
}

impl From<CrowdError> for EvalError {
    fn from(e: CrowdError) -> Self {
        EvalError::Crowd(e)
    }
}

impl From<DataError> for EvalError {
    fn from(e: DataError) -> Self {
        EvalError::Data(e)
    }
}

impl From<BaselineError> for EvalError {
    fn from(e: BaselineError) -> Self {
        EvalError::Baseline(e)
    }
}

impl From<RllError> for EvalError {
    fn from(e: RllError) -> Self {
        EvalError::Rll(e)
    }
}

impl From<serde_json::Error> for EvalError {
    fn from(e: serde_json::Error) -> Self {
        EvalError::Serialization(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e: EvalError = TensorError::Empty { op: "x" }.into();
        assert!(e.source().is_some());
        let e = EvalError::InvalidConfig {
            reason: "folds".into(),
        };
        assert!(e.to_string().contains("folds"));
        let e = EvalError::Serialization("bad json".into());
        assert!(e.to_string().contains("bad json"));
    }
}
