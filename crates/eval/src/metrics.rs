//! Classification metrics.
//!
//! The paper reports accuracy and F1; precision, recall, the confusion
//! matrix, and rank-based AUC are provided for the extended analyses in
//! `EXPERIMENTS.md`.

use crate::error::EvalError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted 1, truth 1.
    pub tp: usize,
    /// Predicted 1, truth 0.
    pub fp: usize,
    /// Predicted 0, truth 0.
    pub tn: usize,
    /// Predicted 0, truth 1.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against truth.
    pub fn from_predictions(predictions: &[u8], truth: &[u8]) -> Result<Self> {
        if predictions.len() != truth.len() {
            return Err(EvalError::InvalidConfig {
                reason: format!(
                    "{} predictions for {} labels",
                    predictions.len(),
                    truth.len()
                ),
            });
        }
        if predictions.is_empty() {
            return Err(EvalError::InvalidConfig {
                reason: "cannot score zero predictions".into(),
            });
        }
        let mut m = ConfusionMatrix {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        for (&p, &t) in predictions.iter().zip(truth) {
            match (p, t) {
                (1, 1) => m.tp += 1,
                (1, 0) => m.fp += 1,
                (0, 0) => m.tn += 1,
                (0, 1) => m.fn_ += 1,
                _ => {
                    return Err(EvalError::InvalidConfig {
                        reason: format!("non-binary pair ({p}, {t})"),
                    })
                }
            }
        }
        Ok(m)
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction correct (0 for an empty matrix, not NaN — a matrix built by
    /// hand rather than via [`from_predictions`](Self::from_predictions) can
    /// be all-zero, and `0/0` would poison every downstream mean).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Positive-class precision (0 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Positive-class recall (0 when there are no positives).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Positive-class F1 (harmonic mean of precision and recall; 0 when both
    /// are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    }

    /// Matthews correlation coefficient (0 for degenerate denominators).
    pub fn mcc(&self) -> f64 {
        let (tp, fp, tn, fn_) = (
            self.tp as f64,
            self.fp as f64,
            self.tn as f64,
            self.fn_ as f64,
        );
        let denom = ((tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_)).sqrt();
        if denom > 0.0 {
            (tp * tn - fp * fn_) / denom
        } else {
            0.0
        }
    }
}

/// Accuracy shortcut.
pub fn accuracy(predictions: &[u8], truth: &[u8]) -> Result<f64> {
    Ok(ConfusionMatrix::from_predictions(predictions, truth)?.accuracy())
}

/// Positive-class F1 shortcut.
pub fn f1_score(predictions: &[u8], truth: &[u8]) -> Result<f64> {
    Ok(ConfusionMatrix::from_predictions(predictions, truth)?.f1())
}

/// Rank-based ROC AUC from probabilistic scores (ties share average rank).
///
/// Returns an error when either class is absent — AUC is undefined there.
pub fn roc_auc(scores: &[f64], truth: &[u8]) -> Result<f64> {
    if scores.len() != truth.len() || scores.is_empty() {
        return Err(EvalError::InvalidConfig {
            reason: format!("{} scores for {} labels", scores.len(), truth.len()),
        });
    }
    let n_pos = truth.iter().filter(|&&t| t == 1).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(EvalError::InvalidConfig {
            reason: "AUC undefined with a single class".into(),
        });
    }
    // AUC is meaningless over NaN scores: reject them up front with a typed
    // error instead of panicking mid-sort.
    if scores.iter().any(|s| s.is_nan()) {
        return Err(EvalError::InvalidConfig {
            reason: "scores must not contain NaN".into(),
        });
    }
    // Average ranks with tie handling.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]].total_cmp(&scores[order[i]]).is_eq() {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    let pos_rank_sum: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t == 1)
        .map(|(_, &r)| r)
        .sum();
    // n_pos * n_neg > 0: the single-class check above already rejected any
    // input that would make this a 0/0.
    Ok((pos_rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts() {
        let m = ConfusionMatrix::from_predictions(&[1, 1, 0, 0, 1], &[1, 0, 0, 1, 1]).unwrap();
        assert_eq!((m.tp, m.fp, m.tn, m.fn_), (2, 1, 1, 1));
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn metric_values() {
        let m = ConfusionMatrix {
            tp: 8,
            fp: 2,
            tn: 5,
            fn_: 5,
        };
        assert!((m.accuracy() - 0.65).abs() < 1e-12);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 13.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((m.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        let m = ConfusionMatrix {
            tp: 0,
            fp: 0,
            tn: 3,
            fn_: 2,
        };
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.mcc(), 0.0);
        assert!(m.accuracy() > 0.0);
    }

    #[test]
    fn empty_matrix_metrics_are_zero_not_nan() {
        // `from_predictions` refuses zero samples, but an all-zero matrix is
        // constructible by hand (e.g. accumulating per-slice tallies where a
        // slice is empty). Every metric must stay finite.
        let m = ConfusionMatrix {
            tp: 0,
            fp: 0,
            tn: 0,
            fn_: 0,
        };
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.mcc(), 0.0);
    }

    #[test]
    fn mcc_perfect_and_inverted() {
        let perfect = ConfusionMatrix {
            tp: 5,
            fp: 0,
            tn: 5,
            fn_: 0,
        };
        assert!((perfect.mcc() - 1.0).abs() < 1e-12);
        let inverted = ConfusionMatrix {
            tp: 0,
            fp: 5,
            tn: 0,
            fn_: 5,
        };
        assert!((inverted.mcc() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(ConfusionMatrix::from_predictions(&[1], &[1, 0]).is_err());
        assert!(ConfusionMatrix::from_predictions(&[], &[]).is_err());
        assert!(ConfusionMatrix::from_predictions(&[2], &[1]).is_err());
    }

    #[test]
    fn shortcuts_match_matrix() {
        let p = [1u8, 0, 1, 1];
        let t = [1u8, 0, 0, 1];
        let m = ConfusionMatrix::from_predictions(&p, &t).unwrap();
        assert_eq!(accuracy(&p, &t).unwrap(), m.accuracy());
        assert_eq!(f1_score(&p, &t).unwrap(), m.f1());
    }

    #[test]
    fn auc_perfect_ranking() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let truth = [1u8, 1, 0, 0];
        assert!((roc_auc(&scores, &truth).unwrap() - 1.0).abs() < 1e-12);
        let inverted = [0.1, 0.2, 0.8, 0.9];
        assert!(roc_auc(&inverted, &truth).unwrap() < 1e-12);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied → AUC is exactly 0.5 by average-rank convention.
        let scores = [0.5; 6];
        let truth = [1u8, 0, 1, 0, 1, 0];
        assert!((roc_auc(&scores, &truth).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_validates() {
        assert!(roc_auc(&[0.5], &[1]).is_err()); // single class
        assert!(roc_auc(&[0.5, 0.5], &[1]).is_err()); // length
        assert!(roc_auc(&[], &[]).is_err());
    }

    #[test]
    fn auc_handles_partial_overlap() {
        let scores = [0.9, 0.6, 0.65, 0.2];
        let truth = [1u8, 1, 0, 0];
        // One inversion among 4 pos-neg pairs → 3/4.
        assert!((roc_auc(&scores, &truth).unwrap() - 0.75).abs() < 1e-12);
    }
}
