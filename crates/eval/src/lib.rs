#![warn(missing_docs)]

//! # `rll-eval` — metrics, cross-validation, and experiment runners
//!
//! Reproduces the paper's evaluation protocol end to end:
//!
//! - [`metrics`] — accuracy, precision/recall/F1, confusion matrix, and
//!   rank-based AUC;
//! - [`method`] — a uniform [`method::MethodSpec`] covering all fifteen rows
//!   of Table I (Group 1 label-inference baselines, Group 2 limited-label
//!   embedding baselines, Group 3 two-stage combinations, Group 4 RLL
//!   variants), each with a `fit → predict` implementation;
//! - [`harness`] — stratified 5-fold cross validation with deterministic
//!   per-fold parallelism (`rll-par` ordered fold reduction, `RLL_THREADS`);
//! - [`experiments`] — one runner per paper artifact: Table I (main
//!   comparison), Table II (`k` sweep), Table III (`d` sweep), plus the
//!   ablations DESIGN.md §7 calls out;
//! - [`report`] — text tables in the paper's format and JSON dumps.

pub mod error;
pub mod experiments;
pub mod harness;
pub mod method;
pub mod metrics;
pub mod report;

pub use error::EvalError;
pub use harness::{CrossValidator, FoldScores, MethodScore};
pub use method::{MethodSpec, TrainBudget};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, EvalError>;
