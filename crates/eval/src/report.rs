//! Rendering experiment results as paper-style text tables and JSON.

use crate::harness::MethodScore;
use crate::Result;
use serde::Serialize;
use std::fmt::Write as _;

/// Formats a Table-I-style comparison: one row per method, accuracy and F1
/// columns per dataset. `scores_by_dataset` holds one aligned score list per
/// dataset (same method order).
pub fn format_comparison_table(
    title: &str,
    dataset_names: &[&str],
    scores_by_dataset: &[Vec<MethodScore>],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{:<22}{:<7}", "Method", "Group");
    for name in dataset_names {
        header.push_str(&format!(
            "{:<11}{:<11}",
            format!("{name}-Acc"),
            format!("{name}-F1")
        ));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    if let Some(first) = scores_by_dataset.first() {
        for (row, score) in first.iter().enumerate() {
            let mut line = format!("{:<22}{:<7}", score.method, score.group);
            for scores in scores_by_dataset {
                let s = &scores[row];
                line.push_str(&format!("{:<11.3}{:<11.3}", s.accuracy.mean, s.f1.mean));
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// Formats a parameter-sweep table (Tables II and III): one row per parameter
/// value, accuracy and F1 per dataset.
pub fn format_sweep_table(
    title: &str,
    param_name: &str,
    param_values: &[String],
    dataset_names: &[&str],
    scores_by_dataset: &[Vec<MethodScore>],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let mut header = format!("{param_name:<8}");
    for name in dataset_names {
        header.push_str(&format!(
            "{:<11}{:<11}",
            format!("{name}-Acc"),
            format!("{name}-F1")
        ));
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
    for (row, value) in param_values.iter().enumerate() {
        let mut line = format!("{value:<8}");
        for scores in scores_by_dataset {
            let s = &scores[row];
            line.push_str(&format!("{:<11.3}{:<11.3}", s.accuracy.mean, s.f1.mean));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Serializes any experiment result to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> Result<String> {
    Ok(serde_json::to_string_pretty(value)?)
}

/// Writes a JSON result file, creating parent directories as needed.
pub fn write_json<T: Serialize>(path: &std::path::Path, value: &T) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| crate::EvalError::Serialization(e.to_string()))?;
    }
    std::fs::write(path, to_json(value)?)
        .map_err(|e| crate::EvalError::Serialization(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::FoldScores;

    fn score(method: &str, group: u8, acc: f64, f1: f64) -> MethodScore {
        MethodScore {
            method: method.into(),
            group,
            dataset: "oral".into(),
            accuracy: FoldScores::from_values(&[acc]).unwrap(),
            f1: FoldScores::from_values(&[f1]).unwrap(),
            fold_accuracies: vec![acc],
            fold_f1s: vec![f1],
        }
    }

    #[test]
    fn comparison_table_contains_rows_and_values() {
        let oral = vec![
            score("SoftProb", 1, 0.815, 0.869),
            score("RLL+Bayesian", 4, 0.888, 0.915),
        ];
        let class = vec![
            score("SoftProb", 1, 0.758, 0.810),
            score("RLL+Bayesian", 4, 0.879, 0.920),
        ];
        let table = format_comparison_table("Table I", &["oral", "class"], &[oral, class]);
        assert!(table.contains("Table I"));
        assert!(table.contains("SoftProb"));
        assert!(table.contains("RLL+Bayesian"));
        assert!(table.contains("0.888"));
        assert!(table.contains("0.920"));
        assert!(table.contains("oral-Acc"));
        assert!(table.contains("class-F1"));
    }

    #[test]
    fn sweep_table_rows_align_with_params() {
        let oral = vec![
            score("RLL+Bayesian", 4, 0.809, 0.852),
            score("RLL+Bayesian", 4, 0.888, 0.915),
        ];
        let table = format_sweep_table(
            "Table II",
            "k",
            &["2".into(), "3".into()],
            &["oral"],
            &[oral],
        );
        assert!(table.contains("Table II"));
        assert!(table.lines().count() >= 5);
        assert!(table.contains("0.809"));
        assert!(table.contains("0.888"));
    }

    #[test]
    fn json_round_trip() {
        let s = score("EM", 1, 0.843, 0.887);
        let json = to_json(&s).unwrap();
        assert!(json.contains("\"method\": \"EM\""));
    }

    #[test]
    fn write_json_creates_dirs() {
        let dir = std::env::temp_dir().join("rll_eval_test_json");
        let path = dir.join("nested/result.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
