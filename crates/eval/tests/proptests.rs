//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;
use rll_eval::metrics::{accuracy, f1_score, roc_auc, ConfusionMatrix};
use rll_tensor::Rng64;

/// Strategy: a prediction/truth pair with both classes present in truth.
fn labeled_pairs() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (2usize..60, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        // Guarantee both classes.
        truth[0] = 1;
        if n > 1 {
            truth[1] = 0;
        }
        let preds: Vec<u8> = truth
            .iter()
            .map(|&t| if rng.bernoulli(0.8) { t } else { 1 - t })
            .collect();
        (preds, truth)
    })
}

proptest! {
    #[test]
    fn accuracy_bounds_and_identity((preds, truth) in labeled_pairs()) {
        let acc = accuracy(&preds, &truth).unwrap();
        prop_assert!((0.0..=1.0).contains(&acc));
        // Perfect predictor scores 1; inverted predictor scores 1 - acc.
        prop_assert_eq!(accuracy(&truth, &truth).unwrap(), 1.0);
        let inverted: Vec<u8> = preds.iter().map(|&p| 1 - p).collect();
        let inv_acc = accuracy(&inverted, &truth).unwrap();
        prop_assert!((acc + inv_acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_bounded_by_precision_recall((preds, truth) in labeled_pairs()) {
        let m = ConfusionMatrix::from_predictions(&preds, &truth).unwrap();
        let f1 = m.f1();
        prop_assert!((0.0..=1.0).contains(&f1));
        // Harmonic mean lies between min and max of precision/recall.
        let (p, r) = (m.precision(), m.recall());
        if p > 0.0 && r > 0.0 {
            prop_assert!(f1 <= p.max(r) + 1e-12);
            prop_assert!(f1 >= p.min(r) - 1e-12);
        }
        prop_assert_eq!(f1_score(&truth, &truth).unwrap(), 1.0);
    }

    #[test]
    fn confusion_matrix_totals((preds, truth) in labeled_pairs()) {
        let m = ConfusionMatrix::from_predictions(&preds, &truth).unwrap();
        prop_assert_eq!(m.total(), truth.len());
        prop_assert!((-1.0..=1.0).contains(&m.mcc()));
    }

    #[test]
    fn auc_invariant_under_monotone_transform(seed in 0u64..500, n in 4usize..40) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        truth[0] = 1;
        truth[1] = 0;
        let scores: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let auc = roc_auc(&scores, &truth).unwrap();
        // Strictly monotone transform preserves the ranking, hence AUC.
        let transformed: Vec<f64> = scores.iter().map(|&s| (3.0 * s + 1.0).exp()).collect();
        let auc2 = roc_auc(&transformed, &truth).unwrap();
        prop_assert!((auc - auc2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn auc_flips_under_negation(seed in 0u64..500, n in 4usize..40) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        truth[0] = 1;
        truth[1] = 0;
        let scores: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let auc = roc_auc(&scores, &truth).unwrap();
        let negated: Vec<f64> = scores.iter().map(|&s| -s).collect();
        let auc_neg = roc_auc(&negated, &truth).unwrap();
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
    }
}
