//! End-to-end tests of the incremental retrain loop: vote-triggered rounds,
//! manifest lifecycle, and crash recovery of an interrupted round.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rll_core::{RllConfig, RllPipeline, RllVariant};
use rll_crowd::{AnnotationMatrix, ConfidenceEstimator};
use rll_label::{
    read_manifest, write_manifest, LabelStore, LabelStoreConfig, PublishSink, RetrainBase,
    RetrainConfig, RetrainManifest, Retrainer, Vote, MANIFEST_SCHEMA,
};
use rll_obs::Recorder;
use rll_tensor::{Matrix, Rng64};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rll_retrain_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny separable dataset: 40 examples, 2 features, 3 offline workers.
fn tiny_base(seed: u64) -> (RetrainBase, Vec<u8>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..40 {
        let l = u8::from(rng.bernoulli(0.5));
        let c = if l == 1 { 1.0 } else { -1.0 };
        rows.push(vec![
            rng.normal(c, 0.4).unwrap(),
            rng.normal(-c, 0.4).unwrap(),
        ]);
        truth.push(l);
    }
    let features = Matrix::from_rows(&rows).unwrap();
    let mut annotations = AnnotationMatrix::new(40, 3, 2).unwrap();
    for (i, &t) in truth.iter().enumerate() {
        for w in 0..3 {
            // Mostly honest offline votes with a deterministic error sprinkle.
            let label = if (i + w) % 7 == 0 { 1 - t } else { t };
            annotations.set(i, w, label).unwrap();
        }
    }
    (
        RetrainBase {
            features,
            annotations,
            expert_labels: Some(truth.clone()),
        },
        truth,
    )
}

fn tiny_train_config() -> RllConfig {
    RllConfig {
        variant: RllVariant::Bayesian,
        epochs: 4,
        groups_per_epoch: 16,
        hidden_dims: vec![8],
        embedding_dim: 4,
        ..RllConfig::default()
    }
}

fn store_config(dir: &Path) -> LabelStoreConfig {
    LabelStoreConfig {
        dir: dir.join("wal"),
        shards: 2,
        segment_records: 16,
        estimator: ConfidenceEstimator::Mle,
        num_examples: 40,
        max_workers: 4,
    }
}

fn retrain_config(dir: &Path, min_new_votes: u64) -> RetrainConfig {
    RetrainConfig {
        train: tiny_train_config(),
        base_seed: 11,
        min_new_votes,
        poll_interval: Duration::from_millis(20),
        state_path: dir.join("retrain.rllstate"),
        manifest_path: dir.join("retrain.manifest.json"),
        snapshot_every_epochs: 1,
        threads: Some(1),
    }
}

/// Publish sink that counts rounds and remembers the last one.
struct CountingSink {
    rounds: Arc<AtomicU64>,
}

impl PublishSink for CountingSink {
    fn publish(&mut self, pipeline: &RllPipeline, round: u64) -> Result<(), String> {
        // The pipeline must be fitted — prove it by asking for the model.
        if pipeline.model().is_none() {
            return Err("unfitted pipeline published".to_string());
        }
        self.rounds.store(round, Ordering::SeqCst);
        Ok(())
    }
}

fn wait_for_rounds(retrainer: &Retrainer, want: u64, timeout: Duration) -> bool {
    let shared = retrainer.shared();
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if shared.status().rounds_completed >= want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn votes_trigger_a_round_and_complete_the_manifest() {
    let dir = fresh_dir("trigger");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, truth) = tiny_base(3);
    // 10 live votes from one honest live annotator.
    for i in 0..10u64 {
        store
            .ingest(Vote {
                example: i,
                worker: 0,
                label: truth[i as usize],
            })
            .unwrap();
    }
    let config = retrain_config(&dir, 10);
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config.clone(),
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    )
    .unwrap();
    assert!(
        wait_for_rounds(&retrainer, 1, Duration::from_secs(60)),
        "retrain round never completed"
    );
    let status = retrainer.shared().status();
    assert_eq!(status.rounds_completed, 1);
    assert_eq!(status.last_folded_seq, 10);
    assert_eq!(status.votes_last_round, 10);
    assert!(status.last_accuracy >= 0.0 && status.last_accuracy <= 1.0);
    assert!(status.last_error.is_none());
    let manifest = read_manifest(&config.manifest_path).unwrap().unwrap();
    assert!(manifest.complete);
    assert_eq!(manifest.round, 1);
    assert_eq!(manifest.folded_seq, 10);
    // The checkpoint cadence left a resumable state file behind.
    assert!(config.state_path.exists());
    retrainer.stop();
    // No second round without new votes.
    assert_eq!(retrainer.shared().status().rounds_completed, 1);
}

#[test]
fn interrupted_round_is_recovered_on_start() {
    let dir = fresh_dir("recover");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, truth) = tiny_base(5);
    for i in 0..12u64 {
        store
            .ingest(Vote {
                example: i,
                worker: (i % 2) as u32,
                label: truth[i as usize],
            })
            .unwrap();
    }
    // Simulate a crash mid-round: the manifest was written (incomplete) but
    // the process died before training finished. min_new_votes is set higher
    // than the backlog so only the recovery path can produce a round.
    let config = retrain_config(&dir, 1000);
    write_manifest(
        &config.manifest_path,
        &RetrainManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            round: 1,
            folded_seq: 12,
            seed: 99,
            complete: false,
        },
    )
    .unwrap();

    let rounds = Arc::new(AtomicU64::new(0));
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config.clone(),
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::clone(&rounds),
        }),
    )
    .unwrap();
    assert!(
        wait_for_rounds(&retrainer, 1, Duration::from_secs(60)),
        "recovery round never completed"
    );
    retrainer.stop();
    let status = retrainer.shared().status();
    assert_eq!(status.rounds_completed, 1);
    assert_eq!(status.last_folded_seq, 12);
    assert_eq!(rounds.load(Ordering::SeqCst), 1, "publish ran exactly once");
    let manifest = read_manifest(&config.manifest_path).unwrap().unwrap();
    assert!(manifest.complete);
    assert_eq!(manifest.seed, 99, "recovery keeps the manifest's seed");
}

#[test]
fn completed_manifest_is_not_rerun() {
    let dir = fresh_dir("norerun");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, _) = tiny_base(7);
    let config = retrain_config(&dir, 1000);
    write_manifest(
        &config.manifest_path,
        &RetrainManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            round: 3,
            folded_seq: 44,
            seed: 5,
            complete: true,
        },
    )
    .unwrap();
    let rounds = Arc::new(AtomicU64::new(0));
    let mut retrainer = Retrainer::start(
        store,
        base,
        config,
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::clone(&rounds),
        }),
    )
    .unwrap();
    // Give the loop a few polls to (wrongly) start something.
    std::thread::sleep(Duration::from_millis(200));
    retrainer.stop();
    let status = retrainer.shared().status();
    assert_eq!(
        status.rounds_completed, 3,
        "status seeded from the manifest"
    );
    assert_eq!(status.last_folded_seq, 44);
    assert_eq!(
        rounds.load(Ordering::SeqCst),
        0,
        "no publish without new votes"
    );
}

#[test]
fn start_rejects_mismatched_base() {
    let dir = fresh_dir("badbase");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (mut base, _) = tiny_base(9);
    base.expert_labels = Some(vec![0; 7]);
    let err = Retrainer::start(
        store,
        base,
        retrain_config(&dir, 10),
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    );
    assert!(err.is_err());
}
