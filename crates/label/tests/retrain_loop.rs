//! End-to-end tests of the incremental retrain loop: vote-triggered rounds,
//! manifest lifecycle, and crash recovery of an interrupted round.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rll_core::{RllConfig, RllPipeline, RllVariant};
use rll_crowd::{AnnotationMatrix, ConfidenceEstimator};
use rll_label::{
    read_manifest, write_manifest, LabelStore, LabelStoreConfig, PublishSink, RetrainBase,
    RetrainConfig, RetrainManifest, RetrainStatus, RetrainTrigger, Retrainer, Vote,
    WorkerWeighting, DEFAULT_DEDUP_CAPACITY, MANIFEST_SCHEMA,
};
use rll_obs::Recorder;
use rll_tensor::{Matrix, Rng64};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rll_retrain_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny separable dataset: 40 examples, 2 features, 3 offline workers.
fn tiny_base(seed: u64) -> (RetrainBase, Vec<u8>) {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..40 {
        let l = u8::from(rng.bernoulli(0.5));
        let c = if l == 1 { 1.0 } else { -1.0 };
        rows.push(vec![
            rng.normal(c, 0.4).unwrap(),
            rng.normal(-c, 0.4).unwrap(),
        ]);
        truth.push(l);
    }
    let features = Matrix::from_rows(&rows).unwrap();
    let mut annotations = AnnotationMatrix::new(40, 3, 2).unwrap();
    for (i, &t) in truth.iter().enumerate() {
        for w in 0..3 {
            // Mostly honest offline votes with a deterministic error sprinkle.
            let label = if (i + w) % 7 == 0 { 1 - t } else { t };
            annotations.set(i, w, label).unwrap();
        }
    }
    (
        RetrainBase {
            features,
            annotations,
            expert_labels: Some(truth.clone()),
        },
        truth,
    )
}

fn tiny_train_config() -> RllConfig {
    RllConfig {
        variant: RllVariant::Bayesian,
        epochs: 4,
        groups_per_epoch: 16,
        hidden_dims: vec![8],
        embedding_dim: 4,
        ..RllConfig::default()
    }
}

fn store_config(dir: &Path) -> LabelStoreConfig {
    LabelStoreConfig {
        dir: dir.join("wal"),
        shards: 2,
        segment_records: 16,
        estimator: ConfidenceEstimator::Mle,
        num_examples: 40,
        max_workers: 4,
        dedup_capacity: DEFAULT_DEDUP_CAPACITY,
        manifest_path: Some(dir.join("retrain.manifest.json")),
    }
}

fn retrain_config(dir: &Path, min_new_votes: u64) -> RetrainConfig {
    RetrainConfig {
        train: tiny_train_config(),
        base_seed: 11,
        trigger: RetrainTrigger::Votes { min_new_votes },
        weighting: None,
        auto_compact: false,
        poll_interval: Duration::from_millis(20),
        state_path: dir.join("retrain.rllstate"),
        manifest_path: dir.join("retrain.manifest.json"),
        snapshot_every_epochs: 1,
        threads: Some(1),
    }
}

/// Publish sink that counts rounds and remembers the last one.
struct CountingSink {
    rounds: Arc<AtomicU64>,
}

impl PublishSink for CountingSink {
    fn publish(&mut self, pipeline: &RllPipeline, round: u64) -> Result<(), String> {
        // The pipeline must be fitted — prove it by asking for the model.
        if pipeline.model().is_none() {
            return Err("unfitted pipeline published".to_string());
        }
        self.rounds.store(round, Ordering::SeqCst);
        Ok(())
    }
}

fn wait_for_rounds(retrainer: &Retrainer, want: u64, timeout: Duration) -> bool {
    let shared = retrainer.shared();
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if shared.status().rounds_completed >= want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

#[test]
fn votes_trigger_a_round_and_complete_the_manifest() {
    let dir = fresh_dir("trigger");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, truth) = tiny_base(3);
    // 10 live votes from one honest live annotator.
    for i in 0..10u64 {
        store.ingest(Vote::new(i, 0, truth[i as usize])).unwrap();
    }
    let config = retrain_config(&dir, 10);
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config.clone(),
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    )
    .unwrap();
    assert!(
        wait_for_rounds(&retrainer, 1, Duration::from_secs(60)),
        "retrain round never completed"
    );
    let status = retrainer.shared().status();
    assert_eq!(status.rounds_completed, 1);
    assert_eq!(status.last_folded_seq, 10);
    assert_eq!(status.votes_last_round, 10);
    assert!(status.last_accuracy >= 0.0 && status.last_accuracy <= 1.0);
    assert!(status.last_error.is_none());
    let manifest = read_manifest(&config.manifest_path).unwrap().unwrap();
    assert!(manifest.complete);
    assert_eq!(manifest.round, 1);
    assert_eq!(manifest.folded_seq, 10);
    // The checkpoint cadence left a resumable state file behind.
    assert!(config.state_path.exists());
    retrainer.stop();
    // No second round without new votes.
    assert_eq!(retrainer.shared().status().rounds_completed, 1);
}

#[test]
fn interrupted_round_is_recovered_on_start() {
    let dir = fresh_dir("recover");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, truth) = tiny_base(5);
    for i in 0..12u64 {
        store
            .ingest(Vote::new(i, (i % 2) as u32, truth[i as usize]))
            .unwrap();
    }
    // Simulate a crash mid-round: the manifest was written (incomplete) but
    // the process died before training finished. min_new_votes is set higher
    // than the backlog so only the recovery path can produce a round.
    let config = retrain_config(&dir, 1000);
    write_manifest(
        &config.manifest_path,
        &RetrainManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            round: 1,
            folded_seq: 12,
            seed: 99,
            complete: false,
            excluded_workers: None,
            trigger: None,
        },
    )
    .unwrap();

    let rounds = Arc::new(AtomicU64::new(0));
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config.clone(),
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::clone(&rounds),
        }),
    )
    .unwrap();
    assert!(
        wait_for_rounds(&retrainer, 1, Duration::from_secs(60)),
        "recovery round never completed"
    );
    retrainer.stop();
    let status = retrainer.shared().status();
    assert_eq!(status.rounds_completed, 1);
    assert_eq!(status.last_folded_seq, 12);
    assert_eq!(rounds.load(Ordering::SeqCst), 1, "publish ran exactly once");
    let manifest = read_manifest(&config.manifest_path).unwrap().unwrap();
    assert!(manifest.complete);
    assert_eq!(manifest.seed, 99, "recovery keeps the manifest's seed");
}

#[test]
fn completed_manifest_is_not_rerun() {
    let dir = fresh_dir("norerun");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, _) = tiny_base(7);
    let config = retrain_config(&dir, 1000);
    write_manifest(
        &config.manifest_path,
        &RetrainManifest {
            schema: MANIFEST_SCHEMA.to_string(),
            round: 3,
            folded_seq: 44,
            seed: 5,
            complete: true,
            excluded_workers: None,
            trigger: None,
        },
    )
    .unwrap();
    let rounds = Arc::new(AtomicU64::new(0));
    let mut retrainer = Retrainer::start(
        store,
        base,
        config,
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::clone(&rounds),
        }),
    )
    .unwrap();
    // Give the loop a few polls to (wrongly) start something.
    std::thread::sleep(Duration::from_millis(200));
    retrainer.stop();
    let status = retrainer.shared().status();
    assert_eq!(
        status.rounds_completed, 3,
        "status seeded from the manifest"
    );
    assert_eq!(status.last_folded_seq, 44);
    assert_eq!(
        rounds.load(Ordering::SeqCst),
        0,
        "no publish without new votes"
    );
}

/// A deliberately weak base: the same separable features as [`tiny_base`]
/// but only ONE offline annotator, so the live annotators dominate the fold
/// and spam actually moves the trained model.
fn weak_base(seed: u64) -> (RetrainBase, Vec<u8>) {
    let (base, truth) = tiny_base(seed);
    let mut annotations = AnnotationMatrix::new(40, 1, 2).unwrap();
    for (i, &t) in truth.iter().enumerate() {
        let label = if i % 7 == 0 { 1 - t } else { t };
        annotations.set(i, 0, label).unwrap();
    }
    (
        RetrainBase {
            features: base.features,
            annotations,
            expert_labels: base.expert_labels,
        },
        truth,
    )
}

/// Ingests the spammer-heavy live stream: worker 0 votes the truth on every
/// example, workers 1–3 are constant-1 spammers (informativeness exactly 0:
/// their fitted confusion rows are identical no matter what truth the
/// Dawid–Skene fit anchors on, so collusion cannot make them look useful).
/// The last five truth-0 examples are left unspammed so the unweighted fold
/// keeps enough negatives for the grouping stage — it must produce a *bad*
/// model, not a failed round.
fn ingest_spammy_stream(store: &LabelStore, truth: &[u8]) -> u64 {
    let spared: Vec<usize> = truth
        .iter()
        .enumerate()
        .filter(|(_, &t)| t == 0)
        .map(|(i, _)| i)
        .rev()
        .take(5)
        .collect();
    let mut ingested = 0;
    for (i, &t) in truth.iter().enumerate() {
        store.ingest(Vote::new(i as u64, 0, t)).unwrap();
        ingested += 1;
        if spared.contains(&i) {
            continue;
        }
        for spammer in 1..4u32 {
            store.ingest(Vote::new(i as u64, spammer, 1)).unwrap();
            ingested += 1;
        }
    }
    ingested
}

fn run_one_round(dir: &Path, weighting: Option<WorkerWeighting>, truth: &[u8]) -> RetrainStatus {
    let store = Arc::new(LabelStore::open(store_config(dir), Recorder::disabled()).unwrap());
    let votes = ingest_spammy_stream(&store, truth);
    let (base, _) = weak_base(3);
    let mut config = retrain_config(dir, votes);
    config.weighting = weighting;
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config,
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    )
    .unwrap();
    assert!(
        wait_for_rounds(&retrainer, 1, Duration::from_secs(60)),
        "round never completed: {:?}",
        retrainer.shared().status()
    );
    retrainer.stop();
    retrainer.shared().status()
}

/// Acceptance: on a spammer-heavy stream, quality weighting strictly
/// improves post-retrain eval accuracy over the unweighted fold.
#[test]
fn weighting_beats_unweighted_fold_on_spammy_stream() {
    let (_, truth) = weak_base(3);
    let weighted = run_one_round(
        &fresh_dir("weight_on"),
        Some(WorkerWeighting {
            spam_threshold: 0.2,
            min_votes: 3,
        }),
        &truth,
    );
    let unweighted = run_one_round(&fresh_dir("weight_off"), None, &truth);
    // The constant-1 spammers are always excluded; the honest live worker
    // may or may not survive the fit (a spam-majority consensus can drown
    // it), but the spam never reaches the fold.
    for spammer in [1u32, 2, 3] {
        assert!(
            weighted.excluded_workers.contains(&spammer),
            "spammer {spammer} not excluded: {:?}",
            weighted.excluded_workers
        );
    }
    assert!(unweighted.excluded_workers.is_empty());
    assert!(
        weighted.last_accuracy > unweighted.last_accuracy,
        "weighted {} !> unweighted {}",
        weighted.last_accuracy,
        unweighted.last_accuracy
    );
}

/// The excluded workers are pinned in the manifest so a crash-recovered
/// round reproduces the same fold.
#[test]
fn weighting_pins_exclusions_in_manifest() {
    let dir = fresh_dir("weight_manifest");
    let (_, truth) = weak_base(3);
    let status = run_one_round(
        &dir,
        Some(WorkerWeighting {
            spam_threshold: 0.2,
            min_votes: 3,
        }),
        &truth,
    );
    let manifest = read_manifest(&dir.join("retrain.manifest.json"))
        .unwrap()
        .unwrap();
    assert!(manifest.complete);
    assert_eq!(manifest.excluded(), &status.excluded_workers[..]);
    assert_eq!(manifest.trigger.as_deref(), Some("votes"));
}

/// Drift trigger: the vote floor alone must NOT fire a round when the
/// confidence field is stable and uncontested under huge thresholds.
#[test]
fn drift_trigger_holds_fire_below_thresholds() {
    let dir = fresh_dir("drift_quiet");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, truth) = tiny_base(3);
    // Unanimous single votes: every voted example sits at δ∈{0,1}, so
    // disagreement is exactly 0 and only the (huge) drift bar remains.
    for i in 0..10u64 {
        store.ingest(Vote::new(i, 0, truth[i as usize])).unwrap();
    }
    let mut config = retrain_config(&dir, 5);
    config.trigger = RetrainTrigger::Drift {
        min_new_votes: 5,
        drift_threshold: 1e6,
        disagreement_threshold: 0.99,
    };
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config,
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    )
    .unwrap();
    // Well past the vote floor and many poll intervals: still no round.
    std::thread::sleep(Duration::from_millis(300));
    retrainer.stop();
    let status = retrainer.shared().status();
    assert_eq!(
        status.rounds_completed, 0,
        "vote floor alone fired a drift-triggered round"
    );
}

/// …and the same backlog DOES fire once the drift bar is reachable, stamping
/// the manifest with the trigger that released it.
#[test]
fn drift_trigger_fires_past_threshold() {
    let dir = fresh_dir("drift_fire");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (base, truth) = tiny_base(3);
    for i in 0..10u64 {
        store.ingest(Vote::new(i, 0, truth[i as usize])).unwrap();
    }
    let mut config = retrain_config(&dir, 5);
    config.trigger = RetrainTrigger::Drift {
        min_new_votes: 5,
        drift_threshold: 0.01,
        disagreement_threshold: 0.99,
    };
    let manifest_path = config.manifest_path.clone();
    let mut retrainer = Retrainer::start(
        Arc::clone(&store),
        base,
        config,
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    )
    .unwrap();
    assert!(
        wait_for_rounds(&retrainer, 1, Duration::from_secs(60)),
        "drift round never fired"
    );
    retrainer.stop();
    let status = retrainer.shared().status();
    assert_eq!(status.rounds_completed, 1);
    assert_eq!(status.last_trigger.as_deref(), Some("drift"));
    let manifest = read_manifest(&manifest_path).unwrap().unwrap();
    assert_eq!(manifest.trigger.as_deref(), Some("drift"));
}

#[test]
fn start_rejects_mismatched_base() {
    let dir = fresh_dir("badbase");
    let store = Arc::new(LabelStore::open(store_config(&dir), Recorder::disabled()).unwrap());
    let (mut base, _) = tiny_base(9);
    base.expert_labels = Some(vec![0; 7]);
    let err = Retrainer::start(
        store,
        base,
        retrain_config(&dir, 10),
        Recorder::disabled(),
        Box::new(CountingSink {
            rounds: Arc::new(AtomicU64::new(0)),
        }),
    );
    assert!(err.is_err());
}
