//! WAL durability and determinism suite (issue 8, satellite d).
//!
//! Covers the crash modes an append-only log actually sees — torn tails,
//! truncated files, flipped bits, vanished segments — plus the invariants
//! the continuous-learning loop leans on: replay idempotence, deterministic
//! cross-shard ordering, and bitwise agreement between replayed online
//! confidence and the batch estimator.

use std::fs;
use std::num::NonZeroU32;
use std::path::{Path, PathBuf};

use rll_crowd::{AnnotationMatrix, BetaPrior, ConfidenceEstimator};
use rll_label::{
    replay_read_only, shard_of, ConfidenceTracker, CorruptionKind, IngestReceipt, LabelError,
    LabelStore, LabelStoreConfig, ShardedWal, Vote, WalConfig, DEFAULT_DEDUP_CAPACITY,
};
use rll_obs::Recorder;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rll_label_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(dir: &Path, shards: u32, segment_records: u64) -> WalConfig {
    WalConfig::new(dir.to_path_buf(), shards, segment_records).unwrap()
}

/// A deterministic little vote stream that exercises several shards,
/// repeat-voters (last-write-wins), and both labels.
fn vote_stream(n: usize) -> Vec<Vote> {
    (0..n)
        .map(|i| Vote::new((i as u64 * 7) % 13, (i as u32) % 5, ((i / 3) % 2) as u8))
        .collect()
}

fn append_all(wal: &mut ShardedWal, votes: &[Vote]) {
    for &vote in votes {
        wal.append(vote).unwrap();
    }
}

/// The active (largest-index) segment file of a shard.
fn active_segment_of(dir: &Path, shard: u32) -> PathBuf {
    let prefix = format!("shard{shard:04}-seg");
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".rllwal"))
        })
        .collect();
    segs.sort();
    segs.pop().expect("shard has at least one segment")
}

#[test]
fn roundtrip_replays_every_acked_vote_in_seq_order() {
    let dir = fresh_dir("roundtrip");
    let votes = vote_stream(40);
    let appended: Vec<_> = {
        let (mut wal, replay) = ShardedWal::open(wal_config(&dir, 4, 8)).unwrap();
        assert_eq!(replay.records.len(), 0);
        votes.iter().map(|&v| wal.append(v).unwrap()).collect()
    };
    let (wal, replay) = ShardedWal::open(wal_config(&dir, 4, 8)).unwrap();
    assert_eq!(replay.records, appended);
    assert!(replay.corruptions.is_empty());
    assert_eq!(replay.high_water, 40);
    assert_eq!(wal.high_water(), 40);
    // Sequence numbers are 1-based and strictly increasing across shards.
    for (i, rec) in replay.records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1);
    }
}

#[test]
fn replay_is_idempotent() {
    let dir = fresh_dir("idempotent");
    {
        let (mut wal, _) = ShardedWal::open(wal_config(&dir, 3, 4)).unwrap();
        append_all(&mut wal, &vote_stream(25));
    }
    let first = replay_read_only(&wal_config(&dir, 3, 4)).unwrap();
    let second = replay_read_only(&wal_config(&dir, 3, 4)).unwrap();
    assert_eq!(first.records, second.records);
    assert_eq!(first.high_water, second.high_water);
    assert!(first.corruptions.is_empty());

    // Applying the same records twice to a tracker changes nothing.
    let mut tracker = ConfidenceTracker::new(ConfidenceEstimator::Mle).unwrap();
    for rec in &first.records {
        tracker.apply(rec).unwrap();
    }
    let once = tracker.snapshot().unwrap();
    for rec in &first.records {
        tracker.apply(rec).unwrap();
    }
    assert_eq!(tracker.snapshot().unwrap(), once);
}

#[test]
fn torn_tail_is_truncated_and_survives_reopen() {
    let dir = fresh_dir("torn");
    let votes = vote_stream(20);
    {
        let (mut wal, _) = ShardedWal::open(wal_config(&dir, 2, 100)).unwrap();
        append_all(&mut wal, &votes);
    }
    // Simulate a crash mid-append: a partial record with no newline at the
    // tail of shard 0's active segment.
    let victim = active_segment_of(&dir, 0);
    let mut bytes = fs::read(&victim).unwrap();
    bytes.extend_from_slice(b"deadbeef {\"seq\":999,\"exa");
    fs::write(&victim, &bytes).unwrap();

    let (mut wal, replay) = ShardedWal::open(wal_config(&dir, 2, 100)).unwrap();
    // Every previously acked record survives; only the torn tail is dropped.
    assert_eq!(replay.records.len(), votes.len());
    assert_eq!(replay.high_water, votes.len() as u64);
    assert_eq!(replay.corruptions.len(), 1);
    assert_eq!(replay.corruptions[0].kind, CorruptionKind::TornTail);
    assert_eq!(replay.dropped_records, 1);

    // The repair rewrote the file; a second open is clean and appends resume
    // at the next sequence number.
    let rec = wal.append(Vote::new(1, 1, 1)).unwrap();
    assert_eq!(rec.seq, votes.len() as u64 + 1);
    let (_, replay2) = ShardedWal::open(wal_config(&dir, 2, 100)).unwrap();
    assert!(replay2.corruptions.is_empty());
    assert_eq!(replay2.records.len(), votes.len() + 1);
}

#[test]
fn flipped_bit_truncates_at_the_exact_record() {
    let dir = fresh_dir("bitflip");
    {
        let (mut wal, _) = ShardedWal::open(wal_config(&dir, 1, 100)).unwrap();
        append_all(&mut wal, &vote_stream(10));
    }
    let victim = active_segment_of(&dir, 0);
    let mut bytes = fs::read(&victim).unwrap();
    // Flip one bit inside the 6th record's JSON (header is line 0).
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        )
        .collect();
    let target = line_starts[6] + 20;
    bytes[target] ^= 0x01;
    fs::write(&victim, &bytes).unwrap();

    let (_, replay) = ShardedWal::open(wal_config(&dir, 1, 100)).unwrap();
    // Records 1..=5 (before the flipped line) survive; the rest of the shard
    // is truncated at the corrupt record.
    assert_eq!(replay.records.len(), 5);
    assert_eq!(replay.high_water, 5);
    assert_eq!(replay.corruptions.len(), 1);
    let c = &replay.corruptions[0];
    assert!(
        c.kind == CorruptionKind::ChecksumMismatch || c.kind == CorruptionKind::MalformedRecord,
        "unexpected kind {:?}",
        c.kind
    );
    assert_eq!(c.record_index, 5);
    assert_eq!(replay.dropped_records, 5);
    // Idempotent after repair.
    let (_, replay2) = ShardedWal::open(wal_config(&dir, 1, 100)).unwrap();
    assert!(replay2.corruptions.is_empty());
    assert_eq!(replay2.records.len(), 5);
}

#[test]
fn rotation_seals_segments_and_replay_checks_them() {
    let dir = fresh_dir("rotation");
    {
        let (mut wal, _) = ShardedWal::open(wal_config(&dir, 2, 3)).unwrap();
        append_all(&mut wal, &vote_stream(30));
    }
    let segment_files = fs::read_dir(&dir).unwrap().count();
    assert!(
        segment_files > 2,
        "expected rotation, found {segment_files} files"
    );
    let (_, replay) = ShardedWal::open(wal_config(&dir, 2, 3)).unwrap();
    assert!(replay.corruptions.is_empty());
    assert_eq!(replay.records.len(), 30);
    assert!(replay.segments_read > 2);
}

#[test]
fn missing_middle_segment_quarantines_the_rest_of_the_shard() {
    let dir = fresh_dir("gap");
    {
        let (mut wal, _) = ShardedWal::open(wal_config(&dir, 1, 2)).unwrap();
        append_all(&mut wal, &vote_stream(10));
    }
    // Remove a middle segment: everything after the gap is unreachable.
    let gone = dir.join("shard0000-seg00000002.rllwal");
    assert!(gone.exists());
    fs::remove_file(&gone).unwrap();

    let (_, replay) = ShardedWal::open(wal_config(&dir, 1, 2)).unwrap();
    assert_eq!(
        replay.records.len(),
        4,
        "two 2-record segments before the gap"
    );
    assert!(replay
        .corruptions
        .iter()
        .any(|c| c.kind == CorruptionKind::MissingSegment));
    assert!(replay
        .corruptions
        .iter()
        .any(|c| c.kind == CorruptionKind::Quarantined));
    // Quarantined files are renamed, not deleted, and never re-read.
    let quarantined = fs::read_dir(&dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .path()
                .to_string_lossy()
                .ends_with(".quarantined")
        })
        .count();
    assert!(quarantined >= 1);
    let (_, replay2) = ShardedWal::open(wal_config(&dir, 1, 2)).unwrap();
    assert!(replay2.corruptions.is_empty());
    assert_eq!(replay2.records.len(), 4);
}

#[test]
fn cross_shard_merge_order_is_deterministic() {
    let dir_a = fresh_dir("order_a");
    let dir_b = fresh_dir("order_b");
    let votes = vote_stream(60);
    for dir in [&dir_a, &dir_b] {
        let (mut wal, _) = ShardedWal::open(wal_config(dir, 5, 4)).unwrap();
        append_all(&mut wal, &votes);
    }
    let a = replay_read_only(&wal_config(&dir_a, 5, 4)).unwrap();
    let b = replay_read_only(&wal_config(&dir_b, 5, 4)).unwrap();
    assert_eq!(a.records, b.records);
    // The merge reproduces ingestion order exactly, independent of shard
    // interleaving.
    for (i, rec) in a.records.iter().enumerate() {
        assert_eq!(rec.seq, i as u64 + 1);
        assert_eq!(rec.example, votes[i].example);
        assert_eq!(rec.worker, votes[i].worker);
        assert_eq!(rec.label, votes[i].label);
    }
    // And the shard routing itself is a pure function.
    let five = NonZeroU32::new(5).unwrap();
    for v in &votes {
        assert_eq!(shard_of(v.example, five), shard_of(v.example, five));
    }
}

/// Satellite: a zero shard count (or segment size) is a typed config error
/// at construction, not a silently masked `.max(1)` at hash time.
#[test]
fn wal_config_rejects_zero_shards_and_zero_segment() {
    let dir = fresh_dir("zero_config");
    for (shards, segment_records) in [(0u32, 8u64), (4, 0), (0, 0)] {
        let err = WalConfig::new(dir.clone(), shards, segment_records).unwrap_err();
        assert!(
            matches!(err, LabelError::InvalidConfig { .. }),
            "({shards}, {segment_records}) gave {err:?}"
        );
    }
    // The store surfaces the same typed error instead of opening.
    let err = LabelStore::open(
        LabelStoreConfig {
            dir,
            shards: 0,
            segment_records: 8,
            estimator: ConfidenceEstimator::Mle,
            num_examples: 4,
            max_workers: 2,
            dedup_capacity: DEFAULT_DEDUP_CAPACITY,
            manifest_path: None,
        },
        Recorder::disabled(),
    )
    .unwrap_err();
    assert!(matches!(err, LabelError::InvalidConfig { .. }));
}

/// Replayed online confidence must equal the batch estimator **bitwise** on
/// the same votes — both MLE (eq. 1) and Bayesian (eq. 2).
#[test]
fn replayed_confidence_matches_batch_estimator_bitwise() {
    let dir = fresh_dir("bitwise");
    let votes = vote_stream(50);
    {
        let (mut wal, _) = ShardedWal::open(wal_config(&dir, 3, 8)).unwrap();
        append_all(&mut wal, &votes);
    }
    let replay = replay_read_only(&wal_config(&dir, 3, 8)).unwrap();

    // Batch side: the same votes as an AnnotationMatrix (last-write-wins,
    // same as the tracker).
    let mut matrix = AnnotationMatrix::new(13, 5, 2).unwrap();
    for v in &votes {
        matrix
            .set(v.example as usize, v.worker as usize, v.label)
            .unwrap();
    }

    let estimators = [
        ConfidenceEstimator::Mle,
        ConfidenceEstimator::Bayesian(BetaPrior {
            alpha: 1.0,
            beta: 1.0,
        }),
        ConfidenceEstimator::Bayesian(BetaPrior {
            alpha: 2.5,
            beta: 0.5,
        }),
    ];
    for estimator in estimators {
        let mut tracker = ConfidenceTracker::new(estimator).unwrap();
        for rec in &replay.records {
            tracker.apply(rec).unwrap();
        }
        for example in 0..13usize {
            let total = matrix.annotation_count(example).unwrap();
            if total == 0 {
                assert!(tracker.confidence(example as u64).unwrap().is_none());
                continue;
            }
            let positive = matrix.positive_votes(example).unwrap();
            let batch = estimator.positiveness(positive, total).unwrap();
            let online = tracker
                .confidence(example as u64)
                .unwrap()
                .expect("voted example")
                .confidence;
            assert_eq!(
                online.to_bits(),
                batch.to_bits(),
                "estimator {estimator:?} example {example}: online {online} != batch {batch}"
            );
        }
    }
}

/// Kill-and-restart: a store reopened over the same WAL produces a
/// byte-identical `/labels` snapshot.
#[test]
fn store_reopen_snapshot_is_byte_identical() {
    let dir = fresh_dir("store_reopen");
    let config = LabelStoreConfig {
        dir: dir.clone(),
        shards: 2,
        segment_records: 8,
        estimator: ConfidenceEstimator::Bayesian(BetaPrior {
            alpha: 1.0,
            beta: 1.0,
        }),
        num_examples: 13,
        max_workers: 5,
        dedup_capacity: DEFAULT_DEDUP_CAPACITY,
        manifest_path: None,
    };
    let before = {
        let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
        let mut last: Option<IngestReceipt> = None;
        for v in vote_stream(30) {
            last = Some(store.ingest(v).unwrap());
        }
        assert_eq!(last.unwrap().seq, 30);
        serde_json::to_string(&store.snapshot().unwrap()).unwrap()
        // store dropped here = the "kill"
    };
    let store = LabelStore::open(config, Recorder::disabled()).unwrap();
    let after = serde_json::to_string(&store.snapshot().unwrap()).unwrap();
    assert_eq!(before, after);
    assert_eq!(store.high_water(), 30);
}

#[test]
fn store_rejects_out_of_range_votes() {
    let dir = fresh_dir("store_reject");
    let store = LabelStore::open(
        LabelStoreConfig {
            dir,
            shards: 1,
            segment_records: 8,
            estimator: ConfidenceEstimator::Mle,
            num_examples: 4,
            max_workers: 2,
            dedup_capacity: DEFAULT_DEDUP_CAPACITY,
            manifest_path: None,
        },
        Recorder::disabled(),
    )
    .unwrap();
    assert!(store.ingest(Vote::new(4, 0, 1)).is_err());
    assert!(store.ingest(Vote::new(0, 2, 1)).is_err());
    assert!(store.ingest(Vote::new(0, 0, 2)).is_err());
    // Half an idempotency key is invalid, not silently unkeyed.
    let mut half_keyed = Vote::new(0, 0, 1);
    half_keyed.session = Some(7);
    assert!(store.ingest(half_keyed).is_err());
    assert_eq!(store.high_water(), 0, "rejected votes never touch the WAL");
    store.ingest(Vote::new(0, 0, 1)).unwrap();
    assert_eq!(store.high_water(), 1);
}

/// `fold_current` is deterministic: the same votes produce the same folded
/// matrix whether folded live or rebuilt from a disk replay.
#[test]
fn fold_is_deterministic_across_restart() {
    let dir = fresh_dir("fold");
    let config = LabelStoreConfig {
        dir,
        shards: 2,
        segment_records: 4,
        estimator: ConfidenceEstimator::Mle,
        num_examples: 13,
        max_workers: 5,
        dedup_capacity: DEFAULT_DEDUP_CAPACITY,
        manifest_path: None,
    };
    let base = {
        let mut m = AnnotationMatrix::new(13, 3, 2).unwrap();
        for i in 0..13 {
            m.set(i, i % 3, (i % 2) as u8).unwrap();
        }
        m
    };
    let (live_fold, live_seq) = {
        let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
        for v in vote_stream(20) {
            store.ingest(v).unwrap();
        }
        let (folded, seq, _) = store.fold_current(&base).unwrap();
        (folded, seq)
    };
    // Restart: rebuild the tracker from disk up to the same sequence.
    let store = LabelStore::open(config, Recorder::disabled()).unwrap();
    let tracker = store.replay_up_to(live_seq).unwrap();
    let recovered_fold = tracker.fold_into(&base, 5).unwrap();
    assert_eq!(
        serde_json::to_string(&live_fold).unwrap(),
        serde_json::to_string(&recovered_fold).unwrap()
    );
    // Width is fixed at base + max_workers regardless of who voted.
    assert_eq!(live_fold.num_workers(), 3 + 5);
    assert_eq!(live_fold.num_items(), 13);
}
