//! Compaction suite (issue 9): snapshot+tail replay equivalence, the
//! crash contract of an interrupted compaction, the manifest-gated target
//! policy, idempotent keyed ingest, and sequence-floor preservation.

use std::fs;
use std::path::{Path, PathBuf};

use rll_crowd::{BetaPrior, ConfidenceEstimator};
use rll_label::{
    compact_wal, read_manifest, read_snapshot, replay_read_only, snapshot_path, write_manifest,
    CompactInterrupt, LabelError, LabelStore, LabelStoreConfig, RetrainManifest, Vote,
    MANIFEST_SCHEMA,
};
use rll_obs::Recorder;
use rll_tensor::Rng64;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rll_compact_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn store_config(dir: &Path, shards: u32, segment_records: u64) -> LabelStoreConfig {
    LabelStoreConfig {
        dir: dir.join("wal"),
        shards,
        segment_records,
        estimator: ConfidenceEstimator::Bayesian(BetaPrior {
            alpha: 1.0,
            beta: 1.0,
        }),
        num_examples: 29,
        max_workers: 6,
        dedup_capacity: 64,
        manifest_path: Some(dir.join("retrain.manifest.json")),
    }
}

/// Seeded vote stream; roughly half the votes carry idempotency keys so the
/// dedup table is exercised through snapshots and replays too.
fn random_votes(seed: u64, n: usize) -> Vec<Vote> {
    let mut rng = Rng64::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let vote = Vote::new(
                rng.below(29).unwrap_or(0) as u64,
                rng.below(6).unwrap_or(0) as u32,
                u8::from(rng.bernoulli(0.6)),
            );
            if rng.bernoulli(0.5) {
                vote.with_key(seed ^ 0xabc, i as u64)
            } else {
                vote
            }
        })
        .collect()
}

fn complete_manifest(folded_seq: u64) -> RetrainManifest {
    RetrainManifest {
        schema: MANIFEST_SCHEMA.to_string(),
        round: 1,
        folded_seq,
        seed: 7,
        complete: true,
        excluded_workers: None,
        trigger: None,
    }
}

/// `/labels` equality down to the confidence *bits* — the bar the whole
/// snapshot+tail design is held to.
fn assert_snapshots_bit_identical(store: &LabelStore, control: &LabelStore, context: &str) {
    let a = store.snapshot().unwrap();
    let b = control.snapshot().unwrap();
    assert_eq!(a.high_water_seq, b.high_water_seq, "{context}: high water");
    assert_eq!(a.votes, b.votes, "{context}: vote cells");
    assert_eq!(a.examples.len(), b.examples.len(), "{context}: examples");
    for (x, y) in a.examples.iter().zip(&b.examples) {
        assert_eq!(x.example, y.example, "{context}");
        assert_eq!(x.votes, y.votes, "{context}: example {}", x.example);
        assert_eq!(x.positive, y.positive, "{context}: example {}", x.example);
        assert_eq!(x.last_seq, y.last_seq, "{context}: example {}", x.example);
        assert_eq!(
            x.confidence.to_bits(),
            y.confidence.to_bits(),
            "{context}: example {} confidence {} != {}",
            x.example,
            x.confidence,
            y.confidence
        );
    }
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "{context}: serialized snapshot"
    );
}

/// Property: for random vote streams, shard shapes, and compaction points,
/// snapshot-load + tail-replay is bit-identical to replaying the full log.
#[test]
fn compacted_replay_equals_full_replay_property() {
    for (case, &(seed, n, shards, segment_records)) in [
        (11u64, 60usize, 1u32, 4u64),
        (12, 90, 3, 8),
        (13, 120, 4, 5),
        (14, 45, 2, 64), // segments never seal: compaction must be a no-op
    ]
    .iter()
    .enumerate()
    {
        let dir = fresh_dir(&format!("prop{case}"));
        let control_dir = fresh_dir(&format!("prop{case}_ctl"));
        let config = store_config(&dir, shards, segment_records);
        let control_config = store_config(&control_dir, shards, segment_records);
        let votes = random_votes(seed, n);
        {
            let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
            let control = LabelStore::open(control_config.clone(), Recorder::disabled()).unwrap();
            for &v in &votes {
                store.ingest(v).unwrap();
                control.ingest(v).unwrap();
            }
            // Three compaction points per case, strictly increasing.
            let mut rng = Rng64::seed_from_u64(seed ^ 0x55);
            let mut target = 0u64;
            for _ in 0..3 {
                target = (target + 1 + rng.below(n / 2).unwrap_or(0) as u64).min(n as u64);
                write_manifest(
                    config.manifest_path.as_ref().unwrap(),
                    &complete_manifest(target),
                )
                .unwrap();
                let stats = store.compact_below_manifest().unwrap();
                assert!(stats.covered_seq >= target.min(stats.covered_seq));
                assert_snapshots_bit_identical(
                    &store,
                    &control,
                    &format!("case {case} live after compact to {target}"),
                );
            }
        }
        // Kill + restart both stores: the compacted one rebuilds from
        // snapshot + tail, the control from the full log.
        let store = LabelStore::open(config, Recorder::disabled()).unwrap();
        let control = LabelStore::open(control_config, Recorder::disabled()).unwrap();
        assert_snapshots_bit_identical(&store, &control, &format!("case {case} after restart"));
    }
}

/// Compaction actually shrinks the log once segments seal, and replay
/// tolerates the leading segment gap it leaves.
#[test]
fn compaction_reclaims_sealed_segments() {
    let dir = fresh_dir("reclaim");
    let config = store_config(&dir, 2, 4);
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    for &v in &random_votes(21, 80) {
        store.ingest(v).unwrap();
    }
    let bytes_before = store.wal_bytes().unwrap();
    write_manifest(
        config.manifest_path.as_ref().unwrap(),
        &complete_manifest(80),
    )
    .unwrap();
    let stats = store.compact_below_manifest().unwrap();
    assert!(stats.snapshot_written);
    assert!(stats.segments_deleted > 0, "{stats:?}");
    assert!(stats.bytes_reclaimed > 0);
    assert!(
        stats.wal_bytes_after < bytes_before,
        "{} !< {bytes_before}",
        stats.wal_bytes_after
    );
    assert_eq!(stats.covered_seq, 80);
    // A second run with the same target is a no-op (idempotent).
    let again = store.compact_below_manifest().unwrap();
    assert!(!again.snapshot_written);
    assert_eq!(again.segments_deleted, 0);
}

/// Sequence numbers are never reused after compacting away every segment of
/// a shard: the floor comes from the snapshot, not the surviving files.
#[test]
fn sequence_floor_survives_full_compaction() {
    let dir = fresh_dir("floor");
    let config = store_config(&dir, 2, 2);
    {
        let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
        for &v in &random_votes(31, 40) {
            store.ingest(v).unwrap();
        }
        write_manifest(
            config.manifest_path.as_ref().unwrap(),
            &complete_manifest(40),
        )
        .unwrap();
        store.compact_below_manifest().unwrap();
    }
    let store = LabelStore::open(config, Recorder::disabled()).unwrap();
    assert_eq!(store.high_water(), 40, "state restored from snapshot");
    let receipt = store.ingest(Vote::new(0, 0, 1)).unwrap();
    assert_eq!(receipt.seq, 41, "compacted sequence numbers are not reused");
}

/// Crash contract, stop-after-snapshot: the snapshot exists, every segment
/// still exists, and a reopened store sees identical state (covered records
/// exist twice; the tail filter must not double-apply them).
#[test]
fn interrupted_before_delete_loses_nothing() {
    let dir = fresh_dir("before_delete");
    let control_dir = fresh_dir("before_delete_ctl");
    let config = store_config(&dir, 2, 4);
    let control_config = store_config(&control_dir, 2, 4);
    let votes = random_votes(41, 60);
    {
        let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
        let control = LabelStore::open(control_config.clone(), Recorder::disabled()).unwrap();
        for &v in &votes {
            store.ingest(v).unwrap();
            control.ingest(v).unwrap();
        }
    }
    let wal_config = config.wal_config().unwrap();
    let bytes_before = fs::read_dir(dir.join("wal")).unwrap().count();
    let stats = compact_wal(
        &wal_config,
        config.estimator,
        config.dedup_capacity,
        45,
        CompactInterrupt::StopAfterSnapshot,
    )
    .unwrap();
    assert!(stats.interrupted);
    assert!(stats.snapshot_written);
    assert_eq!(stats.segments_deleted, 0);
    assert!(snapshot_path(&wal_config).exists());
    assert_eq!(
        fs::read_dir(dir.join("wal")).unwrap().count(),
        bytes_before + 1,
        "only the snapshot was added; no segment deleted"
    );

    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    let control = LabelStore::open(control_config, Recorder::disabled()).unwrap();
    assert_snapshots_bit_identical(&store, &control, "interrupted before delete");
    drop(store);

    // Resuming the compaction finishes the deletion phase.
    let resumed = compact_wal(
        &wal_config,
        config.estimator,
        config.dedup_capacity,
        45,
        CompactInterrupt::None,
    )
    .unwrap();
    assert!(!resumed.snapshot_written, "snapshot already covers 45");
    assert!(resumed.segments_deleted > 0);
    let store = LabelStore::open(config, Recorder::disabled()).unwrap();
    assert_eq!(store.high_water(), 60);
}

/// Crash contract, stop-mid-delete: some covered segments are gone, the rest
/// remain; replay treats the leading gap as compacted prefix and state is
/// still bit-identical.
#[test]
fn interrupted_mid_delete_loses_nothing() {
    let dir = fresh_dir("mid_delete");
    let control_dir = fresh_dir("mid_delete_ctl");
    let config = store_config(&dir, 2, 4);
    let control_config = store_config(&control_dir, 2, 4);
    let votes = random_votes(51, 60);
    {
        let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
        let control = LabelStore::open(control_config.clone(), Recorder::disabled()).unwrap();
        for &v in &votes {
            store.ingest(v).unwrap();
            control.ingest(v).unwrap();
        }
    }
    let wal_config = config.wal_config().unwrap();
    let stats = compact_wal(
        &wal_config,
        config.estimator,
        config.dedup_capacity,
        45,
        CompactInterrupt::StopAfterFirstDelete,
    )
    .unwrap();
    assert!(stats.interrupted);
    assert_eq!(stats.segments_deleted, 1, "exactly one segment deleted");

    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    let control = LabelStore::open(control_config, Recorder::disabled()).unwrap();
    assert_snapshots_bit_identical(&store, &control, "interrupted mid delete");
    drop(store);

    let resumed = compact_wal(
        &wal_config,
        config.estimator,
        config.dedup_capacity,
        45,
        CompactInterrupt::None,
    )
    .unwrap();
    assert!(resumed.segments_deleted >= 1, "{resumed:?}");
}

/// A crash *during* the snapshot write leaves only an atomic-writer temp
/// file, which every reader ignores; a *torn final* snapshot is a hard typed
/// error, never a silent empty store (the covering segments may be gone).
#[test]
fn torn_snapshot_is_hard_error_and_tmp_is_ignored() {
    let dir = fresh_dir("torn_snap");
    let config = store_config(&dir, 1, 4);
    {
        let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
        for &v in &random_votes(61, 20) {
            store.ingest(v).unwrap();
        }
    }
    let wal_config = config.wal_config().unwrap();
    // Mid-write crash: a half-written temp beside the (absent) snapshot.
    let tmp = dir.join("wal").join(format!(
        ".{}.tmp.{}",
        rll_label::SNAPSHOT_FILE,
        std::process::id()
    ));
    fs::write(&tmp, b"{\"magic\":\"RLLSNAP\",\"version\":1,\"cover").unwrap();
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    assert_eq!(store.high_water(), 20, "temp file is invisible to replay");
    drop(store);

    // Torn *final* snapshot: typed corruption, not data loss by fallback.
    fs::write(
        snapshot_path(&wal_config),
        b"{\"magic\":\"RLLSNAP\",\"version\":1,\"cover",
    )
    .unwrap();
    let err = read_snapshot(&snapshot_path(&wal_config)).unwrap_err();
    assert!(matches!(err, LabelError::Corrupt { .. }), "{err:?}");
    let err = LabelStore::open(config, Recorder::disabled()).unwrap_err();
    assert!(matches!(err, LabelError::Corrupt { .. }), "{err:?}");
}

/// Satellite regression: the compaction high-water comes from the on-disk
/// *complete* manifest, never the in-memory tracker. In the crash window
/// between a round's fold and its publish (manifest incomplete), compaction
/// is a no-op.
#[test]
fn incomplete_manifest_never_compacts() {
    let dir = fresh_dir("incomplete");
    let config = store_config(&dir, 2, 4);
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    for &v in &random_votes(71, 40) {
        store.ingest(v).unwrap();
    }
    // No manifest at all → no-op.
    let stats = store.compact_below_manifest().unwrap();
    assert_eq!(stats.target_seq, 0);
    assert!(!stats.snapshot_written);
    assert_eq!(stats.segments_deleted, 0);
    assert!(store.disk_snapshot().unwrap().is_none());

    // Fold happened (folded_seq = 40 in the manifest) but the round died
    // before publish: complete=false → still a no-op.
    let mut manifest = complete_manifest(40);
    manifest.complete = false;
    write_manifest(config.manifest_path.as_ref().unwrap(), &manifest).unwrap();
    assert!(
        !read_manifest(config.manifest_path.as_ref().unwrap())
            .unwrap()
            .unwrap()
            .complete
    );
    let stats = store.compact_below_manifest().unwrap();
    assert_eq!(stats.target_seq, 0, "incomplete manifest must be ignored");
    assert_eq!(stats.segments_deleted, 0);
    assert!(store.disk_snapshot().unwrap().is_none());

    // Publish lands (complete=true): now — and only now — it compacts.
    write_manifest(
        config.manifest_path.as_ref().unwrap(),
        &complete_manifest(40),
    )
    .unwrap();
    let stats = store.compact_below_manifest().unwrap();
    assert_eq!(stats.target_seq, 40);
    assert!(stats.snapshot_written);
    assert!(stats.segments_deleted > 0);
}

/// Asking for history below the snapshot's coverage is a typed error — that
/// state no longer exists on disk.
#[test]
fn replay_below_covered_seq_is_typed_error() {
    let dir = fresh_dir("replay_below");
    let config = store_config(&dir, 2, 4);
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    for &v in &random_votes(81, 40) {
        store.ingest(v).unwrap();
    }
    write_manifest(
        config.manifest_path.as_ref().unwrap(),
        &complete_manifest(30),
    )
    .unwrap();
    store.compact_below_manifest().unwrap();
    // At or above coverage: fine.
    assert_eq!(store.replay_up_to(30).unwrap().applied_seq(), 30);
    assert_eq!(store.replay_up_to(40).unwrap().applied_seq(), 40);
    // Below coverage: typed corruption error, not a silently wrong tracker.
    let err = store.replay_up_to(29).unwrap_err();
    assert!(matches!(err, LabelError::Corrupt { .. }), "{err:?}");
}

/// Keyed ingest is idempotent: a duplicate `(session, request)` answers the
/// original receipt without appending; a *conflicting* reuse of the key is a
/// typed invalid-vote error.
#[test]
fn duplicate_votes_return_original_receipt() {
    let dir = fresh_dir("dedup");
    let config = store_config(&dir, 2, 8);
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    let vote = Vote::new(3, 1, 1).with_key(900, 1);
    let original = store.ingest(vote).unwrap();
    assert_eq!(store.high_water(), 1);
    // Same key, same vote → same receipt, no new record, unchanged state.
    let duplicate = store.ingest(vote).unwrap();
    assert_eq!(duplicate, original);
    assert_eq!(store.high_water(), 1, "duplicate never touched the WAL");
    // Contradicting content under a used key is rejected.
    let err = store
        .ingest(Vote::new(3, 1, 0).with_key(900, 1))
        .unwrap_err();
    assert!(matches!(err, LabelError::InvalidVote { .. }), "{err:?}");
    // A fresh request id under the same session appends normally (even the
    // same ballot content — it is a *new* submission).
    let second = store.ingest(Vote::new(3, 1, 1).with_key(900, 2)).unwrap();
    assert_eq!(second.seq, 2);
    drop(store);

    // The receipt table is rebuilt by replay: the retry still answers the
    // original receipt after a restart.
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    let replayed = store.ingest(vote).unwrap();
    assert_eq!(replayed, original);
    assert_eq!(store.high_water(), 2);

    // …and it survives compaction of the whole log: the receipts ride in
    // the confidence snapshot.
    write_manifest(
        config.manifest_path.as_ref().unwrap(),
        &complete_manifest(2),
    )
    .unwrap();
    store.compact_below_manifest().unwrap();
    drop(store);
    let store = LabelStore::open(config, Recorder::disabled()).unwrap();
    let compacted = store.ingest(vote).unwrap();
    assert_eq!(compacted, original);
    assert_eq!(store.high_water(), 2);
}

/// The dedup table is bounded: oldest-sequence receipts are evicted first,
/// after which a retried key appends a fresh record (documented fallback).
#[test]
fn dedup_capacity_evicts_oldest_first() {
    let dir = fresh_dir("dedup_cap");
    let mut config = store_config(&dir, 1, 64);
    config.dedup_capacity = 4;
    let store = LabelStore::open(config, Recorder::disabled()).unwrap();
    for i in 0..8u64 {
        store
            .ingest(Vote::new(i % 5, 0, (i % 2) as u8).with_key(1, i))
            .unwrap();
    }
    // Keys 0..4 were evicted (capacity 4 keeps requests 4..8): the retry of
    // request 0 is treated as new and appends.
    let retry = store.ingest(Vote::new(0, 0, 0).with_key(1, 0)).unwrap();
    assert_eq!(retry.seq, 9);
    // A recent key is still deduplicated.
    let recent = store.ingest(Vote::new(7 % 5, 0, 1).with_key(1, 7)).unwrap();
    assert_eq!(recent.seq, 8);
    assert_eq!(store.high_water(), 9);
}

/// The raw WAL replay agrees with the store about what the tail holds after
/// compaction (sanity on the replay_read_only + leading-gap contract).
#[test]
fn read_only_replay_sees_only_the_tail_after_compaction() {
    let dir = fresh_dir("tail_only");
    let config = store_config(&dir, 2, 4);
    let store = LabelStore::open(config.clone(), Recorder::disabled()).unwrap();
    for &v in &random_votes(91, 50) {
        store.ingest(v).unwrap();
    }
    write_manifest(
        config.manifest_path.as_ref().unwrap(),
        &complete_manifest(50),
    )
    .unwrap();
    let stats = store.compact_below_manifest().unwrap();
    assert!(stats.segments_deleted > 0);
    let replay = replay_read_only(&config.wal_config().unwrap()).unwrap();
    assert!(
        replay.corruptions.is_empty(),
        "leading gaps are not corruption: {:?}",
        replay.corruptions
    );
    assert!(replay.records.iter().all(|r| r.seq <= 50));
    // Tail records all sit above what some sealed, deleted segment covered.
    assert!(replay.records.len() < 50);
}
