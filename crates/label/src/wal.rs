//! Sharded, checksummed write-ahead log for crowd votes.
//!
//! ## On-disk layout
//!
//! A WAL directory holds flat segment files named
//! `shard<SSSS>-seg<NNNNNNNN>.rllwal`. Each segment reuses the workspace
//! envelope layout ([`rll_core::snapshot`]): a one-line JSON header followed
//! by the payload — here a sequence of *record lines*:
//!
//! ```text
//! {"magic":"RLLWAL","version":1,"shard":0,"segment":0,...}\n
//! <fnv1a-hex-16> {"seq":1,"example":4,"worker":0,"label":1}\n
//! <fnv1a-hex-16> {"seq":3,"example":9,"worker":2,"label":0}\n
//! ```
//!
//! Every record line carries its own FNV-1a checksum over the JSON bytes, so
//! a torn tail (the crash mode of an append-only file) or a flipped bit is
//! detected at the exact record. The *active* (last) segment of a shard is
//! appended in place and fsynced per record — acked votes are durable; on
//! rotation the segment is *sealed*: atomically rewritten with
//! `sealed: true`, the final record count, and a whole-payload checksum.
//!
//! ## Recovery semantics
//!
//! [`ShardedWal::open`] replays every shard and repairs in place: the first
//! bad record in a shard truncates that shard there (the file is atomically
//! rewritten with the good prefix; later segments are quarantined, never
//! silently reused). Each repair is reported as a typed [`Corruption`] in
//! the [`WalReplay`] — recovery degrades, it does not fail. Votes are
//! assigned one **globally monotone** sequence number under the store's
//! `wal` lock, so the cross-shard merge by `seq` reproduces the exact
//! ingestion order deterministically.

use std::fs;
use std::io::Write as _;
use std::num::{NonZeroU32, NonZeroU64};
use std::path::{Path, PathBuf};

use rll_core::snapshot::{atomic_write, split_envelope};
use rll_tensor::hash::fnv1a;
use serde::{Deserialize, Serialize};

use crate::error::{LabelError, Result};

/// Magic string in every segment header.
pub const WAL_MAGIC: &str = "RLLWAL";
/// Current segment format version.
pub const WAL_VERSION: u32 = 1;
/// Extension appended to segment files dropped during repair.
pub const QUARANTINE_SUFFIX: &str = "quarantined";

/// One annotator vote, as submitted to `POST /label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vote {
    /// Dataset row the vote annotates.
    pub example: u64,
    /// Live annotator id (maps to a dedicated worker column on fold-in).
    pub worker: u32,
    /// Binary label: 0 or 1.
    pub label: u8,
    /// Client annotator-session id, half of the optional idempotency key.
    /// Missing from old (and unkeyed) submissions — the vendored serde shim
    /// maps an absent field to `None`.
    pub session: Option<u64>,
    /// Client per-session request counter, the other half. A retried POST
    /// resends the same `(session, request)` pair; ingest then returns the
    /// original receipt instead of appending a second record.
    pub request: Option<u64>,
}

impl Vote {
    /// An unkeyed vote (no idempotency key — every submission appends).
    pub fn new(example: u64, worker: u32, label: u8) -> Vote {
        Vote {
            example,
            worker,
            label,
            session: None,
            request: None,
        }
    }

    /// Attaches a client `(session, request)` idempotency key.
    pub fn with_key(mut self, session: u64, request: u64) -> Vote {
        self.session = Some(session);
        self.request = Some(request);
        self
    }

    /// The idempotency key, if both halves were supplied.
    pub fn key(&self) -> Option<(u64, u64)> {
        match (self.session, self.request) {
            (Some(s), Some(r)) => Some((s, r)),
            _ => None,
        }
    }
}

/// A vote with its durable, globally monotone sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VoteRecord {
    /// 1-based global sequence number (the WAL high-water mark is the
    /// largest acked `seq`).
    pub seq: u64,
    pub example: u64,
    pub worker: u32,
    pub label: u8,
    /// Idempotency-key halves, persisted so the dedup table rebuilds
    /// identically on replay. `None` for unkeyed votes — and for every
    /// record written before this field existed, since an absent field
    /// deserializes to `None`, keeping old segments parseable.
    pub session: Option<u64>,
    pub request: Option<u64>,
}

impl VoteRecord {
    /// The idempotency key, if the originating vote carried one.
    pub fn key(&self) -> Option<(u64, u64)> {
        match (self.session, self.request) {
            (Some(s), Some(r)) => Some((s, r)),
            _ => None,
        }
    }
}

/// Segment-file header (the envelope's one-line JSON head).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SegmentHeader {
    magic: String,
    version: u32,
    shard: u32,
    segment: u64,
    /// First sequence number the segment was opened for (informational).
    base_seq: u64,
    /// `true` once the segment rotated out and was checksummed whole.
    sealed: bool,
    /// Record count; meaningful only when `sealed`.
    records: u64,
    /// FNV-1a over the payload bytes; meaningful only when `sealed`.
    payload_fnv1a: u64,
}

/// Why a record (or segment) was rejected during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// The file's last line has no trailing newline — a torn append.
    TornTail,
    /// A record's FNV-1a checksum does not match its JSON bytes.
    ChecksumMismatch,
    /// A record line is structurally unparseable (no checksum field, bad
    /// hex, or invalid JSON).
    MalformedRecord,
    /// A record's sequence number does not climb within its shard.
    NonMonotoneSeq,
    /// The segment header is missing, unparseable, or inconsistent with the
    /// file's name.
    BadHeader,
    /// A sealed segment's whole-payload checksum or record count disagrees
    /// with its (individually verified) record lines.
    SealedMetadataMismatch,
    /// A segment index gap: the expected segment file is missing.
    MissingSegment,
    /// The segment was dropped because an earlier segment in its shard was
    /// truncated — its records are unreachable past the truncation point.
    Quarantined,
}

/// One replay-time corruption finding. `dropped_records` counts records
/// physically discarded *at and after* the bad point in this segment; later
/// segments of the shard are quarantined and reported separately.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corruption {
    pub shard: u32,
    pub segment: u64,
    pub file: String,
    /// 0-based record index within the segment (0 for header faults).
    pub record_index: u64,
    pub kind: CorruptionKind,
    pub detail: String,
    pub dropped_records: u64,
}

/// Everything a replay recovered.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// All recovered votes, merged across shards in `seq` order.
    pub records: Vec<VoteRecord>,
    /// Typed findings, in shard/segment order.
    pub corruptions: Vec<Corruption>,
    /// Segment files read.
    pub segments_read: u64,
    /// Records discarded by truncation/quarantine, summed.
    pub dropped_records: u64,
    /// Largest recovered sequence number (0 when empty).
    pub high_water: u64,
}

/// WAL shape: directory, shard fan-out, rotation cadence.
///
/// Constructed only through [`WalConfig::new`], which rejects zero shard or
/// segment-record counts with a typed [`LabelError::InvalidConfig`] — the
/// fields are non-zero by type, so a degenerate shape is unrepresentable and
/// no call site needs a defensive `max(1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WalConfig {
    dir: PathBuf,
    shards: NonZeroU32,
    segment_records: NonZeroU64,
}

impl WalConfig {
    /// Validates and builds a WAL shape. `shards == 0` or
    /// `segment_records == 0` is a typed config error, caught here rather
    /// than silently masked at hash time.
    pub fn new(dir: impl Into<PathBuf>, shards: u32, segment_records: u64) -> Result<WalConfig> {
        let shards = NonZeroU32::new(shards).ok_or_else(|| LabelError::InvalidConfig {
            reason: "wal shards must be >= 1".into(),
        })?;
        let segment_records =
            NonZeroU64::new(segment_records).ok_or_else(|| LabelError::InvalidConfig {
                reason: "wal segment_records must be >= 1".into(),
            })?;
        Ok(WalConfig {
            dir: dir.into(),
            shards,
            segment_records,
        })
    }

    /// Directory holding the segment files (created on open).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard count; votes hash to shards by example id.
    pub fn shards(&self) -> NonZeroU32 {
        self.shards
    }

    /// Records per segment before rotation seals it.
    pub fn segment_records(&self) -> NonZeroU64 {
        self.segment_records
    }

    fn segment_path(&self, shard: u32, segment: u64) -> PathBuf {
        self.dir
            .join(format!("shard{shard:04}-seg{segment:08}.rllwal"))
    }
}

/// Append state of one shard.
#[derive(Debug, Clone)]
struct ShardState {
    /// Index of the active segment, or `None` until the first append.
    active_segment: Option<u64>,
    /// Records currently in the active segment.
    active_records: u64,
}

/// The sharded WAL. All mutation goes through [`ShardedWal::append`], which
/// the owning [`crate::store::LabelStore`] serializes under its `wal` lock —
/// this type itself is deliberately `&mut self` single-writer.
#[derive(Debug)]
pub struct ShardedWal {
    config: WalConfig,
    shards: Vec<ShardState>,
    /// Next sequence number to assign (1-based).
    next_seq: u64,
    /// Total records appended or recovered.
    records_total: u64,
}

/// Which shard a vote lands in: FNV-1a of the example id, mod shard count.
/// The non-zero type makes the modulo well-defined without a runtime mask.
pub fn shard_of(example: u64, shards: NonZeroU32) -> u32 {
    (fnv1a(&example.to_le_bytes()) % u64::from(shards.get())) as u32
}

impl ShardedWal {
    /// Opens (creating if needed) a WAL directory, replaying and repairing
    /// every shard. Returns the WAL positioned for appends plus everything
    /// the replay recovered.
    pub fn open(config: WalConfig) -> Result<(ShardedWal, WalReplay)> {
        fs::create_dir_all(&config.dir)
            .map_err(|e| LabelError::io(&config.dir, "create dir", e))?;
        let replay = replay_dir(&config, true)?;
        let mut shards = Vec::with_capacity(config.shards.get() as usize);
        for shard in 0..config.shards.get() {
            let segs = list_segments(&config, shard)?;
            match segs.last() {
                Some(&(segment, _)) => {
                    let records = count_records(&config.segment_path(shard, segment))?;
                    shards.push(ShardState {
                        active_segment: Some(segment),
                        active_records: records,
                    });
                }
                None => shards.push(ShardState {
                    active_segment: None,
                    active_records: 0,
                }),
            }
        }
        let wal = ShardedWal {
            shards,
            next_seq: replay.high_water + 1,
            records_total: replay.records.len() as u64,
            config,
        };
        Ok((wal, replay))
    }

    /// The WAL shape.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Largest sequence number acked so far (0 when empty).
    pub fn high_water(&self) -> u64 {
        self.next_seq - 1
    }

    /// Total records appended or recovered over this WAL's lifetime.
    pub fn records_total(&self) -> u64 {
        self.records_total
    }

    /// Raises the next sequence number to at least `floor_seq + 1`. Called
    /// after a compacted open: the deleted segments' sequence range lives on
    /// only in the confidence snapshot, so the replayed high-water mark can
    /// undercount and fresh appends must never reuse a compacted sequence.
    pub fn raise_seq_floor(&mut self, floor_seq: u64) {
        self.next_seq = self.next_seq.max(floor_seq + 1);
    }

    /// Assigns the next sequence number and durably appends the vote: the
    /// record line is written and fsynced before this returns, so an acked
    /// vote survives `kill -9`. Rotation seals the outgoing segment with an
    /// atomic rewrite first.
    pub fn append(&mut self, vote: Vote) -> Result<VoteRecord> {
        let shard = shard_of(vote.example, self.config.shards);
        let seq = self.next_seq;
        let record = VoteRecord {
            seq,
            example: vote.example,
            worker: vote.worker,
            label: vote.label,
            session: vote.session,
            request: vote.request,
        };

        let state =
            self.shards
                .get(shard as usize)
                .cloned()
                .ok_or_else(|| LabelError::Corrupt {
                    reason: format!("shard {shard} out of range"),
                })?;
        let (segment, records_in) = match state.active_segment {
            Some(seg) if state.active_records >= self.config.segment_records.get() => {
                self.seal_segment(shard, seg)?;
                let next = seg + 1;
                self.create_segment(shard, next, seq)?;
                (next, 0)
            }
            Some(seg) => (seg, state.active_records),
            None => {
                self.create_segment(shard, 0, seq)?;
                (0, 0)
            }
        };

        let json = serde_json::to_string(&record).map_err(|e| LabelError::Corrupt {
            reason: format!("vote record serialization failed: {e}"),
        })?;
        let line = format!("{:016x} {json}\n", fnv1a(json.as_bytes()));
        let path = self.config.segment_path(shard, segment);
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| LabelError::io(&path, "append open", e))?;
        file.write_all(line.as_bytes())
            .map_err(|e| LabelError::io(&path, "append", e))?;
        // Durable-before-acked: the caller only tracks (and responds to) the
        // vote after this fsync, so replay-after-crash is always a superset
        // of the acked confidence state.
        file.sync_data()
            .map_err(|e| LabelError::io(&path, "fsync", e))?;

        if let Some(state) = self.shards.get_mut(shard as usize) {
            state.active_segment = Some(segment);
            state.active_records = records_in + 1;
        }
        self.next_seq += 1;
        self.records_total += 1;
        Ok(record)
    }

    /// Writes a fresh unsealed segment file containing only its header.
    fn create_segment(&self, shard: u32, segment: u64, base_seq: u64) -> Result<()> {
        let header = SegmentHeader {
            magic: WAL_MAGIC.to_string(),
            version: WAL_VERSION,
            shard,
            segment,
            base_seq,
            sealed: false,
            records: 0,
            payload_fnv1a: 0,
        };
        let path = self.config.segment_path(shard, segment);
        let bytes = header_line(&header)?;
        atomic_write(&path, bytes.as_bytes()).map_err(|e| LabelError::io(&path, "create", e))
    }

    /// Seals a full segment: atomically rewrites it with `sealed: true`, the
    /// final record count, and a whole-payload checksum.
    fn seal_segment(&self, shard: u32, segment: u64) -> Result<()> {
        let path = self.config.segment_path(shard, segment);
        let bytes = fs::read(&path).map_err(|e| LabelError::io(&path, "read", e))?;
        let (header_str, payload) = split_envelope(&bytes).map_err(|e| LabelError::Corrupt {
            reason: format!("sealing {}: {e}", path.display()),
        })?;
        let mut header: SegmentHeader =
            serde_json::from_str(header_str).map_err(|e| LabelError::Corrupt {
                reason: format!("sealing {}: bad header: {e}", path.display()),
            })?;
        header.sealed = true;
        header.records = payload_line_count(payload);
        header.payload_fnv1a = fnv1a(payload);
        let mut out = header_line(&header)?.into_bytes();
        out.extend_from_slice(payload);
        atomic_write(&path, &out).map_err(|e| LabelError::io(&path, "seal", e))
    }
}

fn header_line(header: &SegmentHeader) -> Result<String> {
    let json = serde_json::to_string(header).map_err(|e| LabelError::Corrupt {
        reason: format!("segment header serialization failed: {e}"),
    })?;
    Ok(format!("{json}\n"))
}

fn payload_line_count(payload: &[u8]) -> u64 {
    payload.iter().filter(|&&b| b == b'\n').count() as u64
}

/// Replays the whole WAL directory **without repairing anything**. Safe to
/// run concurrently with a live appender: segments are append-only, so every
/// record below an already-observed high-water mark is immutable, and a torn
/// in-flight tail merely ends the scan of its shard.
pub fn replay_read_only(config: &WalConfig) -> Result<WalReplay> {
    replay_dir(config, false)
}

/// Scans all shards, optionally repairing (truncate + quarantine) in place.
fn replay_dir(config: &WalConfig, repair: bool) -> Result<WalReplay> {
    let mut replay = WalReplay::default();
    let mut merged: std::collections::BTreeMap<u64, VoteRecord> = std::collections::BTreeMap::new();
    for shard in 0..config.shards.get() {
        let shard_records = replay_shard(config, shard, repair, &mut replay)?;
        for rec in shard_records {
            if let Some(previous) = merged.insert(rec.seq, rec) {
                return Err(LabelError::Corrupt {
                    reason: format!(
                        "sequence {} recovered twice (examples {} and {}): cross-shard \
                         seq assignment must be unique",
                        rec.seq, previous.example, rec.example
                    ),
                });
            }
        }
    }
    replay.high_water = merged.keys().next_back().copied().unwrap_or(0);
    replay.records = merged.into_values().collect();
    Ok(replay)
}

/// Replays one shard's segment chain in order, stopping (and in repair mode
/// truncating + quarantining) at the first bad record.
fn replay_shard(
    config: &WalConfig,
    shard: u32,
    repair: bool,
    replay: &mut WalReplay,
) -> Result<Vec<VoteRecord>> {
    let segments = list_segments(config, shard)?;
    let mut records: Vec<VoteRecord> = Vec::new();
    let mut last_seq: u64 = 0;
    let mut expected_segment: Option<u64> = None;
    for (idx, &(segment, ref path)) in segments.iter().enumerate() {
        if let Some(expected) = expected_segment {
            if segment != expected {
                replay.corruptions.push(Corruption {
                    shard,
                    segment,
                    file: path.display().to_string(),
                    record_index: 0,
                    kind: CorruptionKind::MissingSegment,
                    detail: format!("expected segment {expected}, found {segment}"),
                    dropped_records: 0,
                });
                if repair {
                    quarantine(shard, &segments[idx..], replay)?;
                }
                return Ok(records);
            }
        }
        expected_segment = Some(segment + 1);
        replay.segments_read += 1;

        let scan = scan_segment(path, shard, segment, last_seq)?;
        records.extend(scan.records.iter().copied());
        if let Some(last) = scan.records.last() {
            last_seq = last.seq;
        }
        if let Some(corruption) = scan.corruption {
            replay.dropped_records += corruption.dropped_records;
            replay.corruptions.push(corruption.clone());
            if repair {
                match corruption.kind {
                    // Metadata-only fault with every record line verified:
                    // re-seal with corrected metadata, keep scanning.
                    CorruptionKind::SealedMetadataMismatch => {
                        rewrite_segment(path, shard, segment, &scan.records, true)?;
                        continue;
                    }
                    _ => {
                        // Truncate this segment to its good prefix and drop
                        // everything after it in this shard.
                        rewrite_segment(path, shard, segment, &scan.records, false)?;
                        quarantine(shard, &segments[idx + 1..], replay)?;
                        return Ok(records);
                    }
                }
            } else {
                match corruption.kind {
                    CorruptionKind::SealedMetadataMismatch => continue,
                    _ => return Ok(records),
                }
            }
        }
    }
    Ok(records)
}

/// Result of scanning one segment file: the verified record prefix and the
/// first fault, if any.
struct SegmentScan {
    records: Vec<VoteRecord>,
    corruption: Option<Corruption>,
}

fn scan_segment(path: &Path, shard: u32, segment: u64, mut last_seq: u64) -> Result<SegmentScan> {
    let bytes = fs::read(path).map_err(|e| LabelError::io(path, "read", e))?;
    let fault = |index: u64, kind: CorruptionKind, detail: String, dropped: u64| Corruption {
        shard,
        segment,
        file: path.display().to_string(),
        record_index: index,
        kind,
        detail,
        dropped_records: dropped,
    };

    let (header_str, payload) = match split_envelope(&bytes) {
        Ok(parts) => parts,
        Err(e) => {
            return Ok(SegmentScan {
                records: Vec::new(),
                corruption: Some(fault(0, CorruptionKind::BadHeader, e.to_string(), 0)),
            })
        }
    };
    let header: SegmentHeader = match serde_json::from_str(header_str) {
        Ok(h) => h,
        Err(e) => {
            return Ok(SegmentScan {
                records: Vec::new(),
                corruption: Some(fault(
                    0,
                    CorruptionKind::BadHeader,
                    format!("unparseable header: {e}"),
                    payload_line_count(payload),
                )),
            })
        }
    };
    if header.magic != WAL_MAGIC
        || header.version != WAL_VERSION
        || header.shard != shard
        || header.segment != segment
    {
        return Ok(SegmentScan {
            records: Vec::new(),
            corruption: Some(fault(
                0,
                CorruptionKind::BadHeader,
                format!(
                    "header ({}/{}/shard {}/seg {}) disagrees with file {}",
                    header.magic,
                    header.version,
                    header.shard,
                    header.segment,
                    path.display()
                ),
                payload_line_count(payload),
            )),
        });
    }

    let mut records: Vec<VoteRecord> = Vec::new();
    let mut offset = 0usize;
    let mut index = 0u64;
    while offset < payload.len() {
        let rest = &payload[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            // No trailing newline: a torn in-flight append.
            return Ok(SegmentScan {
                records,
                corruption: Some(fault(
                    index,
                    CorruptionKind::TornTail,
                    format!("{} trailing bytes with no newline", rest.len()),
                    1,
                )),
            });
        };
        let line = &rest[..nl];
        let remaining_lines = payload_line_count(&payload[offset..]);
        match parse_record_line(line) {
            Ok(rec) => {
                if rec.seq <= last_seq {
                    return Ok(SegmentScan {
                        records,
                        corruption: Some(fault(
                            index,
                            CorruptionKind::NonMonotoneSeq,
                            format!("seq {} after {}", rec.seq, last_seq),
                            remaining_lines,
                        )),
                    });
                }
                last_seq = rec.seq;
                records.push(rec);
            }
            Err((kind, detail)) => {
                return Ok(SegmentScan {
                    records,
                    corruption: Some(fault(index, kind, detail, remaining_lines)),
                });
            }
        }
        offset += nl + 1;
        index += 1;
    }

    if header.sealed {
        let count = records.len() as u64;
        if header.records != count || header.payload_fnv1a != fnv1a(payload) {
            return Ok(SegmentScan {
                records,
                corruption: Some(fault(
                    0,
                    CorruptionKind::SealedMetadataMismatch,
                    format!(
                        "sealed header claims {} records / checksum {:016x}, payload has {}",
                        header.records, header.payload_fnv1a, count
                    ),
                    0,
                )),
            });
        }
    }
    Ok(SegmentScan {
        records,
        corruption: None,
    })
}

/// Parses one `"<fnv1a-hex> <json>"` record line.
fn parse_record_line(line: &[u8]) -> std::result::Result<VoteRecord, (CorruptionKind, String)> {
    let text = std::str::from_utf8(line)
        .map_err(|_| (CorruptionKind::MalformedRecord, "not UTF-8".to_string()))?;
    let Some((hex, json)) = text.split_once(' ') else {
        return Err((
            CorruptionKind::MalformedRecord,
            "no checksum separator".to_string(),
        ));
    };
    let expected = u64::from_str_radix(hex, 16).map_err(|_| {
        (
            CorruptionKind::MalformedRecord,
            format!("bad checksum literal {hex:?}"),
        )
    })?;
    let actual = fnv1a(json.as_bytes());
    if expected != actual {
        return Err((
            CorruptionKind::ChecksumMismatch,
            format!("expected {expected:016x}, computed {actual:016x}"),
        ));
    }
    serde_json::from_str::<VoteRecord>(json)
        .map_err(|e| (CorruptionKind::MalformedRecord, format!("bad record: {e}")))
}

/// Atomically rewrites a segment as header + the given verified records.
fn rewrite_segment(
    path: &Path,
    shard: u32,
    segment: u64,
    records: &[VoteRecord],
    sealed: bool,
) -> Result<()> {
    let mut payload = String::new();
    for rec in records {
        let json = serde_json::to_string(rec).map_err(|e| LabelError::Corrupt {
            reason: format!("vote record serialization failed: {e}"),
        })?;
        payload.push_str(&format!("{:016x} {json}\n", fnv1a(json.as_bytes())));
    }
    let header = SegmentHeader {
        magic: WAL_MAGIC.to_string(),
        version: WAL_VERSION,
        shard,
        segment,
        base_seq: records.first().map(|r| r.seq).unwrap_or(0),
        sealed,
        records: if sealed { records.len() as u64 } else { 0 },
        payload_fnv1a: if sealed { fnv1a(payload.as_bytes()) } else { 0 },
    };
    let mut out = header_line(&header)?.into_bytes();
    out.extend_from_slice(payload.as_bytes());
    atomic_write(path, &out).map_err(|e| LabelError::io(path, "rewrite", e))
}

/// Renames dropped segments out of the chain so replay never resurrects
/// records past a truncation point.
fn quarantine(shard: u32, segments: &[(u64, PathBuf)], replay: &mut WalReplay) -> Result<()> {
    for (segment, path) in segments {
        let dropped = count_records(path).unwrap_or(0);
        replay.dropped_records += dropped;
        let mut target = path.clone().into_os_string();
        target.push(".");
        target.push(QUARANTINE_SUFFIX);
        fs::rename(path, &target).map_err(|e| LabelError::io(path, "quarantine", e))?;
        replay.corruptions.push(Corruption {
            shard,
            segment: *segment,
            file: path.display().to_string(),
            record_index: 0,
            kind: CorruptionKind::Quarantined,
            detail: format!("quarantined after upstream truncation ({dropped} records)"),
            dropped_records: dropped,
        });
    }
    Ok(())
}

/// Record-line count of a segment file (0 on any read problem).
fn count_records(path: &Path) -> Result<u64> {
    let bytes = fs::read(path).map_err(|e| LabelError::io(path, "read", e))?;
    match split_envelope(&bytes) {
        Ok((_, payload)) => Ok(payload_line_count(payload)),
        Err(_) => Ok(0),
    }
}

/// One sealed segment whose records all sit at or below a compaction target.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactableSegment {
    pub shard: u32,
    pub segment: u64,
    pub path: PathBuf,
    /// Verified record-line count.
    pub records: u64,
    /// On-disk size in bytes.
    pub bytes: u64,
}

/// Finds the segments a compaction at `target_seq` may delete: per shard, the
/// longest *prefix* of the segment chain in which every segment is sealed,
/// verifies cleanly, and contains only records with `seq <= target_seq`.
///
/// The prefix rule is what keeps an interrupted deletion recoverable: covered
/// segments are removed in ascending order, so a crash part-way leaves each
/// shard's chain with (at most) a leading gap — which replay treats as an
/// already-compacted prefix, never as a [`CorruptionKind::MissingSegment`]
/// mid-chain fault. Any corruption stops the prefix for that shard;
/// compaction never repairs, that stays [`ShardedWal::open`]'s job.
pub fn compactable_segments(
    config: &WalConfig,
    target_seq: u64,
) -> Result<Vec<CompactableSegment>> {
    let mut out = Vec::new();
    for shard in 0..config.shards.get() {
        let segments = list_segments(config, shard)?;
        let mut last_seq = 0u64;
        let mut expected: Option<u64> = None;
        for &(segment, ref path) in &segments {
            if expected.is_some_and(|e| segment != e) {
                break; // mid-chain gap: leave it for open()'s repair
            }
            expected = Some(segment + 1);
            let bytes = fs::metadata(path)
                .map_err(|e| LabelError::io(path, "stat", e))?
                .len();
            let raw = fs::read(path).map_err(|e| LabelError::io(path, "read", e))?;
            let Ok((header_str, _)) = split_envelope(&raw) else {
                break;
            };
            let Ok(header) = serde_json::from_str::<SegmentHeader>(header_str) else {
                break;
            };
            if !header.sealed {
                break;
            }
            let scan = scan_segment(path, shard, segment, last_seq)?;
            if scan.corruption.is_some() {
                break;
            }
            if let Some(last) = scan.records.last() {
                last_seq = last.seq;
            }
            if last_seq > target_seq {
                break;
            }
            out.push(CompactableSegment {
                shard,
                segment,
                path: path.clone(),
                records: scan.records.len() as u64,
                bytes,
            });
        }
    }
    Ok(out)
}

/// Total on-disk bytes of the WAL's live (non-quarantined) segment files.
pub fn wal_dir_bytes(config: &WalConfig) -> Result<u64> {
    let mut total = 0u64;
    for shard in 0..config.shards.get() {
        for (_, path) in list_segments(config, shard)? {
            total += fs::metadata(&path)
                .map_err(|e| LabelError::io(&path, "stat", e))?
                .len();
        }
    }
    Ok(total)
}

/// Lists a shard's segment files sorted by segment index.
fn list_segments(config: &WalConfig, shard: u32) -> Result<Vec<(u64, PathBuf)>> {
    let prefix = format!("shard{shard:04}-seg");
    let mut out: Vec<(u64, PathBuf)> = Vec::new();
    let entries =
        fs::read_dir(&config.dir).map_err(|e| LabelError::io(&config.dir, "read dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| LabelError::io(&config.dir, "read dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else {
            continue;
        };
        let Some(index_str) = rest.strip_suffix(".rllwal") else {
            continue;
        };
        let Ok(index) = index_str.parse::<u64>() else {
            continue;
        };
        out.push((index, entry.path()));
    }
    out.sort_by_key(|&(index, _)| index);
    Ok(out)
}
