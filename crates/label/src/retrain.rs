//! The incremental retrain → publish loop.
//!
//! A background thread watches the WAL high-water mark; once enough new
//! votes accumulate it folds them into the base dataset, retrains the
//! pipeline (checkpointing `.rllstate` snapshots on a cadence), evaluates
//! against expert labels when available, and hands the fitted pipeline to a
//! [`PublishSink`] — in the serving binary, that writes an atomic `.rllckpt`
//! and hot-swaps it through `POST /reload`.
//!
//! ## Crash contract
//!
//! Before training, the round writes a *manifest* (atomic) recording the
//! round number, the folded high-water sequence, and the round seed. On
//! restart an incomplete manifest is recovered: the WAL is re-read up to the
//! manifest's sequence (read-only — appends may already be flowing), the
//! fold is rebuilt deterministically, and training resumes from the latest
//! `.rllstate` via `resume_fit` (bitwise-identical to the uninterrupted
//! round) — or reruns from scratch with the manifest's seed when no usable
//! snapshot exists. Either way the published model is a pure function of
//! (base dataset, votes ≤ folded_seq, seed).
//!
//! ## Locks
//!
//! The retrainer owns one lock: `retrain` (rank **80**), guarding its
//! status. It is the top of the ladder — the loop never holds it across
//! calls into the store (`votes`, rank 70) or the training stack.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rll_core::{pipeline::score_predictions, CheckpointPolicy, RllConfig, RllPipeline, TrainState};
use rll_crowd::AnnotationMatrix;
use rll_obs::{EventKind, Recorder, RetrainRoundStats, Stopwatch};
use rll_par::OrderedMutex;
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::error::{LabelError, Result};
use crate::store::LabelStore;

/// Schema tag of the round manifest file.
pub const MANIFEST_SCHEMA: &str = "retrain_manifest/v1";

/// Durable record of a retrain round, written (atomically) *before*
/// training starts and marked complete after publish.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainManifest {
    /// Always [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// 1-based round counter.
    pub round: u64,
    /// WAL high-water sequence folded into the round's dataset.
    pub folded_seq: u64,
    /// Seed the round trains with (derived deterministically from the base
    /// seed and round number).
    pub seed: u64,
    /// `false` from fold until successful publish.
    pub complete: bool,
}

/// Static retrain policy.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Training hyperparameters for every round.
    pub train: RllConfig,
    /// Base seed; round `r` trains with a seed derived from `(base_seed, r)`.
    pub base_seed: u64,
    /// New votes (by sequence distance) required to trigger a round.
    pub min_new_votes: u64,
    /// How often the loop re-checks the high-water mark.
    pub poll_interval: Duration,
    /// Where rounds checkpoint their `.rllstate` snapshots.
    pub state_path: PathBuf,
    /// Where the round manifest lives.
    pub manifest_path: PathBuf,
    /// Checkpoint cadence in epochs.
    pub snapshot_every_epochs: usize,
    /// Trainer thread override (`None` inherits `RLL_THREADS`).
    pub threads: Option<usize>,
}

/// The frozen training substrate votes are folded into.
#[derive(Debug, Clone)]
pub struct RetrainBase {
    /// Raw (unnormalized) features, one row per example.
    pub features: Matrix,
    /// Offline crowd annotations; live votes append worker columns.
    pub annotations: AnnotationMatrix,
    /// Expert labels for the round eval metric, when available.
    pub expert_labels: Option<Vec<u8>>,
}

/// Where a round's fitted pipeline goes. The serving binary's sink writes an
/// atomic checkpoint and POSTs `/reload` over loopback.
pub trait PublishSink: Send {
    /// Publishes one round's pipeline. An `Err` fails the round (the
    /// manifest stays incomplete, so restart retries it).
    fn publish(&mut self, pipeline: &RllPipeline, round: u64) -> std::result::Result<(), String>;
}

/// Observable state of the retrainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainStatus {
    /// Completed (published) rounds.
    pub rounds_completed: u64,
    /// High-water sequence of the last completed round.
    pub last_folded_seq: u64,
    /// Vote cells folded in the last completed round.
    pub votes_last_round: u64,
    /// Eval accuracy of the last completed round (`-1` before the first, or
    /// when no expert labels are configured).
    pub last_accuracy: f64,
    /// Whether a round is currently training.
    pub in_progress: bool,
    /// Last round failure, if any (cleared by the next success).
    pub last_error: Option<String>,
}

impl Default for RetrainStatus {
    fn default() -> Self {
        RetrainStatus {
            rounds_completed: 0,
            last_folded_seq: 0,
            votes_last_round: 0,
            last_accuracy: -1.0,
            in_progress: false,
            last_error: None,
        }
    }
}

/// Shared status handle, readable from the serving layer (`/metrics`, the
/// labels routes) while the loop trains.
#[derive(Debug)]
pub struct RetrainShared {
    retrain: OrderedMutex<RetrainStatus>,
}

impl RetrainShared {
    fn new() -> Self {
        RetrainShared {
            retrain: OrderedMutex::new("retrain", 80, RetrainStatus::default()),
        }
    }

    /// A copy of the current status.
    pub fn status(&self) -> RetrainStatus {
        self.retrain.lock().clone()
    }

    fn update(&self, f: impl FnOnce(&mut RetrainStatus)) {
        f(&mut self.retrain.lock());
    }
}

/// Handle to the background retrain loop; join with [`Retrainer::stop`].
pub struct Retrainer {
    shutdown: Arc<AtomicBool>,
    shared: Arc<RetrainShared>,
    handle: Option<JoinHandle<()>>,
}

impl Retrainer {
    /// Recovers any interrupted round, then starts the watch loop.
    pub fn start(
        store: Arc<LabelStore>,
        base: RetrainBase,
        config: RetrainConfig,
        recorder: Recorder,
        publish: Box<dyn PublishSink>,
    ) -> Result<Retrainer> {
        if config.min_new_votes == 0 {
            return Err(LabelError::InvalidConfig {
                reason: "retrain min_new_votes must be >= 1".into(),
            });
        }
        if base.features.rows() != base.annotations.num_items() {
            return Err(LabelError::InvalidConfig {
                reason: format!(
                    "{} feature rows for {} annotated items",
                    base.features.rows(),
                    base.annotations.num_items()
                ),
            });
        }
        if let Some(expert) = &base.expert_labels {
            if expert.len() != base.features.rows() {
                return Err(LabelError::InvalidConfig {
                    reason: format!(
                        "{} expert labels for {} rows",
                        expert.len(),
                        base.features.rows()
                    ),
                });
            }
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(RetrainShared::new());
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rll-retrain".into())
            .spawn(move || {
                run_loop(
                    store,
                    base,
                    config,
                    recorder,
                    publish,
                    loop_shared,
                    loop_shutdown,
                );
            })
            .map_err(|e| LabelError::Train {
                reason: format!("retrainer thread spawn failed: {e}"),
            })?;
        Ok(Retrainer {
            shutdown,
            shared,
            handle: Some(handle),
        })
    }

    /// The shareable status handle.
    pub fn shared(&self) -> Arc<RetrainShared> {
        Arc::clone(&self.shared)
    }

    /// Signals the loop and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Retrainer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Deterministic per-round seed.
fn round_seed(base_seed: u64, round: u64) -> u64 {
    base_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn run_loop(
    store: Arc<LabelStore>,
    base: RetrainBase,
    config: RetrainConfig,
    recorder: Recorder,
    mut publish: Box<dyn PublishSink>,
    shared: Arc<RetrainShared>,
    shutdown: Arc<AtomicBool>,
) {
    if let Err(e) = recover(&store, &base, &config, &recorder, &mut publish, &shared) {
        shared.update(|s| s.last_error = Some(e.to_string()));
        recorder.note(format!("retrain recovery failed: {e}"));
    }
    while !shutdown.load(Ordering::SeqCst) {
        match run_if_due(&store, &base, &config, &recorder, &mut publish, &shared) {
            Ok(ran) => {
                if !ran {
                    sleep_interruptibly(&shutdown, config.poll_interval);
                }
            }
            Err(e) => {
                shared.update(|s| {
                    s.in_progress = false;
                    s.last_error = Some(e.to_string());
                });
                recorder.note(format!("retrain round failed: {e}"));
                sleep_interruptibly(&shutdown, config.poll_interval);
            }
        }
    }
}

fn sleep_interruptibly(shutdown: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut slept = Duration::ZERO;
    while slept < total && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice.min(total - slept));
        slept += slice;
    }
}

/// Finishes an interrupted round left behind by a crash, if any.
fn recover(
    store: &LabelStore,
    base: &RetrainBase,
    config: &RetrainConfig,
    recorder: &Recorder,
    publish: &mut Box<dyn PublishSink>,
    shared: &RetrainShared,
) -> Result<()> {
    let Some(manifest) = read_manifest(&config.manifest_path)? else {
        return Ok(());
    };
    if manifest.complete {
        shared.update(|s| {
            s.rounds_completed = manifest.round;
            s.last_folded_seq = manifest.folded_seq;
        });
        return Ok(());
    }
    // Interrupted mid-round: rebuild the exact fold from the WAL (read-only,
    // filtered to the manifest's sequence) and finish the round.
    let tracker = store.replay_up_to(manifest.folded_seq)?;
    let folded = tracker.fold_into(&base.annotations, store.config().max_workers)?;
    let votes = tracker.vote_cells();
    // A usable snapshot lets the round resume bitwise-identically; without
    // one the round reruns in full with the manifest's seed — same output
    // either way.
    let state = TrainState::load(&config.state_path).ok();
    shared.update(|s| {
        s.rounds_completed = manifest.round.saturating_sub(1);
        s.in_progress = true;
    });
    let outcome = run_round(base, config, recorder, publish, &manifest, folded, state);
    finish_round(config, recorder, shared, &manifest, votes, outcome)
}

/// Runs one round if enough votes accumulated. Returns whether it ran.
fn run_if_due(
    store: &LabelStore,
    base: &RetrainBase,
    config: &RetrainConfig,
    recorder: &Recorder,
    publish: &mut Box<dyn PublishSink>,
    shared: &RetrainShared,
) -> Result<bool> {
    let status = shared.status();
    let high_water = store.high_water();
    if high_water.saturating_sub(status.last_folded_seq) < config.min_new_votes {
        return Ok(false);
    }
    let (folded, folded_seq, votes) = store.fold_current(&base.annotations)?;
    let manifest = RetrainManifest {
        schema: MANIFEST_SCHEMA.to_string(),
        round: status.rounds_completed + 1,
        folded_seq,
        seed: round_seed(config.base_seed, status.rounds_completed + 1),
        complete: false,
    };
    write_manifest(&config.manifest_path, &manifest)?;
    shared.update(|s| s.in_progress = true);
    let outcome = run_round(base, config, recorder, publish, &manifest, folded, None);
    finish_round(config, recorder, shared, &manifest, votes, outcome)?;
    store.publish_gauges()?;
    Ok(true)
}

/// Trains, evaluates, and publishes one round. Returns
/// `(accuracy, resumed, wall_secs)`.
#[allow(clippy::too_many_arguments)]
fn run_round(
    base: &RetrainBase,
    config: &RetrainConfig,
    recorder: &Recorder,
    publish: &mut Box<dyn PublishSink>,
    manifest: &RetrainManifest,
    folded: AnnotationMatrix,
    state: Option<TrainState>,
) -> Result<(f64, bool, f64)> {
    let clock = Stopwatch::start();
    let policy = CheckpointPolicy::every(&config.state_path, config.snapshot_every_epochs)
        .map_err(|e| LabelError::Train {
            reason: e.to_string(),
        })?;
    let mut pipeline = RllPipeline::new(config.train.clone())
        .with_recorder(recorder.clone())
        .with_checkpoint_policy(policy);
    if let Some(threads) = config.threads {
        pipeline = pipeline.with_threads(threads);
    }
    let resumed = state.is_some();
    let fit_result = match state {
        Some(state) => pipeline.resume_fit(&base.features, &folded, state),
        None => pipeline.fit(&base.features, &folded, manifest.seed),
    };
    fit_result.map_err(|e| LabelError::Train {
        reason: format!("round {}: {e}", manifest.round),
    })?;

    let accuracy = match &base.expert_labels {
        Some(expert) => {
            let predictions = pipeline
                .predict(&base.features)
                .map_err(|e| LabelError::Train {
                    reason: format!("round {} eval: {e}", manifest.round),
                })?;
            score_predictions(&predictions, expert)
                .map_err(|e| LabelError::Train {
                    reason: format!("round {} eval: {e}", manifest.round),
                })?
                .accuracy
        }
        None => -1.0,
    };

    publish
        .publish(&pipeline, manifest.round)
        .map_err(|reason| LabelError::Publish { reason })?;
    Ok((accuracy, resumed, clock.elapsed_secs()))
}

/// Marks the manifest complete, updates status, emits the round event.
fn finish_round(
    config: &RetrainConfig,
    recorder: &Recorder,
    shared: &RetrainShared,
    manifest: &RetrainManifest,
    votes: u64,
    outcome: Result<(f64, bool, f64)>,
) -> Result<()> {
    let (accuracy, resumed, wall_secs) = match outcome {
        Ok(v) => v,
        Err(e) => {
            shared.update(|s| s.in_progress = false);
            return Err(e);
        }
    };
    let completed = RetrainManifest {
        complete: true,
        ..manifest.clone()
    };
    write_manifest(&config.manifest_path, &completed)?;
    shared.update(|s| {
        s.rounds_completed = manifest.round;
        s.last_folded_seq = manifest.folded_seq;
        s.votes_last_round = votes;
        s.last_accuracy = accuracy;
        s.in_progress = false;
        s.last_error = None;
    });
    recorder.emit(EventKind::RetrainRound(RetrainRoundStats {
        round: manifest.round,
        folded_seq: manifest.folded_seq,
        votes_folded: votes,
        resumed,
        epochs: config.train.epochs,
        accuracy,
        wall_secs,
    }));
    let metrics = recorder.metrics();
    metrics.counter("label.retrain.rounds").inc();
    metrics
        .gauge("label.retrain.folded_seq")
        .set(manifest.folded_seq as f64);
    if accuracy.is_finite() && accuracy >= 0.0 {
        metrics.gauge("label.retrain.accuracy").set(accuracy);
    }
    Ok(())
}

/// Reads the manifest, or `None` when it does not exist yet.
pub fn read_manifest(path: &std::path::Path) -> Result<Option<RetrainManifest>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LabelError::io(path, "read", e)),
    };
    let manifest: RetrainManifest =
        serde_json::from_str(&text).map_err(|e| LabelError::Corrupt {
            reason: format!("unparseable retrain manifest {}: {e}", path.display()),
        })?;
    if manifest.schema != MANIFEST_SCHEMA {
        return Err(LabelError::Corrupt {
            reason: format!(
                "retrain manifest {} has schema {:?}, expected {MANIFEST_SCHEMA:?}",
                path.display(),
                manifest.schema
            ),
        });
    }
    Ok(Some(manifest))
}

/// Atomically writes the manifest.
pub fn write_manifest(path: &std::path::Path, manifest: &RetrainManifest) -> Result<()> {
    let json = serde_json::to_string(manifest).map_err(|e| LabelError::Corrupt {
        reason: format!("manifest serialization failed: {e}"),
    })?;
    rll_core::snapshot::atomic_write(path, json.as_bytes())
        .map_err(|e| LabelError::io(path, "write", e))
}
