//! The incremental retrain → publish loop.
//!
//! A background thread watches the WAL high-water mark; once enough new
//! votes accumulate it folds them into the base dataset, retrains the
//! pipeline (checkpointing `.rllstate` snapshots on a cadence), evaluates
//! against expert labels when available, and hands the fitted pipeline to a
//! [`PublishSink`] — in the serving binary, that writes an atomic `.rllckpt`
//! and hot-swaps it through `POST /reload`.
//!
//! ## Crash contract
//!
//! Before training, the round writes a *manifest* (atomic) recording the
//! round number, the folded high-water sequence, and the round seed. On
//! restart an incomplete manifest is recovered: the WAL is re-read up to the
//! manifest's sequence (read-only — appends may already be flowing), the
//! fold is rebuilt deterministically, and training resumes from the latest
//! `.rllstate` via `resume_fit` (bitwise-identical to the uninterrupted
//! round) — or reruns from scratch with the manifest's seed when no usable
//! snapshot exists. Either way the published model is a pure function of
//! (base dataset, votes ≤ folded_seq, seed).
//!
//! ## Triggers and worker weighting
//!
//! Rounds fire on a [`RetrainTrigger`]: either the legacy fixed vote count,
//! or (the default in the serving binary) a **drift** trigger that watches
//! how far the live confidence field has moved since the last fold — total
//! absolute confidence drift, plus a disagreement score (how close voted
//! examples sit to δ = ½). Votes that merely re-confirm settled examples no
//! longer force a round; votes that flip or contest labels do.
//!
//! When [`RetrainConfig::weighting`] is set, each round first fits a
//! Dawid–Skene model over the live votes alone and derives per-worker
//! quality ([`rll_crowd::worker_qualities`]); live annotators whose fitted
//! confusion rows carry no signal (informativeness below the spam
//! threshold) are excluded from the fold. The exclusion list is pinned in
//! the round manifest so crash recovery rebuilds the exact same fold.
//!
//! ## Locks
//!
//! The retrainer owns one lock: `retrain` (rank **80**), guarding its
//! status. The loop never holds it across calls into the store (`votes`,
//! rank 70; `compact`, rank 90) or the training stack.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rll_core::{pipeline::score_predictions, CheckpointPolicy, RllConfig, RllPipeline, TrainState};
use rll_crowd::{AnnotationMatrix, ConfidenceEstimator};
use rll_obs::{EventKind, Recorder, RetrainRoundStats, Stopwatch};
use rll_par::OrderedMutex;
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::confidence::ConfidenceTracker;
use crate::error::{LabelError, Result};
use crate::store::LabelStore;

/// Schema tag of the round manifest file.
pub const MANIFEST_SCHEMA: &str = "retrain_manifest/v1";

/// Durable record of a retrain round, written (atomically) *before*
/// training starts and marked complete after publish.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainManifest {
    /// Always [`MANIFEST_SCHEMA`].
    pub schema: String,
    /// 1-based round counter.
    pub round: u64,
    /// WAL high-water sequence folded into the round's dataset.
    pub folded_seq: u64,
    /// Seed the round trains with (derived deterministically from the base
    /// seed and round number).
    pub seed: u64,
    /// `false` from fold until successful publish.
    pub complete: bool,
    /// Live workers excluded from the fold by quality weighting, pinned
    /// here so crash recovery rebuilds the identical fold. `None` (absent)
    /// in manifests written before weighting existed.
    pub excluded_workers: Option<Vec<u32>>,
    /// What fired the round (`"votes"`, `"drift"`, `"disagreement"`).
    pub trigger: Option<String>,
}

impl RetrainManifest {
    /// The pinned exclusion list (empty for pre-weighting manifests).
    pub fn excluded(&self) -> &[u32] {
        self.excluded_workers.as_deref().unwrap_or(&[])
    }
}

/// When a retrain round fires.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrainTrigger {
    /// Fixed sequence-distance trigger: fire once `min_new_votes` new votes
    /// accumulate, regardless of what they say.
    Votes {
        /// New votes (by sequence distance) required to trigger a round.
        min_new_votes: u64,
    },
    /// Confidence-drift trigger: fire only when the live confidence field
    /// moved or is contested, with `min_new_votes` as a floor so a single
    /// flip cannot thrash the trainer.
    Drift {
        /// Minimum new votes before the drift scores are even consulted.
        min_new_votes: u64,
        /// Fire when the summed |δ_now − δ_last_fold| across examples
        /// (unseen examples count from the estimator's prior mean) reaches
        /// this.
        drift_threshold: f64,
        /// Fire when the mean disagreement `2·min(δ, 1−δ)` over voted
        /// examples reaches this.
        disagreement_threshold: f64,
    },
}

impl RetrainTrigger {
    /// The vote floor common to both variants.
    pub fn min_new_votes(&self) -> u64 {
        match self {
            RetrainTrigger::Votes { min_new_votes }
            | RetrainTrigger::Drift { min_new_votes, .. } => *min_new_votes,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.min_new_votes() == 0 {
            return Err(LabelError::InvalidConfig {
                reason: "retrain min_new_votes must be >= 1".into(),
            });
        }
        if let RetrainTrigger::Drift {
            drift_threshold,
            disagreement_threshold,
            ..
        } = self
        {
            if !(drift_threshold.is_finite() && *drift_threshold > 0.0) {
                return Err(LabelError::InvalidConfig {
                    reason: format!(
                        "drift threshold must be finite and > 0, got {drift_threshold}"
                    ),
                });
            }
            if !(disagreement_threshold.is_finite() && *disagreement_threshold > 0.0) {
                return Err(LabelError::InvalidConfig {
                    reason: format!(
                        "disagreement threshold must be finite and > 0, got \
                         {disagreement_threshold}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Worker-quality weighting policy for the fold.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerWeighting {
    /// Live workers with Dawid–Skene informativeness below this are
    /// excluded from the fold (0.2 is the usual operating point).
    pub spam_threshold: f64,
    /// Workers with fewer live votes than this are never excluded — too
    /// little evidence to call anyone a spammer.
    pub min_votes: u64,
}

impl WorkerWeighting {
    fn validate(&self) -> Result<()> {
        if !(self.spam_threshold.is_finite() && (0.0..=1.0).contains(&self.spam_threshold)) {
            return Err(LabelError::InvalidConfig {
                reason: format!(
                    "spam threshold must be within [0, 1], got {}",
                    self.spam_threshold
                ),
            });
        }
        Ok(())
    }
}

/// Static retrain policy.
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Training hyperparameters for every round.
    pub train: RllConfig,
    /// Base seed; round `r` trains with a seed derived from `(base_seed, r)`.
    pub base_seed: u64,
    /// What fires a round.
    pub trigger: RetrainTrigger,
    /// Worker-quality weighting for the fold; `None` folds every vote.
    pub weighting: Option<WorkerWeighting>,
    /// Compact the WAL below the manifest's `folded_seq` after every
    /// completed round.
    pub auto_compact: bool,
    /// How often the loop re-checks the high-water mark.
    pub poll_interval: Duration,
    /// Where rounds checkpoint their `.rllstate` snapshots.
    pub state_path: PathBuf,
    /// Where the round manifest lives.
    pub manifest_path: PathBuf,
    /// Checkpoint cadence in epochs.
    pub snapshot_every_epochs: usize,
    /// Trainer thread override (`None` inherits `RLL_THREADS`).
    pub threads: Option<usize>,
}

/// The frozen training substrate votes are folded into.
#[derive(Debug, Clone)]
pub struct RetrainBase {
    /// Raw (unnormalized) features, one row per example.
    pub features: Matrix,
    /// Offline crowd annotations; live votes append worker columns.
    pub annotations: AnnotationMatrix,
    /// Expert labels for the round eval metric, when available.
    pub expert_labels: Option<Vec<u8>>,
}

/// Where a round's fitted pipeline goes. The serving binary's sink writes an
/// atomic checkpoint and POSTs `/reload` over loopback.
pub trait PublishSink: Send {
    /// Publishes one round's pipeline. An `Err` fails the round (the
    /// manifest stays incomplete, so restart retries it).
    fn publish(&mut self, pipeline: &RllPipeline, round: u64) -> std::result::Result<(), String>;
}

/// Observable state of the retrainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainStatus {
    /// Completed (published) rounds.
    pub rounds_completed: u64,
    /// High-water sequence of the last completed round.
    pub last_folded_seq: u64,
    /// Vote cells folded in the last completed round.
    pub votes_last_round: u64,
    /// Eval accuracy of the last completed round (`-1` before the first, or
    /// when no expert labels are configured).
    pub last_accuracy: f64,
    /// Whether a round is currently training.
    pub in_progress: bool,
    /// Last round failure, if any (cleared by the next success).
    pub last_error: Option<String>,
    /// What fired the last completed round.
    pub last_trigger: Option<String>,
    /// Workers the last completed round excluded by quality weighting.
    pub excluded_workers: Vec<u32>,
}

impl Default for RetrainStatus {
    fn default() -> Self {
        RetrainStatus {
            rounds_completed: 0,
            last_folded_seq: 0,
            votes_last_round: 0,
            last_accuracy: -1.0,
            in_progress: false,
            last_error: None,
            last_trigger: None,
            excluded_workers: Vec::new(),
        }
    }
}

/// Shared status handle, readable from the serving layer (`/metrics`, the
/// labels routes) while the loop trains.
#[derive(Debug)]
pub struct RetrainShared {
    retrain: OrderedMutex<RetrainStatus>,
}

impl RetrainShared {
    fn new() -> Self {
        RetrainShared {
            retrain: OrderedMutex::new("retrain", 80, RetrainStatus::default()),
        }
    }

    /// A copy of the current status.
    pub fn status(&self) -> RetrainStatus {
        self.retrain.lock().clone()
    }

    fn update(&self, f: impl FnOnce(&mut RetrainStatus)) {
        f(&mut self.retrain.lock());
    }
}

/// Handle to the background retrain loop; join with [`Retrainer::stop`].
pub struct Retrainer {
    shutdown: Arc<AtomicBool>,
    shared: Arc<RetrainShared>,
    handle: Option<JoinHandle<()>>,
}

impl Retrainer {
    /// Recovers any interrupted round, then starts the watch loop.
    pub fn start(
        store: Arc<LabelStore>,
        base: RetrainBase,
        config: RetrainConfig,
        recorder: Recorder,
        publish: Box<dyn PublishSink>,
    ) -> Result<Retrainer> {
        config.trigger.validate()?;
        if let Some(weighting) = &config.weighting {
            weighting.validate()?;
        }
        if base.features.rows() != base.annotations.num_items() {
            return Err(LabelError::InvalidConfig {
                reason: format!(
                    "{} feature rows for {} annotated items",
                    base.features.rows(),
                    base.annotations.num_items()
                ),
            });
        }
        if let Some(expert) = &base.expert_labels {
            if expert.len() != base.features.rows() {
                return Err(LabelError::InvalidConfig {
                    reason: format!(
                        "{} expert labels for {} rows",
                        expert.len(),
                        base.features.rows()
                    ),
                });
            }
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(RetrainShared::new());
        let loop_shutdown = Arc::clone(&shutdown);
        let loop_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("rll-retrain".into())
            .spawn(move || {
                run_loop(
                    store,
                    base,
                    config,
                    recorder,
                    publish,
                    loop_shared,
                    loop_shutdown,
                );
            })
            .map_err(|e| LabelError::Train {
                reason: format!("retrainer thread spawn failed: {e}"),
            })?;
        Ok(Retrainer {
            shutdown,
            shared,
            handle: Some(handle),
        })
    }

    /// The shareable status handle.
    pub fn shared(&self) -> Arc<RetrainShared> {
        Arc::clone(&self.shared)
    }

    /// Signals the loop and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Retrainer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Deterministic per-round seed.
fn round_seed(base_seed: u64, round: u64) -> u64 {
    base_seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn run_loop(
    store: Arc<LabelStore>,
    base: RetrainBase,
    config: RetrainConfig,
    recorder: Recorder,
    mut publish: Box<dyn PublishSink>,
    shared: Arc<RetrainShared>,
    shutdown: Arc<AtomicBool>,
) {
    // Per-example confidence at the last completed fold — the drift
    // trigger's reference point. `None` until a round completes (or is
    // recovered); examples absent from the map count from the estimator's
    // prior mean.
    let mut baseline: Option<BTreeMap<u64, f64>> = None;
    if let Err(e) = recover(
        &store,
        &base,
        &config,
        &recorder,
        &mut publish,
        &shared,
        &mut baseline,
    ) {
        shared.update(|s| s.last_error = Some(e.to_string()));
        recorder.note(format!("retrain recovery failed: {e}"));
    }
    while !shutdown.load(Ordering::SeqCst) {
        match run_if_due(
            &store,
            &base,
            &config,
            &recorder,
            &mut publish,
            &shared,
            &mut baseline,
        ) {
            Ok(ran) => {
                if !ran {
                    sleep_interruptibly(&shutdown, config.poll_interval);
                }
            }
            Err(e) => {
                shared.update(|s| {
                    s.in_progress = false;
                    s.last_error = Some(e.to_string());
                });
                recorder.note(format!("retrain round failed: {e}"));
                sleep_interruptibly(&shutdown, config.poll_interval);
            }
        }
    }
}

fn sleep_interruptibly(shutdown: &AtomicBool, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut slept = Duration::ZERO;
    while slept < total && !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice.min(total - slept));
        slept += slice;
    }
}

/// The drift reference for examples never seen at the last fold: the
/// estimator's prior mean (what `positiveness` would return with no votes).
fn prior_mean(estimator: ConfidenceEstimator) -> f64 {
    match estimator {
        ConfidenceEstimator::Bayesian(prior) => prior.alpha / (prior.alpha + prior.beta),
        _ => 0.5,
    }
}

/// `example → δ` for every voted example.
fn confidence_map(tracker: &ConfidenceTracker) -> Result<BTreeMap<u64, f64>> {
    Ok(tracker
        .snapshot()?
        .examples
        .into_iter()
        .map(|e| (e.example, e.confidence))
        .collect())
}

/// Drift scores of the current confidence field against a baseline:
/// `(total |δ_now − δ_then|, mean disagreement 2·min(δ, 1−δ))`.
fn drift_scores(
    current: &BTreeMap<u64, f64>,
    baseline: Option<&BTreeMap<u64, f64>>,
    prior: f64,
) -> (f64, f64) {
    let mut drift = 0.0;
    let mut disagreement = 0.0;
    for (example, &now) in current {
        let then = baseline
            .and_then(|b| b.get(example).copied())
            .unwrap_or(prior);
        drift += (now - then).abs();
        disagreement += 2.0 * now.min(1.0 - now);
    }
    let mean_disagreement = if current.is_empty() {
        0.0
    } else {
        disagreement / current.len() as f64
    };
    (drift, mean_disagreement)
}

/// Live workers the fold should exclude under the weighting policy: fit
/// Dawid–Skene over the live votes alone, derive per-worker quality, and
/// drop annotators whose responses carry no signal. Degenerate live tables
/// (nothing to fit) fall back to an empty exclusion list — weighting never
/// fails a round.
fn excluded_workers(
    tracker: &ConfidenceTracker,
    num_examples: u64,
    max_workers: u32,
    weighting: &WorkerWeighting,
    recorder: &Recorder,
) -> Result<Vec<u32>> {
    let live = tracker.live_matrix(num_examples, max_workers)?;
    if live.total_annotations() == 0 {
        return Ok(Vec::new());
    }
    let qualities = match rll_crowd::live_worker_qualities(&live) {
        Ok(q) => q,
        Err(e) => {
            recorder.note(format!(
                "worker-quality fit failed ({e}); folding unweighted this round"
            ));
            return Ok(Vec::new());
        }
    };
    let mut excluded = Vec::new();
    for spammer in rll_crowd::detect_spammers(&qualities, weighting.spam_threshold) {
        let enough_votes = qualities
            .iter()
            .find(|q| q.worker == spammer)
            .is_some_and(|q| q.annotation_count as u64 >= weighting.min_votes);
        if enough_votes {
            excluded.push(spammer as u32);
        }
    }
    Ok(excluded)
}

/// Finishes an interrupted round left behind by a crash, if any, and seeds
/// the drift baseline from the last fold.
#[allow(clippy::too_many_arguments)]
fn recover(
    store: &LabelStore,
    base: &RetrainBase,
    config: &RetrainConfig,
    recorder: &Recorder,
    publish: &mut Box<dyn PublishSink>,
    shared: &RetrainShared,
    baseline: &mut Option<BTreeMap<u64, f64>>,
) -> Result<()> {
    let Some(manifest) = read_manifest(&config.manifest_path)? else {
        return Ok(());
    };
    if manifest.complete {
        shared.update(|s| {
            s.rounds_completed = manifest.round;
            s.last_folded_seq = manifest.folded_seq;
            s.excluded_workers = manifest.excluded().to_vec();
            s.last_trigger = manifest.trigger.clone();
        });
        if matches!(config.trigger, RetrainTrigger::Drift { .. }) {
            let tracker = store.replay_up_to(manifest.folded_seq)?;
            *baseline = Some(confidence_map(&tracker)?);
        }
        return Ok(());
    }
    // Interrupted mid-round: rebuild the exact fold from the WAL (read-only,
    // filtered to the manifest's sequence, minus the manifest's pinned
    // exclusion list) and finish the round.
    let tracker = store.replay_up_to(manifest.folded_seq)?;
    let folded = tracker.fold_into_filtered(
        &base.annotations,
        store.config().max_workers,
        manifest.excluded(),
    )?;
    let votes = tracker.vote_cells();
    // A usable snapshot lets the round resume bitwise-identically; without
    // one the round reruns in full with the manifest's seed — same output
    // either way.
    let state = TrainState::load(&config.state_path).ok();
    shared.update(|s| {
        s.rounds_completed = manifest.round.saturating_sub(1);
        s.in_progress = true;
    });
    let outcome = run_round(base, config, recorder, publish, &manifest, folded, state);
    finish_round(config, recorder, shared, &manifest, votes, outcome)?;
    *baseline = Some(confidence_map(&tracker)?);
    compact_after_round(store, config, recorder);
    Ok(())
}

/// Runs one round if the trigger fires. Returns whether it ran.
#[allow(clippy::too_many_arguments)]
fn run_if_due(
    store: &LabelStore,
    base: &RetrainBase,
    config: &RetrainConfig,
    recorder: &Recorder,
    publish: &mut Box<dyn PublishSink>,
    shared: &RetrainShared,
    baseline: &mut Option<BTreeMap<u64, f64>>,
) -> Result<bool> {
    let status = shared.status();
    let high_water = store.high_water();
    if high_water.saturating_sub(status.last_folded_seq) < config.trigger.min_new_votes() {
        return Ok(false);
    }
    // One point-in-time tracker copy: trigger evaluation, worker-quality
    // fitting, the fold, and the recorded folded_seq all see the same state.
    let tracker = store.tracker_clone();
    let trigger_name = match &config.trigger {
        RetrainTrigger::Votes { .. } => "votes",
        RetrainTrigger::Drift {
            drift_threshold,
            disagreement_threshold,
            ..
        } => {
            let current = confidence_map(&tracker)?;
            let (drift, disagreement) = drift_scores(
                &current,
                baseline.as_ref(),
                prior_mean(store.config().estimator),
            );
            let metrics = recorder.metrics();
            metrics.gauge("label.retrain.drift").set(drift);
            metrics
                .gauge("label.retrain.disagreement")
                .set(disagreement);
            if drift >= *drift_threshold {
                "drift"
            } else if disagreement >= *disagreement_threshold {
                "disagreement"
            } else {
                return Ok(false);
            }
        }
    };
    let excluded = match &config.weighting {
        Some(weighting) => excluded_workers(
            &tracker,
            store.config().num_examples,
            store.config().max_workers,
            weighting,
            recorder,
        )?,
        None => Vec::new(),
    };
    let folded =
        tracker.fold_into_filtered(&base.annotations, store.config().max_workers, &excluded)?;
    let folded_seq = tracker.applied_seq();
    let votes = tracker.vote_cells();
    let manifest = RetrainManifest {
        schema: MANIFEST_SCHEMA.to_string(),
        round: status.rounds_completed + 1,
        folded_seq,
        seed: round_seed(config.base_seed, status.rounds_completed + 1),
        complete: false,
        excluded_workers: Some(excluded),
        trigger: Some(trigger_name.to_string()),
    };
    write_manifest(&config.manifest_path, &manifest)?;
    shared.update(|s| s.in_progress = true);
    let outcome = run_round(base, config, recorder, publish, &manifest, folded, None);
    finish_round(config, recorder, shared, &manifest, votes, outcome)?;
    *baseline = Some(confidence_map(&tracker)?);
    compact_after_round(store, config, recorder);
    store.publish_gauges()?;
    Ok(true)
}

/// Post-round WAL compaction (when enabled). Fail-soft: the round already
/// published, so a compaction error is reported but does not fail the loop.
fn compact_after_round(store: &LabelStore, config: &RetrainConfig, recorder: &Recorder) {
    if !config.auto_compact {
        return;
    }
    if let Err(e) = store.compact_below_manifest() {
        recorder.metrics().counter("label.compact.failures").inc();
        recorder.note(format!("post-round compaction failed: {e}"));
    }
}

/// Trains, evaluates, and publishes one round. Returns
/// `(accuracy, resumed, wall_secs)`.
#[allow(clippy::too_many_arguments)]
fn run_round(
    base: &RetrainBase,
    config: &RetrainConfig,
    recorder: &Recorder,
    publish: &mut Box<dyn PublishSink>,
    manifest: &RetrainManifest,
    folded: AnnotationMatrix,
    state: Option<TrainState>,
) -> Result<(f64, bool, f64)> {
    let clock = Stopwatch::start();
    let policy = CheckpointPolicy::every(&config.state_path, config.snapshot_every_epochs)
        .map_err(|e| LabelError::Train {
            reason: e.to_string(),
        })?;
    let mut pipeline = RllPipeline::new(config.train.clone())
        .with_recorder(recorder.clone())
        .with_checkpoint_policy(policy);
    if let Some(threads) = config.threads {
        pipeline = pipeline.with_threads(threads);
    }
    let resumed = state.is_some();
    let fit_result = match state {
        Some(state) => pipeline.resume_fit(&base.features, &folded, state),
        None => pipeline.fit(&base.features, &folded, manifest.seed),
    };
    fit_result.map_err(|e| LabelError::Train {
        reason: format!("round {}: {e}", manifest.round),
    })?;

    let accuracy = match &base.expert_labels {
        Some(expert) => {
            let predictions = pipeline
                .predict(&base.features)
                .map_err(|e| LabelError::Train {
                    reason: format!("round {} eval: {e}", manifest.round),
                })?;
            score_predictions(&predictions, expert)
                .map_err(|e| LabelError::Train {
                    reason: format!("round {} eval: {e}", manifest.round),
                })?
                .accuracy
        }
        None => -1.0,
    };

    publish
        .publish(&pipeline, manifest.round)
        .map_err(|reason| LabelError::Publish { reason })?;
    Ok((accuracy, resumed, clock.elapsed_secs()))
}

/// Marks the manifest complete, updates status, emits the round event.
fn finish_round(
    config: &RetrainConfig,
    recorder: &Recorder,
    shared: &RetrainShared,
    manifest: &RetrainManifest,
    votes: u64,
    outcome: Result<(f64, bool, f64)>,
) -> Result<()> {
    let (accuracy, resumed, wall_secs) = match outcome {
        Ok(v) => v,
        Err(e) => {
            shared.update(|s| s.in_progress = false);
            return Err(e);
        }
    };
    let completed = RetrainManifest {
        complete: true,
        ..manifest.clone()
    };
    write_manifest(&config.manifest_path, &completed)?;
    shared.update(|s| {
        s.rounds_completed = manifest.round;
        s.last_folded_seq = manifest.folded_seq;
        s.votes_last_round = votes;
        s.last_accuracy = accuracy;
        s.in_progress = false;
        s.last_error = None;
        s.last_trigger = manifest.trigger.clone();
        s.excluded_workers = manifest.excluded().to_vec();
    });
    recorder.emit(EventKind::RetrainRound(RetrainRoundStats {
        round: manifest.round,
        folded_seq: manifest.folded_seq,
        votes_folded: votes,
        resumed,
        epochs: config.train.epochs,
        accuracy,
        wall_secs,
    }));
    let metrics = recorder.metrics();
    metrics.counter("label.retrain.rounds").inc();
    metrics
        .gauge("label.retrain.folded_seq")
        .set(manifest.folded_seq as f64);
    metrics
        .gauge("label.retrain.excluded_workers")
        .set(manifest.excluded().len() as f64);
    if accuracy.is_finite() && accuracy >= 0.0 {
        metrics.gauge("label.retrain.accuracy").set(accuracy);
    }
    Ok(())
}

/// Reads the manifest, or `None` when it does not exist yet.
pub fn read_manifest(path: &std::path::Path) -> Result<Option<RetrainManifest>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LabelError::io(path, "read", e)),
    };
    let manifest: RetrainManifest =
        serde_json::from_str(&text).map_err(|e| LabelError::Corrupt {
            reason: format!("unparseable retrain manifest {}: {e}", path.display()),
        })?;
    if manifest.schema != MANIFEST_SCHEMA {
        return Err(LabelError::Corrupt {
            reason: format!(
                "retrain manifest {} has schema {:?}, expected {MANIFEST_SCHEMA:?}",
                path.display(),
                manifest.schema
            ),
        });
    }
    Ok(Some(manifest))
}

/// Atomically writes the manifest.
pub fn write_manifest(path: &std::path::Path, manifest: &RetrainManifest) -> Result<()> {
    let json = serde_json::to_string(manifest).map_err(|e| LabelError::Corrupt {
        reason: format!("manifest serialization failed: {e}"),
    })?;
    rll_core::snapshot::atomic_write(path, json.as_bytes())
        .map_err(|e| LabelError::io(path, "write", e))
}
