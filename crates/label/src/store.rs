//! The live label store: WAL + tracker behind the workspace lock ladder.
//!
//! Four locks, all above the serving ladder (`workers(10) < model(20) <
//! queue(30) < cache(40) < train_run_id(50)`):
//!
//! - `dedup` (rank **55**) guards the idempotency receipt table and is held
//!   across the whole keyed-ingest sequence, so two concurrent retries of
//!   the same `(session, request)` key serialize and the loser sees the
//!   winner's receipt instead of appending a second record.
//! - `wal` (rank **60**) serializes appends and sequence assignment. The
//!   fsync deliberately happens under it — the WAL is the one place where
//!   I/O under a lock is the point (single-writer durability), which is why
//!   `crates/label` is scoped into `lock-order-cycle` but not
//!   `no-lock-held-io` (see lint.toml).
//! - `votes` (rank **70**) guards the in-memory confidence tracker.
//! - `compact` (rank **90**, defined here, above `retrain` at 80) serializes
//!   compaction runs and snapshot-aware read-only replays against each
//!   other. It is always acquired with no other ladder lock held and takes
//!   none inside.
//!
//! [`LabelStore::ingest`] takes `wal` → `votes` strictly in rank order:
//! append (wal) → ack durable → apply (votes) → respond. A crash between
//! the two steps loses only in-memory state the WAL replays on restart, so
//! the acked confidence state is always reproducible.
//!
//! ## Opening a compacted store
//!
//! [`LabelStore::open`] loads the confidence snapshot (if any), seeds the
//! tracker and dedup table from it, replays only WAL records with
//! `seq > covered_seq` on top, and raises the WAL's sequence floor so fresh
//! appends never reuse a compacted sequence number. The result is
//! byte-identical to replaying the full uncompacted log.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rll_crowd::{AnnotationMatrix, ConfidenceEstimator};
use rll_obs::{EventKind, Recorder, Stopwatch, WalReplayStats};
use rll_par::OrderedMutex;
use serde::{Deserialize, Serialize};

use crate::compact::{
    self, read_snapshot, snapshot_path, CompactInterrupt, CompactionStats, ConfidenceSnapshot,
};
use crate::confidence::{ConfidenceTracker, ExampleConfidence, LabelsSnapshot};
use crate::error::{LabelError, Result};
use crate::retrain::read_manifest;
use crate::wal::{replay_read_only, wal_dir_bytes, ShardedWal, Vote, WalConfig};

/// Default capacity of the idempotency receipt table.
pub const DEFAULT_DEDUP_CAPACITY: usize = 4096;

/// Shape and policy of a label store.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelStoreConfig {
    /// WAL directory.
    pub dir: PathBuf,
    /// WAL shard count.
    pub shards: u32,
    /// Records per segment before rotation.
    pub segment_records: u64,
    /// Confidence estimator (must match across restarts for byte-identical
    /// snapshots).
    pub estimator: ConfidenceEstimator,
    /// Dataset size; votes must target `example < num_examples`.
    pub num_examples: u64,
    /// Live-annotator budget; votes must carry `worker < max_workers`.
    pub max_workers: u32,
    /// Most-recent keyed receipts kept for duplicate detection (oldest by
    /// sequence evicted first).
    pub dedup_capacity: usize,
    /// The retrain manifest gating [`LabelStore::compact_below_manifest`]:
    /// compaction only ever targets the `folded_seq` of a *complete*
    /// manifest read from this path. `None` disables manifest-gated
    /// compaction.
    pub manifest_path: Option<PathBuf>,
}

impl LabelStoreConfig {
    /// The validated WAL layout this store reads and writes.
    pub fn wal_config(&self) -> Result<WalConfig> {
        WalConfig::new(self.dir.clone(), self.shards, self.segment_records)
    }
}

/// What `POST /label` returns: the durable sequence number plus the
/// example's updated confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestReceipt {
    /// Durable global sequence number of this vote.
    pub seq: u64,
    pub example: u64,
    pub worker: u32,
    pub label: u8,
    /// Votes currently on the example (after this one).
    pub votes: u64,
    /// Positive votes currently on the example.
    pub positive: u64,
    /// Updated confidence δ.
    pub confidence: f64,
}

/// Bounded `(session, request) → receipt` table. Deterministic: eviction is
/// strictly oldest-sequence-first, so replaying the same records rebuilds
/// the same table, and the snapshot codec can freeze/restore it exactly.
#[derive(Debug, Clone)]
pub struct DedupMap {
    capacity: usize,
    by_key: BTreeMap<(u64, u64), IngestReceipt>,
    by_seq: BTreeMap<u64, (u64, u64)>,
}

impl DedupMap {
    /// An empty table evicting beyond `capacity` entries (0 disables dedup).
    pub fn new(capacity: usize) -> DedupMap {
        DedupMap {
            capacity,
            by_key: BTreeMap::new(),
            by_seq: BTreeMap::new(),
        }
    }

    /// The receipt previously returned for `key`, if still retained.
    pub fn get(&self, key: (u64, u64)) -> Option<&IngestReceipt> {
        self.by_key.get(&key)
    }

    /// Records `key → receipt`, evicting oldest-sequence entries beyond
    /// capacity. Re-inserting an existing key (a client reusing a key after
    /// eviction) replaces its receipt.
    pub fn insert(&mut self, key: (u64, u64), receipt: IngestReceipt) {
        if let Some(previous) = self.by_key.insert(key, receipt) {
            self.by_seq.remove(&previous.seq);
        }
        self.by_seq.insert(receipt.seq, key);
        while self.by_key.len() > self.capacity {
            let Some((&oldest_seq, &oldest_key)) = self.by_seq.iter().next() else {
                break;
            };
            self.by_seq.remove(&oldest_seq);
            self.by_key.remove(&oldest_key);
        }
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Entries in `(session, request)` order — the snapshot serialization
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = ((u64, u64), &IngestReceipt)> {
        self.by_key.iter().map(|(&k, v)| (k, v))
    }
}

/// Streaming vote store: sharded WAL + online confidence tracker + dedup
/// receipts, with snapshot-based compaction.
#[derive(Debug)]
pub struct LabelStore {
    config: LabelStoreConfig,
    dedup: OrderedMutex<DedupMap>,
    wal: OrderedMutex<ShardedWal>,
    votes: OrderedMutex<ConfidenceTracker>,
    compact: OrderedMutex<()>,
    recorder: Recorder,
}

impl LabelStore {
    /// Opens the store: loads the confidence snapshot (if any), replays (and
    /// repairs) the WAL tail on top of it, and raises the sequence floor
    /// past the compacted range. Emits a `WalReplayed` event and seeds the
    /// label metrics.
    pub fn open(config: LabelStoreConfig, recorder: Recorder) -> Result<LabelStore> {
        if config.num_examples == 0 {
            return Err(LabelError::InvalidConfig {
                reason: "label store needs num_examples >= 1".into(),
            });
        }
        if config.max_workers == 0 {
            return Err(LabelError::InvalidConfig {
                reason: "label store needs max_workers >= 1".into(),
            });
        }
        let clock = Stopwatch::start();
        let wal_config = config.wal_config()?;
        let snapshot = read_snapshot(&snapshot_path(&wal_config))?;
        let (mut wal, replay) = ShardedWal::open(wal_config)?;
        let (tracker, dedup, covered_seq) = compact::rebuild_state(
            snapshot.as_ref(),
            config.estimator,
            config.dedup_capacity,
            &replay.records,
            u64::MAX,
        )?;
        wal.raise_seq_floor(covered_seq);
        recorder.emit(EventKind::WalReplayed(WalReplayStats {
            shards: config.shards,
            segments: replay.segments_read,
            records: replay.records.len() as u64,
            corruptions: replay.corruptions.len() as u64,
            dropped_records: replay.dropped_records,
            high_water_seq: replay.high_water.max(covered_seq),
            wall_secs: clock.elapsed_secs(),
        }));
        let metrics = recorder.metrics();
        metrics
            .counter("label.wal.replayed_records")
            .add(replay.records.len() as u64);
        metrics
            .counter("label.wal.corruptions")
            .add(replay.corruptions.len() as u64);
        metrics
            .counter("label.wal.dropped_records")
            .add(replay.dropped_records);
        metrics
            .gauge("label.compact.covered_seq")
            .set(covered_seq as f64);
        let store = LabelStore {
            dedup: OrderedMutex::new("dedup", 55, dedup),
            wal: OrderedMutex::new("wal", 60, wal),
            votes: OrderedMutex::new("votes", 70, tracker),
            compact: OrderedMutex::new("compact", 90, ()),
            config,
            recorder,
        };
        store.publish_gauges()?;
        Ok(store)
    }

    /// The store's configuration.
    pub fn config(&self) -> &LabelStoreConfig {
        &self.config
    }

    /// Validates and durably ingests one vote: WAL append + fsync first,
    /// tracker update second, so the response's `seq` is always replayable.
    ///
    /// Keyed votes (`session` + `request` set) are idempotent: a duplicate
    /// key returns the original receipt without touching the WAL, so a
    /// client retrying a POST whose response was dropped cannot double-count
    /// its vote. The `dedup` lock (rank 55) is held across the whole keyed
    /// path; `wal` (60) and `votes` (70) nest under it in rank order.
    pub fn ingest(&self, vote: Vote) -> Result<IngestReceipt> {
        if vote.example >= self.config.num_examples {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: format!(
                    "example {} outside the {}-item dataset",
                    vote.example, self.config.num_examples
                ),
            });
        }
        if vote.worker >= self.config.max_workers {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: format!(
                    "worker {} outside the {}-worker budget",
                    vote.worker, self.config.max_workers
                ),
            });
        }
        if vote.label > 1 {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: format!("label {} is not binary", vote.label),
            });
        }
        if vote.session.is_some() != vote.request.is_some() {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: "idempotency key needs both session and request".into(),
            });
        }

        let mut dedup_guard = match vote.key() {
            Some(_) if self.config.dedup_capacity > 0 => Some(self.dedup.lock()),
            _ => None,
        };
        if let (Some(key), Some(guard)) = (vote.key(), dedup_guard.as_ref()) {
            if let Some(original) = guard.get(key) {
                if original.example != vote.example
                    || original.worker != vote.worker
                    || original.label != vote.label
                {
                    self.recorder
                        .metrics()
                        .counter("label.votes.rejected")
                        .inc();
                    return Err(LabelError::InvalidVote {
                        reason: format!(
                            "idempotency key ({}, {}) was already used for a different vote",
                            key.0, key.1
                        ),
                    });
                }
                self.recorder.metrics().counter("label.votes.deduped").inc();
                return Ok(*original);
            }
        }

        let record = self.wal.lock().append(vote)?;
        let conf = self.votes.lock().apply(&record)?;
        let receipt = IngestReceipt {
            seq: record.seq,
            example: record.example,
            worker: record.worker,
            label: record.label,
            votes: conf.votes,
            positive: conf.positive,
            confidence: conf.confidence,
        };
        if let (Some(key), Some(guard)) = (vote.key(), dedup_guard.as_mut()) {
            guard.insert(key, receipt);
        }
        let metrics = self.recorder.metrics();
        metrics.counter("label.votes.ingested").inc();
        metrics
            .gauge("label.votes.high_water")
            .set(record.seq as f64);
        if conf.confidence.is_finite() {
            metrics.gauge("label.confidence.last").set(conf.confidence);
        }
        Ok(receipt)
    }

    /// One example's current confidence, or `None` if it has no votes.
    pub fn confidence(&self, example: u64) -> Result<Option<ExampleConfidence>> {
        self.votes.lock().confidence(example)
    }

    /// Deterministic snapshot of every voted example (the `GET /labels`
    /// body).
    pub fn snapshot(&self) -> Result<LabelsSnapshot> {
        self.votes.lock().snapshot()
    }

    /// Largest acked sequence number.
    pub fn high_water(&self) -> u64 {
        self.votes.lock().applied_seq()
    }

    /// A point-in-time copy of the live tracker — the retrainer's input for
    /// worker-quality fitting and folding, taken under one `votes` lock so
    /// the fold, the quality fit, and the recorded `folded_seq` all reflect
    /// the same instant.
    pub fn tracker_clone(&self) -> ConfidenceTracker {
        self.votes.lock().clone()
    }

    /// Folds the current live votes into a copy of `base` for a retrain
    /// round. Returns the folded matrix, the high-water sequence it
    /// reflects, and the vote-cell count.
    pub fn fold_current(&self, base: &AnnotationMatrix) -> Result<(AnnotationMatrix, u64, u64)> {
        let tracker = self.votes.lock();
        let folded = tracker.fold_into(base, self.config.max_workers)?;
        Ok((folded, tracker.applied_seq(), tracker.vote_cells()))
    }

    /// Rebuilds a tracker from disk containing only votes with
    /// `seq <= up_to_seq` — the crash-recovery path for an interrupted
    /// retrain round. Snapshot-aware: compacted history is restored from the
    /// confidence snapshot, then only tail records in
    /// `(covered_seq, up_to_seq]` are applied. Read-only with respect to the
    /// WAL; the `compact` lock excludes a concurrent compaction deleting
    /// segments mid-scan.
    ///
    /// Requesting a sequence *below* what the snapshot covers is a typed
    /// error: that state no longer exists on disk, and a policy that asks
    /// for it (e.g. compacting past an unpublished fold) is broken.
    pub fn replay_up_to(&self, up_to_seq: u64) -> Result<ConfidenceTracker> {
        let _compacting = self.compact.lock();
        let wal_config = self.config.wal_config()?;
        let snapshot = read_snapshot(&snapshot_path(&wal_config))?;
        if let Some(covered) = snapshot.as_ref().map(|s| s.covered_seq) {
            if covered > up_to_seq {
                return Err(LabelError::Corrupt {
                    reason: format!(
                        "replay up to seq {up_to_seq} impossible: compaction already folded \
                         history through seq {covered}"
                    ),
                });
            }
        }
        let replay = replay_read_only(&wal_config)?;
        let (tracker, _, _) = compact::rebuild_state(
            snapshot.as_ref(),
            self.config.estimator,
            self.config.dedup_capacity,
            &replay.records,
            up_to_seq,
        )?;
        Ok(tracker)
    }

    /// Compacts sealed WAL history at or below the `folded_seq` of a
    /// **complete** retrain manifest. The target is read from the manifest
    /// on disk — never from the in-memory tracker — so a crash between a
    /// round's fold and its publish (manifest present but incomplete) can
    /// never compact away votes the published model has not folded; in that
    /// window this is a no-op.
    pub fn compact_below_manifest(&self) -> Result<CompactionStats> {
        let target = match &self.config.manifest_path {
            Some(path) => match read_manifest(path)? {
                Some(manifest) if manifest.complete => manifest.folded_seq,
                _ => 0,
            },
            None => 0,
        };
        self.compact_below(target)
    }

    /// Compacts sealed WAL history at or below `target_seq` (see
    /// [`crate::compact`] for the crash contract). Serialized by the
    /// `compact` lock (rank 90, acquired holding nothing); ingest keeps
    /// flowing concurrently. The `RLL_COMPACT_FAULT` environment variable
    /// (`before-delete` / `mid-delete`) arms a deliberate mid-compaction
    /// abort for the crash-safety gate.
    pub fn compact_below(&self, target_seq: u64) -> Result<CompactionStats> {
        let interrupt = match std::env::var("RLL_COMPACT_FAULT") {
            Ok(value) => CompactInterrupt::from_env_value(&value),
            Err(_) => CompactInterrupt::None,
        };
        let stats = {
            let _compacting = self.compact.lock();
            compact::compact_wal(
                &self.config.wal_config()?,
                self.config.estimator,
                self.config.dedup_capacity,
                target_seq,
                interrupt,
            )?
        };
        let metrics = self.recorder.metrics();
        metrics.counter("label.compact.runs").inc();
        metrics
            .counter("label.compact.segments_deleted")
            .add(stats.segments_deleted);
        metrics
            .counter("label.compact.bytes_reclaimed")
            .add(stats.bytes_reclaimed);
        metrics
            .gauge("label.compact.covered_seq")
            .set(stats.covered_seq as f64);
        metrics
            .gauge("label.wal.bytes")
            .set(stats.wal_bytes_after as f64);
        if stats.segments_deleted > 0 || stats.snapshot_written {
            self.recorder.note(format!(
                "compacted WAL through seq {}: {} segments ({} bytes) reclaimed",
                stats.covered_seq, stats.segments_deleted, stats.bytes_reclaimed
            ));
        }
        Ok(stats)
    }

    /// The confidence snapshot currently on disk, if any.
    pub fn disk_snapshot(&self) -> Result<Option<ConfidenceSnapshot>> {
        read_snapshot(&snapshot_path(&self.config.wal_config()?))
    }

    /// Total on-disk bytes of live `.rllwal` segment files.
    pub fn wal_bytes(&self) -> Result<u64> {
        wal_dir_bytes(&self.config.wal_config()?)
    }

    /// The manifest path compaction is gated on, if configured.
    pub fn manifest_path(&self) -> Option<&Path> {
        self.config.manifest_path.as_deref()
    }

    /// Refreshes the aggregate label gauges (vote cells, voted examples,
    /// mean confidence, on-disk WAL bytes — the NaN-free path `/metrics`
    /// serves).
    pub fn publish_gauges(&self) -> Result<()> {
        let wal_bytes = self.wal_bytes()?;
        let tracker = self.votes.lock();
        let mean = tracker.mean_confidence()?;
        let metrics = self.recorder.metrics();
        metrics
            .gauge("label.votes.cells")
            .set(tracker.vote_cells() as f64);
        metrics
            .gauge("label.examples.voted")
            .set(tracker.examples_voted() as f64);
        metrics.gauge("label.wal.bytes").set(wal_bytes as f64);
        if mean.is_finite() {
            metrics.gauge("label.confidence.mean").set(mean);
        }
        Ok(())
    }
}
