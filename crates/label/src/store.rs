//! The live label store: WAL + tracker behind the workspace lock ladder.
//!
//! Two locks, both above the serving ladder (`workers(10) < model(20) <
//! queue(30) < cache(40) < train_run_id(50)`):
//!
//! - `wal` (rank **60**) serializes appends and sequence assignment. The
//!   fsync deliberately happens under it — the WAL is the one place where
//!   I/O under a lock is the point (single-writer durability), which is why
//!   `crates/label` is scoped into `lock-order-cycle` but not
//!   `no-lock-held-io` (see lint.toml).
//! - `votes` (rank **70**) guards the in-memory confidence tracker.
//!
//! [`LabelStore::ingest`] takes them strictly in rank order and never
//! nested: append (wal) → ack durable → apply (votes) → respond. A crash
//! between the two steps loses only in-memory state the WAL replays on
//! restart, so the acked confidence state is always reproducible.

use std::path::PathBuf;

use rll_crowd::{AnnotationMatrix, ConfidenceEstimator};
use rll_obs::{EventKind, Recorder, Stopwatch, WalReplayStats};
use rll_par::OrderedMutex;
use serde::{Deserialize, Serialize};

use crate::confidence::{ConfidenceTracker, ExampleConfidence, LabelsSnapshot};
use crate::error::{LabelError, Result};
use crate::wal::{replay_read_only, ShardedWal, Vote, WalConfig, WalReplay};

/// Shape and policy of a label store.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelStoreConfig {
    /// WAL directory.
    pub dir: PathBuf,
    /// WAL shard count.
    pub shards: u32,
    /// Records per segment before rotation.
    pub segment_records: u64,
    /// Confidence estimator (must match across restarts for byte-identical
    /// snapshots).
    pub estimator: ConfidenceEstimator,
    /// Dataset size; votes must target `example < num_examples`.
    pub num_examples: u64,
    /// Live-annotator budget; votes must carry `worker < max_workers`.
    pub max_workers: u32,
}

impl LabelStoreConfig {
    fn wal_config(&self) -> WalConfig {
        WalConfig {
            dir: self.dir.clone(),
            shards: self.shards,
            segment_records: self.segment_records,
        }
    }
}

/// What `POST /label` returns: the durable sequence number plus the
/// example's updated confidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestReceipt {
    /// Durable global sequence number of this vote.
    pub seq: u64,
    pub example: u64,
    pub worker: u32,
    pub label: u8,
    /// Votes currently on the example (after this one).
    pub votes: u64,
    /// Positive votes currently on the example.
    pub positive: u64,
    /// Updated confidence δ.
    pub confidence: f64,
}

/// Streaming vote store: sharded WAL + online confidence tracker.
#[derive(Debug)]
pub struct LabelStore {
    config: LabelStoreConfig,
    wal: OrderedMutex<ShardedWal>,
    votes: OrderedMutex<ConfidenceTracker>,
    recorder: Recorder,
}

impl LabelStore {
    /// Opens the store, replaying (and repairing) the WAL into a fresh
    /// tracker. Emits a `WalReplayed` event and seeds the label metrics.
    pub fn open(config: LabelStoreConfig, recorder: Recorder) -> Result<LabelStore> {
        if config.num_examples == 0 {
            return Err(LabelError::InvalidConfig {
                reason: "label store needs num_examples >= 1".into(),
            });
        }
        if config.max_workers == 0 {
            return Err(LabelError::InvalidConfig {
                reason: "label store needs max_workers >= 1".into(),
            });
        }
        let clock = Stopwatch::start();
        let (wal, replay) = ShardedWal::open(config.wal_config())?;
        let mut tracker = ConfidenceTracker::new(config.estimator)?;
        for record in &replay.records {
            tracker.apply(record)?;
        }
        recorder.emit(EventKind::WalReplayed(WalReplayStats {
            shards: config.shards,
            segments: replay.segments_read,
            records: replay.records.len() as u64,
            corruptions: replay.corruptions.len() as u64,
            dropped_records: replay.dropped_records,
            high_water_seq: replay.high_water,
            wall_secs: clock.elapsed_secs(),
        }));
        let metrics = recorder.metrics();
        metrics
            .counter("label.wal.replayed_records")
            .add(replay.records.len() as u64);
        metrics
            .counter("label.wal.corruptions")
            .add(replay.corruptions.len() as u64);
        metrics
            .counter("label.wal.dropped_records")
            .add(replay.dropped_records);
        let store = LabelStore {
            wal: OrderedMutex::new("wal", 60, wal),
            votes: OrderedMutex::new("votes", 70, tracker),
            config,
            recorder,
        };
        store.publish_gauges()?;
        Ok(store)
    }

    /// The store's configuration.
    pub fn config(&self) -> &LabelStoreConfig {
        &self.config
    }

    /// Validates and durably ingests one vote: WAL append + fsync first,
    /// tracker update second, so the response's `seq` is always replayable.
    pub fn ingest(&self, vote: Vote) -> Result<IngestReceipt> {
        if vote.example >= self.config.num_examples {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: format!(
                    "example {} outside the {}-item dataset",
                    vote.example, self.config.num_examples
                ),
            });
        }
        if vote.worker >= self.config.max_workers {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: format!(
                    "worker {} outside the {}-worker budget",
                    vote.worker, self.config.max_workers
                ),
            });
        }
        if vote.label > 1 {
            self.recorder
                .metrics()
                .counter("label.votes.rejected")
                .inc();
            return Err(LabelError::InvalidVote {
                reason: format!("label {} is not binary", vote.label),
            });
        }
        let record = self.wal.lock().append(vote)?;
        let conf = self.votes.lock().apply(&record)?;
        let metrics = self.recorder.metrics();
        metrics.counter("label.votes.ingested").inc();
        metrics
            .gauge("label.votes.high_water")
            .set(record.seq as f64);
        if conf.confidence.is_finite() {
            metrics.gauge("label.confidence.last").set(conf.confidence);
        }
        Ok(IngestReceipt {
            seq: record.seq,
            example: record.example,
            worker: record.worker,
            label: record.label,
            votes: conf.votes,
            positive: conf.positive,
            confidence: conf.confidence,
        })
    }

    /// One example's current confidence, or `None` if it has no votes.
    pub fn confidence(&self, example: u64) -> Result<Option<ExampleConfidence>> {
        self.votes.lock().confidence(example)
    }

    /// Deterministic snapshot of every voted example (the `GET /labels`
    /// body).
    pub fn snapshot(&self) -> Result<LabelsSnapshot> {
        self.votes.lock().snapshot()
    }

    /// Largest acked sequence number.
    pub fn high_water(&self) -> u64 {
        self.votes.lock().applied_seq()
    }

    /// Folds the current live votes into a copy of `base` for a retrain
    /// round. Returns the folded matrix, the high-water sequence it
    /// reflects, and the vote-cell count.
    pub fn fold_current(&self, base: &AnnotationMatrix) -> Result<(AnnotationMatrix, u64, u64)> {
        let tracker = self.votes.lock();
        let folded = tracker.fold_into(base, self.config.max_workers)?;
        Ok((folded, tracker.applied_seq(), tracker.vote_cells()))
    }

    /// Rebuilds a tracker from disk containing only votes with
    /// `seq <= up_to_seq` — the crash-recovery path for an interrupted
    /// retrain round. Read-only: safe while appends continue, because
    /// records at or below an acked high-water mark are immutable.
    pub fn replay_up_to(&self, up_to_seq: u64) -> Result<ConfidenceTracker> {
        let replay: WalReplay = replay_read_only(&self.config.wal_config())?;
        let mut tracker = ConfidenceTracker::new(self.config.estimator)?;
        for record in &replay.records {
            if record.seq <= up_to_seq {
                tracker.apply(record)?;
            }
        }
        Ok(tracker)
    }

    /// Refreshes the aggregate label gauges (vote cells, voted examples,
    /// mean confidence — the NaN-free path `/metrics` serves).
    pub fn publish_gauges(&self) -> Result<()> {
        let tracker = self.votes.lock();
        let mean = tracker.mean_confidence()?;
        let metrics = self.recorder.metrics();
        metrics
            .gauge("label.votes.cells")
            .set(tracker.vote_cells() as f64);
        metrics
            .gauge("label.examples.voted")
            .set(tracker.examples_voted() as f64);
        if mean.is_finite() {
            metrics.gauge("label.confidence.mean").set(mean);
        }
        Ok(())
    }
}
