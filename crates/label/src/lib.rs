//! # rll-label — streaming crowd-vote ingestion and continuous learning
//!
//! The live half of the crowdsourced-labeling pipeline (paper §3): where the
//! batch crates train once from a frozen annotation matrix, this crate keeps
//! accepting votes after deployment and feeds them back into the model.
//!
//! Three layers:
//!
//! 1. **Ingestion** ([`wal`]) — a sharded, checksummed write-ahead log built
//!    on the workspace snapshot codec. Every vote is fsynced before it is
//!    acknowledged; replay truncates at the first corrupt record per shard
//!    and reports exactly what it dropped.
//! 2. **Online confidence** ([`confidence`]) — an incremental tracker that
//!    recomputes each example's confidence (paper eq. 1–2) with the *same*
//!    estimator arithmetic as the batch path, so replayed state matches the
//!    batch estimator bitwise.
//! 3. **The loop** ([`retrain`]) — a background retrainer that watches the
//!    WAL high-water mark, folds new votes into the dataset, resumes or
//!    reruns training from the latest `.rllstate`, and publishes the fitted
//!    model through a [`retrain::PublishSink`] (the serving binary's sink
//!    writes an atomic checkpoint and hot-swaps it via `POST /reload`).
//!
//! A fourth layer bounds the log: **compaction** ([`compact`]) folds sealed
//! WAL history below the retrainer's published `folded_seq` into a
//! checksummed confidence snapshot and deletes the covered segments, so the
//! log (and every restart replay) stays proportional to the un-retrained
//! tail rather than the full vote history.
//!
//! [`store::LabelStore`] ties the layers together behind four new rungs of
//! the workspace lock ladder (`dedup` at 55, `wal` at 60, `votes` at 70,
//! `compact` at 90); the retrainer adds `retrain` at 80.

pub mod compact;
pub mod confidence;
pub mod error;
pub mod retrain;
pub mod store;
pub mod wal;

pub use compact::{
    build_snapshot, compact_wal, read_snapshot, restore_tracker, snapshot_path, write_snapshot,
    CompactInterrupt, CompactionStats, ConfidenceSnapshot, SnapshotExample, SnapshotReceipt,
    SNAPSHOT_FILE, SNAPSHOT_MAGIC, SNAPSHOT_SCHEMA, SNAPSHOT_VERSION,
};
pub use confidence::{ConfidenceTracker, ExampleConfidence, LabelsSnapshot, LABELS_SCHEMA};
pub use error::{LabelError, Result};
pub use retrain::{
    read_manifest, write_manifest, PublishSink, RetrainBase, RetrainConfig, RetrainManifest,
    RetrainShared, RetrainStatus, RetrainTrigger, Retrainer, WorkerWeighting, MANIFEST_SCHEMA,
};
pub use store::{DedupMap, IngestReceipt, LabelStore, LabelStoreConfig, DEFAULT_DEDUP_CAPACITY};
pub use wal::{
    compactable_segments, replay_read_only, shard_of, wal_dir_bytes, CompactableSegment,
    Corruption, CorruptionKind, ShardedWal, Vote, VoteRecord, WalConfig, WalReplay,
};
