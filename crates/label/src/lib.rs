//! # rll-label — streaming crowd-vote ingestion and continuous learning
//!
//! The live half of the crowdsourced-labeling pipeline (paper §3): where the
//! batch crates train once from a frozen annotation matrix, this crate keeps
//! accepting votes after deployment and feeds them back into the model.
//!
//! Three layers:
//!
//! 1. **Ingestion** ([`wal`]) — a sharded, checksummed write-ahead log built
//!    on the workspace snapshot codec. Every vote is fsynced before it is
//!    acknowledged; replay truncates at the first corrupt record per shard
//!    and reports exactly what it dropped.
//! 2. **Online confidence** ([`confidence`]) — an incremental tracker that
//!    recomputes each example's confidence (paper eq. 1–2) with the *same*
//!    estimator arithmetic as the batch path, so replayed state matches the
//!    batch estimator bitwise.
//! 3. **The loop** ([`retrain`]) — a background retrainer that watches the
//!    WAL high-water mark, folds new votes into the dataset, resumes or
//!    reruns training from the latest `.rllstate`, and publishes the fitted
//!    model through a [`retrain::PublishSink`] (the serving binary's sink
//!    writes an atomic checkpoint and hot-swaps it via `POST /reload`).
//!
//! [`store::LabelStore`] ties layers 1 and 2 together behind two new rungs
//! of the workspace lock ladder (`wal` at 60, `votes` at 70); the retrainer
//! adds `retrain` at 80.

pub mod confidence;
pub mod error;
pub mod retrain;
pub mod store;
pub mod wal;

pub use confidence::{ConfidenceTracker, ExampleConfidence, LabelsSnapshot, LABELS_SCHEMA};
pub use error::{LabelError, Result};
pub use retrain::{
    read_manifest, write_manifest, PublishSink, RetrainBase, RetrainConfig, RetrainManifest,
    RetrainShared, RetrainStatus, Retrainer, MANIFEST_SCHEMA,
};
pub use store::{IngestReceipt, LabelStore, LabelStoreConfig};
pub use wal::{
    replay_read_only, shard_of, Corruption, CorruptionKind, ShardedWal, Vote, VoteRecord,
    WalConfig, WalReplay,
};
