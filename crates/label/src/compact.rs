//! WAL compaction: fold sealed history into a checksummed snapshot.
//!
//! Without compaction the vote WAL grows without bound and every restart
//! replays the whole history. Once the retrainer *completes* a round, every
//! record at or below the round manifest's `folded_seq` is already baked
//! into the published model, so the sealed segments wholly below that mark
//! can collapse into a single **confidence snapshot** artifact:
//!
//! ```text
//! {"magic":"RLLSNAP","version":1,"covered_seq":128,"payload_fnv1a":...}\n
//! {"schema":"confidence_snapshot/v1","estimator":"bayesian",...}
//! ```
//!
//! The file reuses the workspace envelope codec ([`rll_core::snapshot`]) and
//! is written atomically; the payload carries the exact tracker cell state
//! (example → worker → label, plus per-example `last_seq`) and the dedup
//! receipt table at `covered_seq`. Replay becomes snapshot-load +
//! tail-replay of the surviving segments, filtered to `seq > covered_seq` —
//! byte-identical to a full-log replay because the cell state is the same
//! last-write-wins table either way.
//!
//! ## Crash contract
//!
//! Compaction has exactly two effects, strictly ordered:
//!
//! 1. **Snapshot write** — atomic (temp + fsync + rename). A crash before
//!    the rename leaves the old snapshot (or none) and every segment: state
//!    unchanged. A crash after it leaves a complete new snapshot *and* all
//!    segments — records in `(old_covered, covered_seq]` exist twice, which
//!    replay tolerates by filtering the tail to `seq > covered_seq`.
//! 2. **Segment deletion** — covered segments are removed in ascending
//!    segment order per shard, so a crash part-way leaves each shard's chain
//!    with at most a *leading* gap, which replay treats as an
//!    already-compacted prefix (never a mid-chain `MissingSegment` fault).
//!    Every deleted record is ≤ `covered_seq`, hence in the snapshot.
//!
//! At no point can both the snapshot and the covering segments be missing —
//! the deletion target is re-derived from the snapshot actually on disk,
//! never from the in-memory request.
//!
//! The *caller* picks `target_seq`; the store's policy
//! ([`crate::store::LabelStore::compact_below_manifest`]) only ever passes
//! the `folded_seq` of a **complete** retrain manifest, so a crash between
//! fold and publish can never compact away votes the published model has
//! not folded.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use rll_core::snapshot::{atomic_write, encode_envelope, split_envelope};
use rll_crowd::ConfidenceEstimator;
use rll_tensor::hash::fnv1a;
use serde::{Deserialize, Serialize};

use crate::confidence::ConfidenceTracker;
use crate::error::{LabelError, Result};
use crate::store::{DedupMap, IngestReceipt};
use crate::wal::{compactable_segments, replay_read_only, wal_dir_bytes, VoteRecord, WalConfig};

/// Magic string in the snapshot header.
pub const SNAPSHOT_MAGIC: &str = "RLLSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Schema tag of the snapshot payload.
pub const SNAPSHOT_SCHEMA: &str = "confidence_snapshot/v1";
/// File name of the snapshot inside the WAL directory.
pub const SNAPSHOT_FILE: &str = "confidence.rllsnap";

/// Snapshot envelope header (one-line JSON before the payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SnapshotHeader {
    magic: String,
    version: u32,
    /// Largest sequence number the payload covers.
    covered_seq: u64,
    /// FNV-1a over the payload bytes.
    payload_fnv1a: u64,
}

/// One example's frozen cell state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotExample {
    /// Dataset row.
    pub example: u64,
    /// Largest sequence number that touched the example.
    pub last_seq: u64,
    /// Current `(worker, label)` cells, sorted by worker.
    pub votes: Vec<(u32, u8)>,
}

/// One frozen dedup receipt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotReceipt {
    /// Client session id (idempotency-key half).
    pub session: u64,
    /// Per-session request counter (the other half).
    pub request: u64,
    /// The receipt originally returned for this key.
    pub receipt: IngestReceipt,
}

/// The snapshot payload: the exact tracker + dedup state at `covered_seq`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceSnapshot {
    /// Always [`SNAPSHOT_SCHEMA`].
    pub schema: String,
    /// Estimator variant name; must match the store's estimator on load.
    pub estimator: String,
    /// Largest sequence number folded into this snapshot. Tail replay
    /// applies only records with `seq > covered_seq`.
    pub covered_seq: u64,
    /// Largest sequence number actually applied (≤ `covered_seq`; they
    /// differ only when repair dropped records below the target).
    pub applied_seq: u64,
    /// Per-example cell state, sorted by example id.
    pub examples: Vec<SnapshotExample>,
    /// Dedup receipt table, sorted by `(session, request)`.
    pub receipts: Vec<SnapshotReceipt>,
}

/// Where (if anywhere) a compaction run should stop or crash — the hook the
/// interrupted-compaction tests and the `check.sh` kill-gate are built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactInterrupt {
    /// Run to completion.
    #[default]
    None,
    /// Return early right after the snapshot write, before any deletion.
    StopAfterSnapshot,
    /// Return early right after the first segment deletion.
    StopAfterFirstDelete,
    /// `abort()` the process right after the snapshot write.
    AbortAfterSnapshot,
    /// `abort()` the process right after the first segment deletion.
    AbortAfterFirstDelete,
}

impl CompactInterrupt {
    /// Parses the `RLL_COMPACT_FAULT` values the crash gate uses
    /// (`before-delete`, `mid-delete`); anything else is [`Self::None`].
    pub fn from_env_value(value: &str) -> CompactInterrupt {
        match value {
            "before-delete" => CompactInterrupt::AbortAfterSnapshot,
            "mid-delete" => CompactInterrupt::AbortAfterFirstDelete,
            _ => CompactInterrupt::None,
        }
    }
}

/// What one compaction run did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// The requested compaction target.
    pub target_seq: u64,
    /// `covered_seq` of the snapshot on disk after the run.
    pub covered_seq: u64,
    /// Whether this run wrote a new snapshot (false when the existing one
    /// already covered the target).
    pub snapshot_written: bool,
    /// Segment files deleted.
    pub segments_deleted: u64,
    /// Verified records inside the deleted segments.
    pub records_dropped: u64,
    /// Bytes of deleted segment files.
    pub bytes_reclaimed: u64,
    /// Total `.rllwal` bytes remaining after the run.
    pub wal_bytes_after: u64,
    /// True when the run was cut short by a stop-style [`CompactInterrupt`].
    pub interrupted: bool,
}

/// The snapshot path for a WAL directory.
pub fn snapshot_path(config: &WalConfig) -> PathBuf {
    config.dir().join(SNAPSHOT_FILE)
}

/// Reads and fully verifies the snapshot, or `None` when the file does not
/// exist. Corruption is a hard [`LabelError::Corrupt`]: unlike a torn WAL
/// tail there is no good prefix to fall back to, and the covering segments
/// may already be gone.
pub fn read_snapshot(path: &Path) -> Result<Option<ConfidenceSnapshot>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LabelError::io(path, "read", e)),
    };
    let corrupt = |reason: String| LabelError::Corrupt {
        reason: format!("confidence snapshot {}: {reason}", path.display()),
    };
    let (header_str, payload) =
        split_envelope(&bytes).map_err(|e| corrupt(format!("bad envelope: {e}")))?;
    let header: SnapshotHeader =
        serde_json::from_str(header_str).map_err(|e| corrupt(format!("bad header: {e}")))?;
    if header.magic != SNAPSHOT_MAGIC || header.version != SNAPSHOT_VERSION {
        return Err(corrupt(format!(
            "magic/version {}/{} unsupported",
            header.magic, header.version
        )));
    }
    let actual = fnv1a(payload);
    if header.payload_fnv1a != actual {
        return Err(corrupt(format!(
            "payload checksum {actual:016x} != header {:016x}",
            header.payload_fnv1a
        )));
    }
    let payload_str =
        std::str::from_utf8(payload).map_err(|_| corrupt("payload not UTF-8".into()))?;
    let snapshot: ConfidenceSnapshot =
        serde_json::from_str(payload_str).map_err(|e| corrupt(format!("bad payload: {e}")))?;
    if snapshot.schema != SNAPSHOT_SCHEMA {
        return Err(corrupt(format!(
            "schema {:?}, expected {SNAPSHOT_SCHEMA:?}",
            snapshot.schema
        )));
    }
    if header.covered_seq != snapshot.covered_seq {
        return Err(corrupt(format!(
            "header covers seq {} but payload claims {}",
            header.covered_seq, snapshot.covered_seq
        )));
    }
    Ok(Some(snapshot))
}

/// Atomically writes the snapshot (checksummed envelope, temp + fsync +
/// rename): after a crash the directory holds either the previous snapshot
/// state or this one, never a torn mix.
pub fn write_snapshot(path: &Path, snapshot: &ConfidenceSnapshot) -> Result<()> {
    let payload = serde_json::to_string(snapshot).map_err(|e| LabelError::Corrupt {
        reason: format!("snapshot serialization failed: {e}"),
    })?;
    let header = SnapshotHeader {
        magic: SNAPSHOT_MAGIC.to_string(),
        version: SNAPSHOT_VERSION,
        covered_seq: snapshot.covered_seq,
        payload_fnv1a: fnv1a(payload.as_bytes()),
    };
    let header_json = serde_json::to_string(&header).map_err(|e| LabelError::Corrupt {
        reason: format!("snapshot header serialization failed: {e}"),
    })?;
    let bytes = encode_envelope(&header_json, &payload);
    atomic_write(path, &bytes).map_err(|e| LabelError::io(path, "write", e))
}

/// Freezes the tracker + dedup state into a snapshot covering `covered_seq`.
pub fn build_snapshot(
    tracker: &ConfidenceTracker,
    dedup: &DedupMap,
    covered_seq: u64,
) -> ConfidenceSnapshot {
    let mut examples = Vec::with_capacity(tracker.table.len());
    for (&example, workers) in &tracker.table {
        examples.push(SnapshotExample {
            example,
            last_seq: tracker.last_seq.get(&example).copied().unwrap_or(0),
            votes: workers.iter().map(|(&w, &l)| (w, l)).collect(),
        });
    }
    let receipts = dedup
        .entries()
        .map(|((session, request), receipt)| SnapshotReceipt {
            session,
            request,
            receipt: *receipt,
        })
        .collect();
    ConfidenceSnapshot {
        schema: SNAPSHOT_SCHEMA.to_string(),
        estimator: tracker.estimator().name().to_string(),
        covered_seq,
        applied_seq: tracker.applied_seq,
        examples,
        receipts,
    }
}

/// Rebuilds a tracker from a snapshot, validating the estimator matches.
pub fn restore_tracker(
    snapshot: &ConfidenceSnapshot,
    estimator: ConfidenceEstimator,
) -> Result<ConfidenceTracker> {
    if snapshot.estimator != estimator.name() {
        return Err(LabelError::InvalidConfig {
            reason: format!(
                "confidence snapshot was taken with estimator {:?}, store uses {:?} — \
                 confidences would not be comparable",
                snapshot.estimator,
                estimator.name()
            ),
        });
    }
    let mut tracker = ConfidenceTracker::new(estimator)?;
    for ex in &snapshot.examples {
        let mut workers = BTreeMap::new();
        for &(worker, label) in &ex.votes {
            if label > 1 {
                return Err(LabelError::Corrupt {
                    reason: format!(
                        "snapshot cell ({}, {worker}) holds non-binary label {label}",
                        ex.example
                    ),
                });
            }
            workers.insert(worker, label);
        }
        tracker.table.insert(ex.example, workers);
        tracker.last_seq.insert(ex.example, ex.last_seq);
    }
    tracker.applied_seq = snapshot.applied_seq;
    Ok(tracker)
}

/// Rebuilds the dedup table from a snapshot.
pub(crate) fn restore_dedup(snapshot: &ConfidenceSnapshot, capacity: usize) -> DedupMap {
    let mut dedup = DedupMap::new(capacity);
    for entry in &snapshot.receipts {
        dedup.insert((entry.session, entry.request), entry.receipt);
    }
    dedup
}

/// Applies one replayed record to the rebuilt state, mirroring what live
/// ingest did: tracker cell update, then (for keyed votes) the dedup receipt
/// recorded with exactly the post-apply counts.
pub(crate) fn apply_replayed(
    tracker: &mut ConfidenceTracker,
    dedup: &mut DedupMap,
    record: &VoteRecord,
) -> Result<()> {
    let conf = tracker.apply(record)?;
    if let Some(key) = record.key() {
        dedup.insert(
            key,
            IngestReceipt {
                seq: record.seq,
                example: record.example,
                worker: record.worker,
                label: record.label,
                votes: conf.votes,
                positive: conf.positive,
                confidence: conf.confidence,
            },
        );
    }
    Ok(())
}

/// Rebuilds `(tracker, dedup)` at `up_to_seq` from the snapshot on disk plus
/// the given replayed records: snapshot state first, then every record with
/// `covered_seq < seq <= up_to_seq` in order. The `seq > covered_seq` filter
/// is load-bearing — surviving segments may still hold records the snapshot
/// already covers, and re-applying one would roll a last-write-wins cell
/// back to an older value.
pub(crate) fn rebuild_state(
    snapshot: Option<&ConfidenceSnapshot>,
    estimator: ConfidenceEstimator,
    dedup_capacity: usize,
    records: &[VoteRecord],
    up_to_seq: u64,
) -> Result<(ConfidenceTracker, DedupMap, u64)> {
    let covered = snapshot.map(|s| s.covered_seq).unwrap_or(0);
    let mut tracker = match snapshot {
        Some(s) => restore_tracker(s, estimator)?,
        None => ConfidenceTracker::new(estimator)?,
    };
    let mut dedup = match snapshot {
        Some(s) => restore_dedup(s, dedup_capacity),
        None => DedupMap::new(dedup_capacity),
    };
    for record in records {
        if record.seq > covered && record.seq <= up_to_seq {
            apply_replayed(&mut tracker, &mut dedup, record)?;
        }
    }
    Ok((tracker, dedup, covered))
}

/// Runs one compaction: fold everything at or below `target_seq` into the
/// snapshot, then delete the sealed segments it covers. Safe to run while
/// appends continue (it only reads immutable records below the target and
/// deletes segments the snapshot covers); concurrent *compactions* are
/// excluded by the store's `compact` lock.
///
/// This is the raw mechanism; it trusts `target_seq`. Use
/// [`crate::store::LabelStore::compact_below_manifest`] for the
/// manifest-gated policy.
pub fn compact_wal(
    config: &WalConfig,
    estimator: ConfidenceEstimator,
    dedup_capacity: usize,
    target_seq: u64,
    interrupt: CompactInterrupt,
) -> Result<CompactionStats> {
    let path = snapshot_path(config);
    let existing = read_snapshot(&path)?;
    let covered_before = existing.as_ref().map(|s| s.covered_seq).unwrap_or(0);

    let mut stats = CompactionStats {
        target_seq,
        covered_seq: covered_before,
        snapshot_written: false,
        segments_deleted: 0,
        records_dropped: 0,
        bytes_reclaimed: 0,
        wal_bytes_after: 0,
        interrupted: false,
    };

    if target_seq > covered_before {
        let replay = replay_read_only(config)?;
        let (tracker, dedup, _) = rebuild_state(
            existing.as_ref(),
            estimator,
            dedup_capacity,
            &replay.records,
            target_seq,
        )?;
        write_snapshot(&path, &build_snapshot(&tracker, &dedup, target_seq))?;
        stats.snapshot_written = true;
        stats.covered_seq = target_seq;
        match interrupt {
            CompactInterrupt::AbortAfterSnapshot => std::process::abort(),
            CompactInterrupt::StopAfterSnapshot => {
                stats.interrupted = true;
                stats.wal_bytes_after = wal_dir_bytes(config)?;
                return Ok(stats);
            }
            _ => {}
        }
    }

    // Deletion eligibility is derived from what the snapshot on disk
    // actually covers — never ahead of it.
    let delete_below = target_seq.min(stats.covered_seq);
    for seg in compactable_segments(config, delete_below)? {
        fs::remove_file(&seg.path).map_err(|e| LabelError::io(&seg.path, "delete", e))?;
        stats.segments_deleted += 1;
        stats.records_dropped += seg.records;
        stats.bytes_reclaimed += seg.bytes;
        if stats.segments_deleted == 1 {
            match interrupt {
                CompactInterrupt::AbortAfterFirstDelete => std::process::abort(),
                CompactInterrupt::StopAfterFirstDelete => {
                    stats.interrupted = true;
                    stats.wal_bytes_after = wal_dir_bytes(config)?;
                    return Ok(stats);
                }
                _ => {}
            }
        }
    }
    stats.wal_bytes_after = wal_dir_bytes(config)?;
    Ok(stats)
}
