//! Online per-example confidence tracking (paper eq. 1–2, incrementally).
//!
//! [`ConfidenceTracker`] maintains the per-(example, worker) vote table as
//! votes stream in and computes each example's confidence with the *same*
//! [`ConfidenceEstimator`] the batch pipeline uses — so a tracker replayed
//! over a WAL matches the batch estimator **bitwise** on identical votes
//! (there is no separate incremental formula to drift; the counts are
//! identical and the arithmetic is the shared `positiveness`).
//!
//! Votes are last-write-wins per (example, worker), mirroring
//! [`rll_crowd::AnnotationMatrix::set`] — which makes replay idempotent:
//! applying the same record twice leaves the table unchanged.

use std::collections::BTreeMap;

use rll_crowd::{AnnotationMatrix, ConfidenceEstimator};
use serde::{Deserialize, Serialize};

use crate::error::{LabelError, Result};
use crate::wal::VoteRecord;

/// Schema tag of [`LabelsSnapshot`] (the `GET /labels` wire format).
pub const LABELS_SCHEMA: &str = "labels/v1";

/// One example's live confidence state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExampleConfidence {
    /// Dataset row.
    pub example: u64,
    /// Distinct live workers with a current vote on this example.
    pub votes: u64,
    /// How many of those votes are positive.
    pub positive: u64,
    /// Estimator confidence δ of "this example is positive". Always finite
    /// (degenerate priors are rejected at construction and again by the
    /// estimator's open-interval guard).
    pub confidence: f64,
    /// Largest sequence number that touched this example.
    pub last_seq: u64,
}

/// Deterministic snapshot of the whole tracker — byte-identical across a
/// kill-and-restart replay of the same votes (examples sorted by id, counts
/// and confidences derived from identical tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelsSnapshot {
    /// Always [`LABELS_SCHEMA`].
    pub schema: String,
    /// Estimator variant name (`mle`, `bayesian`, `none`).
    pub estimator: String,
    /// Largest applied sequence number.
    pub high_water_seq: u64,
    /// Current (example, worker) vote cells.
    pub votes: u64,
    /// Per-example confidence, sorted by example id.
    pub examples: Vec<ExampleConfidence>,
}

/// Incrementally maintained vote table + confidence view.
#[derive(Debug, Clone)]
pub struct ConfidenceTracker {
    estimator: ConfidenceEstimator,
    /// example → (worker → label); BTreeMaps keep every derived view (and
    /// the snapshot serialization) deterministic. Crate-visible so the
    /// compaction codec ([`crate::compact`]) can export/restore the exact
    /// cell state without an intermediate copy.
    pub(crate) table: BTreeMap<u64, BTreeMap<u32, u8>>,
    /// example → largest seq that touched it.
    pub(crate) last_seq: BTreeMap<u64, u64>,
    pub(crate) applied_seq: u64,
}

impl ConfidenceTracker {
    /// Creates an empty tracker, validating the estimator up front so a
    /// degenerate Bayesian prior is rejected before any vote arrives.
    pub fn new(estimator: ConfidenceEstimator) -> Result<Self> {
        if let ConfidenceEstimator::Bayesian(prior) = estimator {
            if !(prior.alpha > 0.0
                && prior.beta > 0.0
                && prior.alpha.is_finite()
                && prior.beta.is_finite())
            {
                return Err(LabelError::InvalidConfig {
                    reason: format!(
                        "Bayesian tracker requires finite positive prior, got ({}, {})",
                        prior.alpha, prior.beta
                    ),
                });
            }
        }
        Ok(ConfidenceTracker {
            estimator,
            table: BTreeMap::new(),
            last_seq: BTreeMap::new(),
            applied_seq: 0,
        })
    }

    /// The estimator in use.
    pub fn estimator(&self) -> ConfidenceEstimator {
        self.estimator
    }

    /// Largest applied sequence number (0 when empty).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Current (example, worker) cell count.
    pub fn vote_cells(&self) -> u64 {
        self.table.values().map(|w| w.len() as u64).sum()
    }

    /// Examples with at least one vote.
    pub fn examples_voted(&self) -> usize {
        self.table.len()
    }

    /// Applies one durable vote record and returns the example's updated
    /// confidence. Last-write-wins per (example, worker): re-applying a
    /// record is a no-op, which makes WAL replay idempotent.
    pub fn apply(&mut self, record: &VoteRecord) -> Result<ExampleConfidence> {
        if record.label > 1 {
            return Err(LabelError::InvalidVote {
                reason: format!("label {} is not binary", record.label),
            });
        }
        self.table
            .entry(record.example)
            .or_default()
            .insert(record.worker, record.label);
        let last = self.last_seq.entry(record.example).or_insert(0);
        *last = (*last).max(record.seq);
        self.applied_seq = self.applied_seq.max(record.seq);
        self.confidence(record.example)?
            .ok_or_else(|| LabelError::Corrupt {
                reason: format!("vote for example {} vanished mid-apply", record.example),
            })
    }

    /// The example's current confidence, or `None` if it has no votes.
    pub fn confidence(&self, example: u64) -> Result<Option<ExampleConfidence>> {
        let Some(workers) = self.table.get(&example) else {
            return Ok(None);
        };
        let total = workers.len();
        let positive = workers.values().filter(|&&l| l == 1).count();
        let confidence = self.estimator.positiveness(positive, total)?;
        Ok(Some(ExampleConfidence {
            example,
            votes: total as u64,
            positive: positive as u64,
            confidence,
            last_seq: self.last_seq.get(&example).copied().unwrap_or(0),
        }))
    }

    /// Mean confidence over voted examples; `0.0` when none (never NaN).
    pub fn mean_confidence(&self) -> Result<f64> {
        if self.table.is_empty() {
            return Ok(0.0);
        }
        let mut sum = 0.0;
        for &example in self.table.keys() {
            if let Some(conf) = self.confidence(example)? {
                sum += conf.confidence;
            }
        }
        Ok(sum / self.table.len() as f64)
    }

    /// Deterministic full snapshot (the `GET /labels` body).
    pub fn snapshot(&self) -> Result<LabelsSnapshot> {
        let mut examples = Vec::with_capacity(self.table.len());
        for &example in self.table.keys() {
            if let Some(conf) = self.confidence(example)? {
                examples.push(conf);
            }
        }
        Ok(LabelsSnapshot {
            schema: LABELS_SCHEMA.to_string(),
            estimator: self.estimator.name().to_string(),
            high_water_seq: self.applied_seq,
            votes: self.vote_cells(),
            examples,
        })
    }

    /// Folds the live votes into a copy of the base annotation matrix for an
    /// incremental retrain. Live worker `w` maps to column
    /// `base.num_workers() + w`; the output width is fixed at
    /// `base.num_workers() + max_workers` regardless of which workers have
    /// voted, so the fold is deterministic across restarts. The row count is
    /// unchanged — `resume_fit`'s input-dimension check stays satisfied.
    pub fn fold_into(&self, base: &AnnotationMatrix, max_workers: u32) -> Result<AnnotationMatrix> {
        self.fold_into_filtered(base, max_workers, &[])
    }

    /// [`ConfidenceTracker::fold_into`] with a live-worker exclusion list:
    /// votes from `excluded` workers are left out of the fold (their columns
    /// stay empty, so the output width — and `resume_fit`'s dimension check —
    /// is unchanged). This is how the retrainer down-weights annotators whose
    /// fitted confusion rows carry no signal.
    pub fn fold_into_filtered(
        &self,
        base: &AnnotationMatrix,
        max_workers: u32,
        excluded: &[u32],
    ) -> Result<AnnotationMatrix> {
        let base_workers = base.num_workers();
        let width = base_workers + max_workers as usize;
        let mut folded =
            AnnotationMatrix::new(base.num_items(), width, 2).map_err(LabelError::Confidence)?;
        for item in 0..base.num_items() {
            for worker in 0..base_workers {
                if let Some(label) = base.get(item, worker)? {
                    folded.set(item, worker, label)?;
                }
            }
        }
        for (&example, workers) in &self.table {
            let item = example as usize;
            if item >= base.num_items() {
                return Err(LabelError::InvalidVote {
                    reason: format!(
                        "vote for example {example} outside the {}-item dataset",
                        base.num_items()
                    ),
                });
            }
            for (&worker, &label) in workers {
                if (worker as usize) >= max_workers as usize {
                    return Err(LabelError::InvalidVote {
                        reason: format!("worker {worker} outside the {max_workers}-worker budget"),
                    });
                }
                if excluded.contains(&worker) {
                    continue;
                }
                folded.set(item, base_workers + worker as usize, label)?;
            }
        }
        Ok(folded)
    }

    /// The live votes alone as an annotation table (`num_examples` rows ×
    /// `max_workers` columns) — the input for fitting a Dawid–Skene model
    /// over the *live* annotators only, from which per-worker quality is
    /// derived.
    pub fn live_matrix(&self, num_examples: u64, max_workers: u32) -> Result<AnnotationMatrix> {
        let mut live = AnnotationMatrix::new(num_examples as usize, max_workers as usize, 2)
            .map_err(LabelError::Confidence)?;
        for (&example, workers) in &self.table {
            if example >= num_examples {
                return Err(LabelError::InvalidVote {
                    reason: format!(
                        "vote for example {example} outside the {num_examples}-item dataset"
                    ),
                });
            }
            for (&worker, &label) in workers {
                if worker >= max_workers {
                    return Err(LabelError::InvalidVote {
                        reason: format!("worker {worker} outside the {max_workers}-worker budget"),
                    });
                }
                live.set(example as usize, worker as usize, label)?;
            }
        }
        Ok(live)
    }
}
