//! Typed errors for the label subsystem.

use std::fmt;

/// Everything that can go wrong ingesting, persisting, or retraining from
/// crowd votes. WAL *corruption* is deliberately not an error variant:
/// replay degrades gracefully (truncate at the first bad record) and reports
/// what it dropped through [`crate::wal::Corruption`] values instead of
/// failing the whole recovery.
#[derive(Debug)]
pub enum LabelError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Short verb for the failed operation (`"create"`, `"append"`, …).
        op: &'static str,
        /// The underlying I/O error, stringified.
        reason: String,
    },
    /// A vote failed validation before touching the WAL.
    InvalidVote { reason: String },
    /// A configuration value is out of range or inconsistent.
    InvalidConfig { reason: String },
    /// The WAL is structurally unrecoverable (not per-record corruption —
    /// e.g. the same sequence number recovered from two shards).
    Corrupt { reason: String },
    /// Confidence estimation failed (degenerate prior, vote bookkeeping).
    Confidence(rll_crowd::CrowdError),
    /// An incremental retrain round failed inside the training stack.
    Train { reason: String },
    /// The publish hook (checkpoint write / reload) rejected a round.
    Publish { reason: String },
}

pub type Result<T> = std::result::Result<T, LabelError>;

impl LabelError {
    /// Shorthand for wrapping an `io::Error` with its path and operation.
    pub fn io(path: &std::path::Path, op: &'static str, err: std::io::Error) -> Self {
        LabelError::Io {
            path: path.display().to_string(),
            op,
            reason: err.to_string(),
        }
    }
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelError::Io { path, op, reason } => {
                write!(f, "wal {op} failed for {path}: {reason}")
            }
            LabelError::InvalidVote { reason } => write!(f, "invalid vote: {reason}"),
            LabelError::InvalidConfig { reason } => write!(f, "invalid label config: {reason}"),
            LabelError::Corrupt { reason } => write!(f, "unrecoverable WAL state: {reason}"),
            LabelError::Confidence(e) => write!(f, "confidence update failed: {e}"),
            LabelError::Train { reason } => write!(f, "incremental retrain failed: {reason}"),
            LabelError::Publish { reason } => write!(f, "model publish failed: {reason}"),
        }
    }
}

impl std::error::Error for LabelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabelError::Confidence(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rll_crowd::CrowdError> for LabelError {
    fn from(e: rll_crowd::CrowdError) -> Self {
        LabelError::Confidence(e)
    }
}
