//! Two-stage pipelines (the paper's Group 3): first infer labels from the
//! crowd, then learn an embedding from the inferred labels.
//!
//! These address the two crowdsourcing problems *sequentially* — label
//! inconsistency in stage one, label scarcity in stage two — which is exactly
//! the coupling RLL's joint objective removes. The pipeline is generic over
//! the Group-1 aggregator and the Group-2 embedder, covering every
//! `X+Y` row of Table I.

use crate::embedder::Embedder;
use crate::error::BaselineError;
use crate::relation::{RelationNet, RelationNetConfig};
use crate::siamese::{SiameseNet, SiameseNetConfig};
use crate::triplet::{TripletNet, TripletNetConfig};
use crate::Result;
use rll_crowd::aggregate::{Aggregator, DawidSkene, Glad, MajorityVote};
use rll_crowd::AnnotationMatrix;
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Stage-one label inference method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMethod {
    /// Majority vote (ties toward positive).
    MajorityVote,
    /// Dawid–Skene EM.
    Em,
    /// GLAD (worker expertise × item difficulty).
    Glad,
}

impl AggregationMethod {
    /// Infers hard labels from an annotation table.
    pub fn infer(&self, annotations: &AnnotationMatrix) -> Result<Vec<u8>> {
        match self {
            AggregationMethod::MajorityVote => {
                Ok(MajorityVote::positive_ties().hard_labels(annotations)?)
            }
            AggregationMethod::Em => Ok(DawidSkene::default().hard_labels(annotations)?),
            AggregationMethod::Glad => Ok(Glad::default().hard_labels(annotations)?),
        }
    }

    /// Method name as it appears in Table I.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationMethod::MajorityVote => "MV",
            AggregationMethod::Em => "EM",
            AggregationMethod::Glad => "GLAD",
        }
    }
}

/// Stage-two embedding method with its configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmbeddingMethod {
    /// Contrastive Siamese network.
    Siamese(SiameseNetConfig),
    /// Triplet-margin network.
    Triplet(TripletNetConfig),
    /// Relation network.
    Relation(RelationNetConfig),
}

impl EmbeddingMethod {
    fn build(&self) -> Result<Box<dyn Embedder>> {
        Ok(match self {
            EmbeddingMethod::Siamese(cfg) => Box::new(SiameseNet::new(cfg.clone())?),
            EmbeddingMethod::Triplet(cfg) => Box::new(TripletNet::new(cfg.clone())?),
            EmbeddingMethod::Relation(cfg) => Box::new(RelationNet::new(cfg.clone())?),
        })
    }

    /// Method name as it appears in Table I.
    pub fn name(&self) -> &'static str {
        match self {
            EmbeddingMethod::Siamese(_) => "SiameseNet",
            EmbeddingMethod::Triplet(_) => "TripletNet",
            EmbeddingMethod::Relation(_) => "RelationNet",
        }
    }
}

/// A Group-3 pipeline: `aggregate → embed`.
pub struct TwoStagePipeline {
    aggregation: AggregationMethod,
    embedding: EmbeddingMethod,
    embedder: Option<Box<dyn Embedder>>,
    inferred_labels: Vec<u8>,
}

impl TwoStagePipeline {
    /// Creates an unfitted pipeline.
    pub fn new(aggregation: AggregationMethod, embedding: EmbeddingMethod) -> Self {
        TwoStagePipeline {
            aggregation,
            embedding,
            embedder: None,
            inferred_labels: Vec::new(),
        }
    }

    /// Combined name, e.g. `"SiameseNet+EM"`.
    pub fn name(&self) -> String {
        format!("{}+{}", self.embedding.name(), self.aggregation.name())
    }

    /// Stage one then stage two.
    pub fn fit(
        &mut self,
        features: &Matrix,
        annotations: &AnnotationMatrix,
        seed: u64,
    ) -> Result<()> {
        if features.rows() != annotations.num_items() {
            return Err(BaselineError::InvalidConfig {
                reason: format!(
                    "{} feature rows for {} annotated items",
                    features.rows(),
                    annotations.num_items()
                ),
            });
        }
        let labels = self.aggregation.infer(annotations)?;
        let mut embedder = self.embedding.build()?;
        embedder.fit(features, &labels, seed)?;
        self.inferred_labels = labels;
        self.embedder = Some(embedder);
        Ok(())
    }

    /// The labels stage one inferred (available after [`TwoStagePipeline::fit`]).
    pub fn inferred_labels(&self) -> &[u8] {
        &self.inferred_labels
    }

    /// Embeds features with the stage-two model.
    pub fn embed(&self, features: &Matrix) -> Result<Matrix> {
        self.embedder
            .as_ref()
            .ok_or(BaselineError::NotFitted {
                model: "TwoStagePipeline",
            })?
            .embed(features)
    }

    /// Embedding dimensionality.
    pub fn embedding_dim(&self) -> usize {
        match &self.embedding {
            EmbeddingMethod::Siamese(c) => c.embedding_dim,
            EmbeddingMethod::Triplet(c) => c.embedding_dim,
            EmbeddingMethod::Relation(c) => c.embedding_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_crowd::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn crowd_dataset(n: usize, seed: u64) -> (Matrix, AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.5));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.5).unwrap(),
                rng.normal(-c, 0.5).unwrap(),
            ]);
            truth.push(l);
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let pool = WorkerPool::new(vec![
            WorkerModel::OneCoin { accuracy: 0.85 },
            WorkerModel::OneCoin { accuracy: 0.8 },
            WorkerModel::OneCoin { accuracy: 0.75 },
        ]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (features, ann, truth)
    }

    fn fast_siamese() -> EmbeddingMethod {
        EmbeddingMethod::Siamese(SiameseNetConfig {
            epochs: 10,
            pairs_per_epoch: 64,
            ..Default::default()
        })
    }

    #[test]
    fn pipeline_names() {
        let p = TwoStagePipeline::new(AggregationMethod::Em, fast_siamese());
        assert_eq!(p.name(), "SiameseNet+EM");
        let p = TwoStagePipeline::new(
            AggregationMethod::Glad,
            EmbeddingMethod::Triplet(TripletNetConfig::default()),
        );
        assert_eq!(p.name(), "TripletNet+GLAD");
        let p = TwoStagePipeline::new(
            AggregationMethod::MajorityVote,
            EmbeddingMethod::Relation(RelationNetConfig::default()),
        );
        assert_eq!(p.name(), "RelationNet+MV");
    }

    #[test]
    fn fits_and_embeds() {
        let (x, ann, _) = crowd_dataset(60, 1);
        let mut p = TwoStagePipeline::new(AggregationMethod::Em, fast_siamese());
        p.fit(&x, &ann, 7).unwrap();
        let emb = p.embed(&x).unwrap();
        assert_eq!(emb.shape(), (60, p.embedding_dim()));
        assert_eq!(p.inferred_labels().len(), 60);
    }

    #[test]
    fn stage_one_labels_track_truth() {
        let (x, ann, truth) = crowd_dataset(150, 2);
        let mut p = TwoStagePipeline::new(AggregationMethod::Em, fast_siamese());
        p.fit(&x, &ann, 7).unwrap();
        let acc = p
            .inferred_labels()
            .iter()
            .zip(&truth)
            .filter(|(a, b)| a == b)
            .count() as f64
            / truth.len() as f64;
        assert!(acc > 0.85, "stage-one accuracy {acc}");
    }

    #[test]
    fn all_aggregation_methods_work() {
        let (x, ann, _) = crowd_dataset(50, 3);
        for agg in [
            AggregationMethod::MajorityVote,
            AggregationMethod::Em,
            AggregationMethod::Glad,
        ] {
            let mut p = TwoStagePipeline::new(agg, fast_siamese());
            p.fit(&x, &ann, 9).unwrap();
            assert_eq!(p.embed(&x).unwrap().rows(), 50);
        }
    }

    #[test]
    fn errors_before_fit_and_on_mismatch() {
        let p = TwoStagePipeline::new(AggregationMethod::Em, fast_siamese());
        assert!(matches!(
            p.embed(&Matrix::ones(1, 2)),
            Err(BaselineError::NotFitted { .. })
        ));
        let (x, ann, _) = crowd_dataset(20, 4);
        let mut p = TwoStagePipeline::new(AggregationMethod::Em, fast_siamese());
        let wrong = Matrix::zeros(5, 2);
        assert!(p.fit(&wrong, &ann, 1).is_err());
        drop(x);
    }
}
