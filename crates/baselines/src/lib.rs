#![warn(missing_docs)]

//! # `rll-baselines` — comparison methods from the paper's evaluation
//!
//! Implements every baseline Table I compares RLL against, plus the logistic
//! regression that serves as the downstream classifier for *all* methods
//! (including RLL itself):
//!
//! - [`LogisticRegression`] — L2-regularized, trained by gradient descent on
//!   hard, soft, or per-example-weighted targets (the paper's "basic
//!   classifier", also the Group-1 `SoftProb`/`EM`/`GLAD` classifier);
//! - Group 2, representation learning with limited labels:
//!   [`SiameseNet`] (contrastive pairs), [`TripletNet`] (anchor /
//!   positive / negative), [`RelationNet`] (learned pairwise relation score);
//! - Group 3, two-stage pipelines: [`two_stage::TwoStagePipeline`] combines a
//!   Group-1 label inference with a Group-2 embedding learner.
//!
//! All embedding learners implement the common [`Embedder`] trait so the
//! evaluation harness can treat them interchangeably.

pub mod embedder;
pub mod error;
pub mod logreg;
pub mod mlp_classifier;
pub mod relation;
pub mod sampler;
pub mod siamese;
pub mod triplet;
pub mod two_stage;

pub use embedder::Embedder;
pub use error::BaselineError;
pub use logreg::{LogisticRegression, LogisticRegressionConfig};
pub use mlp_classifier::{MlpClassifier, MlpClassifierConfig};
pub use relation::{RelationNet, RelationNetConfig};
pub use siamese::{SiameseNet, SiameseNetConfig};
pub use triplet::{TripletNet, TripletNetConfig};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, BaselineError>;
