//! RelationNet (Sung et al., CVPR 2018): learned pairwise relation scores.
//!
//! Two modules: an embedding MLP `f` and a relation MLP `g` that scores the
//! concatenation `[f(a), f(b)]` with a sigmoid output. Training regresses the
//! relation score onto the same-class indicator with MSE, exactly as the
//! original few-shot formulation does. [`Embedder::embed`] exposes the
//! embedding module's output.

use crate::embedder::Embedder;
use crate::error::BaselineError;
use crate::sampler::sample_pairs;
use crate::Result;
use rll_nn::{loss, Activation, Adam, Mlp, MlpConfig, Optimizer};
use rll_tensor::{init::Init, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`RelationNet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationNetConfig {
    /// Hidden layer sizes of the embedding module.
    pub embed_hidden_dims: Vec<usize>,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Hidden layer sizes of the relation module.
    pub relation_hidden_dims: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for RelationNetConfig {
    fn default() -> Self {
        RelationNetConfig {
            embed_hidden_dims: vec![64, 32],
            embedding_dim: 16,
            relation_hidden_dims: vec![16],
            epochs: 30,
            pairs_per_epoch: 256,
            learning_rate: 1e-3,
        }
    }
}

impl RelationNetConfig {
    fn validate(&self) -> Result<()> {
        if self.embedding_dim == 0 || self.epochs == 0 || self.pairs_per_epoch == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "embedding_dim, epochs, and pairs_per_epoch must be positive".into(),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                reason: "learning_rate must be positive".into(),
            });
        }
        Ok(())
    }
}

/// The relation network.
#[derive(Debug, Clone)]
pub struct RelationNet {
    config: RelationNetConfig,
    embedding: Option<Mlp>,
    relation: Option<Mlp>,
}

impl RelationNet {
    /// Creates an unfitted network.
    pub fn new(config: RelationNetConfig) -> Result<Self> {
        config.validate()?;
        Ok(RelationNet {
            config,
            embedding: None,
            relation: None,
        })
    }

    /// Creates a network with default hyperparameters.
    pub fn with_defaults() -> Self {
        RelationNet {
            config: RelationNetConfig::default(),
            embedding: None,
            relation: None,
        }
    }

    /// The hyperparameters.
    pub fn config(&self) -> &RelationNetConfig {
        &self.config
    }

    /// Relation scores in `[0, 1]` for aligned rows of `a` and `b`
    /// (1 = confidently same class). Requires a prior fit.
    pub fn relation_scores(&self, a: &Matrix, b: &Matrix) -> Result<Vec<f64>> {
        let embedding = self.embedding.as_ref().ok_or(BaselineError::NotFitted {
            model: "RelationNet",
        })?;
        let relation = self.relation.as_ref().ok_or(BaselineError::NotFitted {
            model: "RelationNet",
        })?;
        let ea = embedding.forward(a)?;
        let eb = embedding.forward(b)?;
        let joint = ea.hstack(&eb)?;
        let scores = relation.forward(&joint)?;
        Ok(scores.col(0)?)
    }
}

impl Embedder for RelationNet {
    fn fit(&mut self, features: &Matrix, labels: &[u8], seed: u64) -> Result<()> {
        if features.rows() != labels.len() {
            return Err(BaselineError::InvalidConfig {
                reason: format!("{} rows for {} labels", features.rows(), labels.len()),
            });
        }
        let mut rng = Rng64::seed_from_u64(seed);
        let mut embedding = Mlp::new(
            &MlpConfig {
                input_dim: features.cols(),
                hidden_dims: self.config.embed_hidden_dims.clone(),
                output_dim: self.config.embedding_dim,
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Identity,
                dropout: 0.0,
                init: Init::XavierNormal,
            },
            &mut rng,
        )?;
        let mut relation = Mlp::new(
            &MlpConfig {
                input_dim: self.config.embedding_dim * 2,
                hidden_dims: self.config.relation_hidden_dims.clone(),
                output_dim: 1,
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Sigmoid,
                dropout: 0.0,
                init: Init::XavierNormal,
            },
            &mut rng,
        )?;
        let mut opt = Adam::new(self.config.learning_rate)?;

        for _ in 0..self.config.epochs {
            let pairs = sample_pairs(labels, self.config.pairs_per_epoch, &mut rng)?;
            let a_idx: Vec<usize> = pairs.iter().map(|p| p.a).collect();
            let b_idx: Vec<usize> = pairs.iter().map(|p| p.b).collect();
            let a = features.select_rows(&a_idx)?;
            let b = features.select_rows(&b_idx)?;
            let targets = Matrix::col_vector(
                &pairs
                    .iter()
                    .map(|p| if p.same { 1.0 } else { 0.0 })
                    .collect::<Vec<f64>>(),
            );

            embedding.zero_grad();
            relation.zero_grad();
            let cache_a = embedding.forward_cached(&a, &mut rng)?;
            let cache_b = embedding.forward_cached(&b, &mut rng)?;
            let joint = cache_a.output().hstack(cache_b.output())?;
            let cache_rel = relation.forward_cached(&joint, &mut rng)?;
            let (_, grad_scores) = loss::mse(cache_rel.output(), &targets)?;
            let grad_joint = relation.backward(&cache_rel, &grad_scores)?;

            // Split the joint gradient back into the two embedding branches.
            let dim = self.config.embedding_dim;
            let rows = grad_joint.rows();
            let mut grad_a = Matrix::zeros(rows, dim);
            let mut grad_b = Matrix::zeros(rows, dim);
            for r in 0..rows {
                let row = grad_joint.row(r)?;
                grad_a.row_mut(r)?.copy_from_slice(&row[..dim]);
                grad_b.row_mut(r)?.copy_from_slice(&row[dim..]);
            }
            embedding.backward(&cache_a, &grad_a)?;
            embedding.backward(&cache_b, &grad_b)?;

            // One optimizer instance steps both modules; collect parameters in
            // a stable order.
            let mut params = embedding.param_grad_pairs();
            params.extend(relation.param_grad_pairs());
            opt.step(params)?;
        }
        self.embedding = Some(embedding);
        self.relation = Some(relation);
        Ok(())
    }

    fn embed(&self, features: &Matrix) -> Result<Matrix> {
        let embedding = self.embedding.as_ref().ok_or(BaselineError::NotFitted {
            model: "RelationNet",
        })?;
        Ok(embedding.forward(features)?)
    }

    fn embedding_dim(&self) -> usize {
        self.config.embedding_dim
    }

    fn name(&self) -> &'static str {
        "RelationNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.5));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.4).unwrap(),
                rng.normal(-c, 0.4).unwrap(),
            ]);
            labels.push(l);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn relation_scores_separate_pairs() {
        let (x, y) = toy_data(80, 1);
        let mut net = RelationNet::new(RelationNetConfig {
            epochs: 50,
            ..Default::default()
        })
        .unwrap();
        net.fit(&x, &y, 3).unwrap();

        // Average relation score of same-class pairs should beat
        // different-class pairs.
        let pos: Vec<usize> = y
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 1)
            .map(|(i, _)| i)
            .collect();
        let neg: Vec<usize> = y
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == 0)
            .map(|(i, _)| i)
            .collect();
        let a_same = x.select_rows(&pos[..8]).unwrap();
        let b_same = x.select_rows(&pos[8..16]).unwrap();
        let same_scores = net.relation_scores(&a_same, &b_same).unwrap();
        let a_diff = x.select_rows(&pos[..8]).unwrap();
        let b_diff = x.select_rows(&neg[..8]).unwrap();
        let diff_scores = net.relation_scores(&a_diff, &b_diff).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same_scores) > mean(&diff_scores) + 0.1,
            "same {} vs diff {}",
            mean(&same_scores),
            mean(&diff_scores)
        );
        assert!(same_scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn embed_shape_and_determinism() {
        let (x, y) = toy_data(40, 2);
        let mut a = RelationNet::with_defaults();
        a.fit(&x, &y, 5).unwrap();
        assert_eq!(a.embed(&x).unwrap().shape(), (40, 16));
        let mut b = RelationNet::with_defaults();
        b.fit(&x, &y, 5).unwrap();
        assert!(a.embed(&x).unwrap().approx_eq(&b.embed(&x).unwrap(), 0.0));
    }

    #[test]
    fn errors_and_validation() {
        let net = RelationNet::with_defaults();
        assert!(matches!(
            net.embed(&Matrix::ones(1, 2)),
            Err(BaselineError::NotFitted { .. })
        ));
        assert!(net
            .relation_scores(&Matrix::ones(1, 2), &Matrix::ones(1, 2))
            .is_err());
        assert!(RelationNet::new(RelationNetConfig {
            learning_rate: 0.0,
            ..Default::default()
        })
        .is_err());
        let mut net = RelationNet::with_defaults();
        assert!(net.fit(&Matrix::ones(2, 2), &[1, 1], 1).is_err());
        assert_eq!(net.name(), "RelationNet");
    }
}
