//! A plain supervised DNN classifier.
//!
//! Not one of the paper's Table I rows, but the obvious thing a practitioner
//! tries first: feed the limited crowd-labeled examples straight into a deep
//! network. The paper's motivation section predicts this "may easily lead to
//! the overfitting problems"; this implementation (with optional
//! early-stopping on a validation split) makes that comparison runnable, and
//! the integration tests demonstrate the train/test gap on small data.

use crate::error::BaselineError;
use crate::Result;
use rll_nn::{loss, Activation, Adam, Mlp, MlpConfig, Optimizer};
use rll_tensor::{init::Init, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`MlpClassifier`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpClassifierConfig {
    /// Hidden layer sizes.
    pub hidden_dims: Vec<usize>,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Dropout on hidden layers.
    pub dropout: f64,
    /// Early stopping: fraction of the data held out for validation
    /// (`0.0` disables early stopping).
    pub validation_fraction: f64,
    /// Early stopping patience in epochs.
    pub patience: usize,
}

impl Default for MlpClassifierConfig {
    fn default() -> Self {
        MlpClassifierConfig {
            hidden_dims: vec![64, 32],
            epochs: 200,
            learning_rate: 1e-3,
            dropout: 0.0,
            validation_fraction: 0.0,
            patience: 10,
        }
    }
}

impl MlpClassifierConfig {
    fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "epochs must be positive".into(),
            });
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(BaselineError::InvalidConfig {
                reason: format!("learning_rate must be positive, got {}", self.learning_rate),
            });
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(BaselineError::InvalidConfig {
                reason: format!("dropout must be in [0, 1), got {}", self.dropout),
            });
        }
        if !(0.0..0.9).contains(&self.validation_fraction) {
            return Err(BaselineError::InvalidConfig {
                reason: format!(
                    "validation_fraction must be in [0, 0.9), got {}",
                    self.validation_fraction
                ),
            });
        }
        if self.validation_fraction > 0.0 && self.patience == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "patience must be positive when early stopping is enabled".into(),
            });
        }
        Ok(())
    }
}

/// A binary MLP classifier trained with BCE-on-logits.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    config: MlpClassifierConfig,
    network: Option<Mlp>,
    /// Epoch the final weights come from (differs from `epochs` when early
    /// stopping triggered).
    stopped_at: usize,
}

impl MlpClassifier {
    /// Creates an unfitted classifier.
    pub fn new(config: MlpClassifierConfig) -> Result<Self> {
        config.validate()?;
        Ok(MlpClassifier {
            config,
            network: None,
            stopped_at: 0,
        })
    }

    /// Creates a classifier with default hyperparameters.
    pub fn with_defaults() -> Self {
        MlpClassifier {
            config: MlpClassifierConfig::default(),
            network: None,
            stopped_at: 0,
        }
    }

    /// The epoch whose weights were kept.
    pub fn stopped_at(&self) -> usize {
        self.stopped_at
    }

    /// Trains on hard binary labels.
    pub fn fit(&mut self, features: &Matrix, labels: &[u8], seed: u64) -> Result<()> {
        if features.rows() != labels.len() {
            return Err(BaselineError::InvalidConfig {
                reason: format!("{} rows for {} labels", features.rows(), labels.len()),
            });
        }
        if features.rows() == 0 {
            return Err(BaselineError::DegenerateData {
                reason: "cannot fit on zero examples".into(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l > 1) {
            return Err(BaselineError::InvalidConfig {
                reason: format!("label {bad} is not binary"),
            });
        }
        let mut rng = Rng64::seed_from_u64(seed);

        // Optional validation split for early stopping.
        let n = features.rows();
        let n_val = ((n as f64) * self.config.validation_fraction).round() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let (val_idx, train_idx) = order.split_at(n_val);
        if train_idx.is_empty() {
            return Err(BaselineError::DegenerateData {
                reason: "validation split left no training data".into(),
            });
        }
        let train_x = features.select_rows(train_idx)?;
        let train_y = Matrix::col_vector(
            &train_idx
                .iter()
                .map(|&i| f64::from(labels[i]))
                .collect::<Vec<_>>(),
        );
        let val_x = features.select_rows(val_idx)?;
        let val_y = Matrix::col_vector(
            &val_idx
                .iter()
                .map(|&i| f64::from(labels[i]))
                .collect::<Vec<_>>(),
        );

        let mut network = Mlp::new(
            &MlpConfig {
                input_dim: features.cols(),
                hidden_dims: self.config.hidden_dims.clone(),
                output_dim: 1,
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Identity,
                dropout: self.config.dropout,
                init: Init::XavierNormal,
            },
            &mut rng,
        )?;
        let mut opt = Adam::new(self.config.learning_rate)?;
        let mut best: Option<(f64, Mlp, usize)> = None;
        let mut since_best = 0usize;
        let mut stopped_at = self.config.epochs;

        for epoch in 0..self.config.epochs {
            network.zero_grad();
            let cache = network.forward_cached(&train_x, &mut rng)?;
            let (_, grad) = loss::bce_with_logits(cache.output(), &train_y)?;
            network.backward(&cache, &grad)?;
            let params = network.param_grad_pairs();
            opt.step(params)?;

            if n_val > 0 {
                let (val_loss, _) = loss::bce_with_logits(&network.forward(&val_x)?, &val_y)?;
                let improved = best.as_ref().is_none_or(|(b, _, _)| val_loss < *b);
                if improved {
                    best = Some((val_loss, network.clone(), epoch + 1));
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= self.config.patience {
                        stopped_at = epoch + 1;
                        break;
                    }
                }
            }
        }
        if let Some((_, best_net, best_epoch)) = best {
            network = best_net;
            stopped_at = best_epoch;
        }
        self.network = Some(network);
        self.stopped_at = stopped_at;
        Ok(())
    }

    /// `P(y = 1 | x)` per row.
    pub fn predict_proba(&self, features: &Matrix) -> Result<Vec<f64>> {
        let network = self.network.as_ref().ok_or(BaselineError::NotFitted {
            model: "MlpClassifier",
        })?;
        let logits = network.forward(features)?;
        Ok(logits
            .col(0)?
            .into_iter()
            .map(rll_tensor::ops::sigmoid)
            .collect())
    }

    /// Hard predictions at threshold 0.5.
    pub fn predict(&self, features: &Matrix) -> Result<Vec<u8>> {
        Ok(self
            .predict_proba(features)?
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, sep: f64, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.5));
            let c = if l == 1 { sep / 2.0 } else { -sep / 2.0 };
            rows.push(vec![
                rng.normal(c, 1.0).unwrap(),
                rng.normal(-c, 1.0).unwrap(),
            ]);
            labels.push(l);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_separable_data() {
        let (x, y) = blobs(150, 3.0, 1);
        let mut clf = MlpClassifier::with_defaults();
        clf.fit(&x, &y, 7).unwrap();
        let pred = clf.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(clf.stopped_at(), 200); // no early stopping configured
    }

    #[test]
    fn overfits_tiny_noisy_data() {
        // The paper's motivation: with very few noisy labels, a DNN memorizes
        // the training set while held-out accuracy stays poor.
        let (train_x, train_y) = blobs(24, 0.8, 2); // tiny, weak separation
        let (test_x, test_y) = blobs(400, 0.8, 3);
        let mut clf = MlpClassifier::new(MlpClassifierConfig {
            epochs: 800,
            ..Default::default()
        })
        .unwrap();
        clf.fit(&train_x, &train_y, 7).unwrap();
        let train_acc = clf
            .predict(&train_x)
            .unwrap()
            .iter()
            .zip(&train_y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / train_y.len() as f64;
        let test_acc = clf
            .predict(&test_x)
            .unwrap()
            .iter()
            .zip(&test_y)
            .filter(|(a, b)| a == b)
            .count() as f64
            / test_y.len() as f64;
        assert!(train_acc > 0.9, "train {train_acc}");
        assert!(
            train_acc - test_acc > 0.15,
            "expected an overfitting gap: train {train_acc} vs test {test_acc}"
        );
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        // Small, noisy, weakly-separated data: validation loss bottoms out
        // early and then rises as the network memorizes — patience triggers.
        let (x, y) = blobs(60, 1.0, 4);
        let mut clf = MlpClassifier::new(MlpClassifierConfig {
            epochs: 2000,
            learning_rate: 5e-3,
            validation_fraction: 0.3,
            patience: 25,
            ..Default::default()
        })
        .unwrap();
        clf.fit(&x, &y, 9).unwrap();
        assert!(clf.stopped_at() < 2000, "stopped at {}", clf.stopped_at());
        // Still a working classifier (on this noise level, well above chance).
        let pred = clf.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn validation_and_errors() {
        assert!(MlpClassifier::new(MlpClassifierConfig {
            epochs: 0,
            ..Default::default()
        })
        .is_err());
        assert!(MlpClassifier::new(MlpClassifierConfig {
            validation_fraction: 0.95,
            ..Default::default()
        })
        .is_err());
        assert!(MlpClassifier::new(MlpClassifierConfig {
            validation_fraction: 0.2,
            patience: 0,
            ..Default::default()
        })
        .is_err());
        let clf = MlpClassifier::with_defaults();
        assert!(matches!(
            clf.predict(&Matrix::ones(1, 2)),
            Err(BaselineError::NotFitted { .. })
        ));
        let mut clf = MlpClassifier::with_defaults();
        assert!(clf.fit(&Matrix::ones(2, 2), &[1], 1).is_err());
        assert!(clf.fit(&Matrix::ones(2, 2), &[1, 2], 1).is_err());
        assert!(clf.fit(&Matrix::zeros(0, 2), &[], 1).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = blobs(60, 2.0, 5);
        let mut a = MlpClassifier::with_defaults();
        a.fit(&x, &y, 11).unwrap();
        let mut b = MlpClassifier::with_defaults();
        b.fit(&x, &y, 11).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }
}
