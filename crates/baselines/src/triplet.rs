//! TripletNet (Schroff et al., FaceNet): triplet-margin embedding learning.

use crate::embedder::Embedder;
use crate::error::BaselineError;
use crate::sampler::sample_triplets;
use crate::Result;
use rll_nn::{loss, Activation, Adam, Mlp, MlpConfig, Optimizer};
use rll_tensor::{init::Init, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`TripletNet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TripletNetConfig {
    /// Hidden layer sizes of the shared encoder.
    pub hidden_dims: Vec<usize>,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Triplets sampled per epoch.
    pub triplets_per_epoch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Triplet margin.
    pub margin: f64,
}

impl Default for TripletNetConfig {
    fn default() -> Self {
        TripletNetConfig {
            hidden_dims: vec![64, 32],
            embedding_dim: 16,
            epochs: 30,
            triplets_per_epoch: 256,
            learning_rate: 1e-3,
            margin: 1.0,
        }
    }
}

impl TripletNetConfig {
    fn validate(&self) -> Result<()> {
        if self.embedding_dim == 0 || self.epochs == 0 || self.triplets_per_epoch == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "embedding_dim, epochs, and triplets_per_epoch must be positive".into(),
            });
        }
        if self.learning_rate <= 0.0 || self.margin <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                reason: "learning_rate and margin must be positive".into(),
            });
        }
        Ok(())
    }
}

/// A triplet network: one shared MLP encoder trained so every anchor sits
/// closer to a same-class example than to a different-class example by at
/// least `margin`.
#[derive(Debug, Clone)]
pub struct TripletNet {
    config: TripletNetConfig,
    encoder: Option<Mlp>,
}

impl TripletNet {
    /// Creates an unfitted network.
    pub fn new(config: TripletNetConfig) -> Result<Self> {
        config.validate()?;
        Ok(TripletNet {
            config,
            encoder: None,
        })
    }

    /// Creates a network with default hyperparameters.
    pub fn with_defaults() -> Self {
        TripletNet {
            config: TripletNetConfig::default(),
            encoder: None,
        }
    }

    /// The hyperparameters.
    pub fn config(&self) -> &TripletNetConfig {
        &self.config
    }
}

impl Embedder for TripletNet {
    fn fit(&mut self, features: &Matrix, labels: &[u8], seed: u64) -> Result<()> {
        if features.rows() != labels.len() {
            return Err(BaselineError::InvalidConfig {
                reason: format!("{} rows for {} labels", features.rows(), labels.len()),
            });
        }
        let mut rng = Rng64::seed_from_u64(seed);
        let mut encoder = Mlp::new(
            &MlpConfig {
                input_dim: features.cols(),
                hidden_dims: self.config.hidden_dims.clone(),
                output_dim: self.config.embedding_dim,
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Identity,
                dropout: 0.0,
                init: Init::XavierNormal,
            },
            &mut rng,
        )?;
        let mut opt = Adam::new(self.config.learning_rate)?;

        for _ in 0..self.config.epochs {
            let triplets = sample_triplets(labels, self.config.triplets_per_epoch, &mut rng)?;
            let a_idx: Vec<usize> = triplets.iter().map(|t| t.anchor).collect();
            let p_idx: Vec<usize> = triplets.iter().map(|t| t.positive).collect();
            let n_idx: Vec<usize> = triplets.iter().map(|t| t.negative).collect();
            let a = features.select_rows(&a_idx)?;
            let p = features.select_rows(&p_idx)?;
            let n = features.select_rows(&n_idx)?;

            encoder.zero_grad();
            let cache_a = encoder.forward_cached(&a, &mut rng)?;
            let cache_p = encoder.forward_cached(&p, &mut rng)?;
            let cache_n = encoder.forward_cached(&n, &mut rng)?;
            let (_, ga, gp, gn) = loss::triplet(
                cache_a.output(),
                cache_p.output(),
                cache_n.output(),
                self.config.margin,
            )?;
            encoder.backward(&cache_a, &ga)?;
            encoder.backward(&cache_p, &gp)?;
            encoder.backward(&cache_n, &gn)?;
            let params = encoder.param_grad_pairs();
            opt.step(params)?;
        }
        self.encoder = Some(encoder);
        Ok(())
    }

    fn embed(&self, features: &Matrix) -> Result<Matrix> {
        let encoder = self.encoder.as_ref().ok_or(BaselineError::NotFitted {
            model: "TripletNet",
        })?;
        Ok(encoder.forward(features)?)
    }

    fn embedding_dim(&self) -> usize {
        self.config.embedding_dim
    }

    fn name(&self) -> &'static str {
        "TripletNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_tensor::ops::euclidean_distance;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.5));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.4).unwrap(),
                rng.normal(-c, 0.4).unwrap(),
                rng.normal(0.0, 1.0).unwrap(),
            ]);
            labels.push(l);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn satisfies_triplet_constraint_on_average() {
        let (x, y) = toy_data(80, 1);
        let mut net = TripletNet::new(TripletNetConfig {
            epochs: 40,
            ..Default::default()
        })
        .unwrap();
        net.fit(&x, &y, 3).unwrap();
        let emb = net.embed(&x).unwrap();

        let (mut same, mut same_n, mut diff, mut diff_n) = (0.0, 0, 0.0, 0);
        for i in 0..emb.rows() {
            for j in (i + 1)..emb.rows() {
                let d = euclidean_distance(emb.row(i).unwrap(), emb.row(j).unwrap()).unwrap();
                if y[i] == y[j] {
                    same += d;
                    same_n += 1;
                } else {
                    diff += d;
                    diff_n += 1;
                }
            }
        }
        let (same, diff) = (same / same_n as f64, diff / diff_n as f64);
        assert!(diff > same, "diff {diff} should exceed same {same}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = toy_data(40, 2);
        let mut a = TripletNet::with_defaults();
        a.fit(&x, &y, 5).unwrap();
        let mut b = TripletNet::with_defaults();
        b.fit(&x, &y, 5).unwrap();
        assert!(a.embed(&x).unwrap().approx_eq(&b.embed(&x).unwrap(), 0.0));
    }

    #[test]
    fn errors_and_validation() {
        let net = TripletNet::with_defaults();
        assert!(matches!(
            net.embed(&Matrix::ones(1, 3)),
            Err(BaselineError::NotFitted { .. })
        ));
        assert!(TripletNet::new(TripletNetConfig {
            epochs: 0,
            ..Default::default()
        })
        .is_err());
        let mut net = TripletNet::with_defaults();
        assert!(net.fit(&Matrix::ones(3, 2), &[1, 1, 1], 1).is_err());
        assert!(net.fit(&Matrix::ones(3, 2), &[1, 0], 1).is_err());
        assert_eq!(net.name(), "TripletNet");
    }
}
