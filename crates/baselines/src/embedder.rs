//! The common interface for embedding learners.

use crate::Result;
use rll_tensor::Matrix;

/// A method that learns a feature → embedding map from (possibly noisy) hard
/// labels. Implemented by [`crate::SiameseNet`], [`crate::TripletNet`],
/// [`crate::RelationNet`], and by `rll-core`'s RLL model (via an adapter in
/// the evaluation harness), so experiments can swap methods freely.
pub trait Embedder {
    /// Trains the embedding on labeled examples. `seed` controls sampling and
    /// initialization; equal seeds give identical models.
    fn fit(&mut self, features: &Matrix, labels: &[u8], seed: u64) -> Result<()>;

    /// Maps features to embeddings. Requires a prior [`Embedder::fit`].
    fn embed(&self, features: &Matrix) -> Result<Matrix>;

    /// Output embedding dimensionality.
    fn embedding_dim(&self) -> usize;

    /// Short method name for reports.
    fn name(&self) -> &'static str;
}
