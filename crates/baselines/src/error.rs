//! Typed errors for the baseline learners.

use rll_crowd::CrowdError;
use rll_nn::NnError;
use rll_tensor::TensorError;
use std::fmt;

/// Errors produced by baseline training and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A neural-network operation failed.
    Nn(NnError),
    /// A crowdsourcing operation failed.
    Crowd(CrowdError),
    /// A model configuration or input was invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// Inference was requested before `fit`.
    NotFitted {
        /// Model name.
        model: &'static str,
    },
    /// The training data cannot support the method (e.g. a single class for a
    /// pair-based sampler).
    DegenerateData {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Tensor(e) => write!(f, "tensor error: {e}"),
            BaselineError::Nn(e) => write!(f, "nn error: {e}"),
            BaselineError::Crowd(e) => write!(f, "crowd error: {e}"),
            BaselineError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            BaselineError::NotFitted { model } => {
                write!(f, "{model} must be fitted before inference")
            }
            BaselineError::DegenerateData { reason } => write!(f, "degenerate data: {reason}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Tensor(e) => Some(e),
            BaselineError::Nn(e) => Some(e),
            BaselineError::Crowd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for BaselineError {
    fn from(e: TensorError) -> Self {
        BaselineError::Tensor(e)
    }
}

impl From<NnError> for BaselineError {
    fn from(e: NnError) -> Self {
        BaselineError::Nn(e)
    }
}

impl From<CrowdError> for BaselineError {
    fn from(e: CrowdError) -> Self {
        BaselineError::Crowd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e: BaselineError = TensorError::Empty { op: "x" }.into();
        assert!(e.source().is_some());
        let e = BaselineError::NotFitted {
            model: "SiameseNet",
        };
        assert!(e.to_string().contains("SiameseNet"));
        let e = BaselineError::DegenerateData {
            reason: "one class".into(),
        };
        assert!(e.to_string().contains("one class"));
    }
}
