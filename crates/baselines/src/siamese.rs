//! SiameseNet (Koch et al.): contrastive embedding learning on pairs.

use crate::embedder::Embedder;
use crate::error::BaselineError;
use crate::sampler::sample_pairs;
use crate::Result;
use rll_nn::{loss, Activation, Adam, Mlp, MlpConfig, Optimizer};
use rll_tensor::{init::Init, Matrix, Rng64};
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`SiameseNet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiameseNetConfig {
    /// Hidden layer sizes of the shared encoder.
    pub hidden_dims: Vec<usize>,
    /// Embedding dimensionality.
    pub embedding_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Pairs sampled per epoch.
    pub pairs_per_epoch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Contrastive margin for dissimilar pairs.
    pub margin: f64,
}

impl Default for SiameseNetConfig {
    fn default() -> Self {
        SiameseNetConfig {
            hidden_dims: vec![64, 32],
            embedding_dim: 16,
            epochs: 30,
            pairs_per_epoch: 256,
            learning_rate: 1e-3,
            margin: 1.0,
        }
    }
}

impl SiameseNetConfig {
    fn validate(&self) -> Result<()> {
        if self.embedding_dim == 0 || self.epochs == 0 || self.pairs_per_epoch == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "embedding_dim, epochs, and pairs_per_epoch must be positive".into(),
            });
        }
        if self.learning_rate <= 0.0 || self.margin <= 0.0 {
            return Err(BaselineError::InvalidConfig {
                reason: "learning_rate and margin must be positive".into(),
            });
        }
        Ok(())
    }
}

/// A Siamese network: one shared MLP encoder trained so same-class pairs sit
/// close and different-class pairs sit at least `margin` apart.
#[derive(Debug, Clone)]
pub struct SiameseNet {
    config: SiameseNetConfig,
    encoder: Option<Mlp>,
}

impl SiameseNet {
    /// Creates an unfitted network.
    pub fn new(config: SiameseNetConfig) -> Result<Self> {
        config.validate()?;
        Ok(SiameseNet {
            config,
            encoder: None,
        })
    }

    /// Creates a network with default hyperparameters.
    pub fn with_defaults() -> Self {
        SiameseNet {
            config: SiameseNetConfig::default(),
            encoder: None,
        }
    }

    /// The hyperparameters.
    pub fn config(&self) -> &SiameseNetConfig {
        &self.config
    }
}

impl Embedder for SiameseNet {
    fn fit(&mut self, features: &Matrix, labels: &[u8], seed: u64) -> Result<()> {
        if features.rows() != labels.len() {
            return Err(BaselineError::InvalidConfig {
                reason: format!("{} rows for {} labels", features.rows(), labels.len()),
            });
        }
        let mut rng = Rng64::seed_from_u64(seed);
        let mut encoder = Mlp::new(
            &MlpConfig {
                input_dim: features.cols(),
                hidden_dims: self.config.hidden_dims.clone(),
                output_dim: self.config.embedding_dim,
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Identity,
                dropout: 0.0,
                init: Init::XavierNormal,
            },
            &mut rng,
        )?;
        let mut opt = Adam::new(self.config.learning_rate)?;

        for _ in 0..self.config.epochs {
            let pairs = sample_pairs(labels, self.config.pairs_per_epoch, &mut rng)?;
            let a_idx: Vec<usize> = pairs.iter().map(|p| p.a).collect();
            let b_idx: Vec<usize> = pairs.iter().map(|p| p.b).collect();
            let same: Vec<bool> = pairs.iter().map(|p| p.same).collect();
            let a = features.select_rows(&a_idx)?;
            let b = features.select_rows(&b_idx)?;

            encoder.zero_grad();
            let cache_a = encoder.forward_cached(&a, &mut rng)?;
            let cache_b = encoder.forward_cached(&b, &mut rng)?;
            let (_, grad_a, grad_b) = loss::contrastive(
                cache_a.output(),
                cache_b.output(),
                &same,
                self.config.margin,
            )?;
            encoder.backward(&cache_a, &grad_a)?;
            encoder.backward(&cache_b, &grad_b)?;
            let params = encoder.param_grad_pairs();
            opt.step(params)?;
        }
        self.encoder = Some(encoder);
        Ok(())
    }

    fn embed(&self, features: &Matrix) -> Result<Matrix> {
        let encoder = self.encoder.as_ref().ok_or(BaselineError::NotFitted {
            model: "SiameseNet",
        })?;
        Ok(encoder.forward(features)?)
    }

    fn embedding_dim(&self) -> usize {
        self.config.embedding_dim
    }

    fn name(&self) -> &'static str {
        "SiameseNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_tensor::ops::euclidean_distance;

    fn toy_data(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.5));
            let c = if l == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(c, 0.4).unwrap(),
                rng.normal(-c, 0.4).unwrap(),
                rng.normal(0.0, 1.0).unwrap(), // nuisance dimension
            ]);
            labels.push(l);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    fn mean_distances(emb: &Matrix, labels: &[u8]) -> (f64, f64) {
        let (mut same, mut same_n, mut diff, mut diff_n) = (0.0, 0, 0.0, 0);
        for i in 0..emb.rows() {
            for j in (i + 1)..emb.rows() {
                let d = euclidean_distance(emb.row(i).unwrap(), emb.row(j).unwrap()).unwrap();
                if labels[i] == labels[j] {
                    same += d;
                    same_n += 1;
                } else {
                    diff += d;
                    diff_n += 1;
                }
            }
        }
        (same / same_n as f64, diff / diff_n as f64)
    }

    #[test]
    fn learns_separated_embedding() {
        let (x, y) = toy_data(80, 1);
        let mut net = SiameseNet::new(SiameseNetConfig {
            epochs: 40,
            ..Default::default()
        })
        .unwrap();
        net.fit(&x, &y, 7).unwrap();
        let emb = net.embed(&x).unwrap();
        assert_eq!(emb.shape(), (80, 16));
        let (same, diff) = mean_distances(&emb, &y);
        assert!(
            diff > same * 1.5,
            "different-class distance {diff} should exceed same-class {same}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = toy_data(40, 2);
        let mut a = SiameseNet::with_defaults();
        a.fit(&x, &y, 5).unwrap();
        let mut b = SiameseNet::with_defaults();
        b.fit(&x, &y, 5).unwrap();
        assert!(a.embed(&x).unwrap().approx_eq(&b.embed(&x).unwrap(), 0.0));
    }

    #[test]
    fn embed_before_fit_errors() {
        let net = SiameseNet::with_defaults();
        assert!(matches!(
            net.embed(&Matrix::ones(1, 3)),
            Err(BaselineError::NotFitted { .. })
        ));
    }

    #[test]
    fn single_class_data_rejected() {
        let x = Matrix::ones(4, 2);
        let mut net = SiameseNet::with_defaults();
        assert!(net.fit(&x, &[1, 1, 1, 1], 1).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(SiameseNet::new(SiameseNetConfig {
            embedding_dim: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SiameseNet::new(SiameseNetConfig {
            margin: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(SiameseNet::new(SiameseNetConfig {
            learning_rate: -1.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn label_row_mismatch_rejected() {
        let (x, _) = toy_data(10, 3);
        let mut net = SiameseNet::with_defaults();
        assert!(net.fit(&x, &[1, 0], 1).is_err());
    }

    #[test]
    fn name_and_dim() {
        let net = SiameseNet::with_defaults();
        assert_eq!(net.name(), "SiameseNet");
        assert_eq!(net.embedding_dim(), 16);
    }
}
