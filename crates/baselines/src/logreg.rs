//! L2-regularized logistic regression.
//!
//! The paper's "basic classifier": every representation method (Groups 1–4)
//! feeds its features or embeddings into logistic regression, so differences
//! in Table I reflect representation quality, not classifier strength. The
//! implementation supports hard labels, *soft* targets (SoftProb, EM/GLAD
//! posteriors), and per-example weights.

use crate::error::BaselineError;
use crate::Result;
use rll_tensor::ops::sigmoid;
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Hyperparameters for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Full-batch gradient steps.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogisticRegressionConfig {
    fn default() -> Self {
        LogisticRegressionConfig {
            learning_rate: 0.5,
            epochs: 400,
            l2: 1e-3,
        }
    }
}

impl LogisticRegressionConfig {
    fn validate(&self) -> Result<()> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(BaselineError::InvalidConfig {
                reason: format!("learning_rate must be positive, got {}", self.learning_rate),
            });
        }
        if self.epochs == 0 {
            return Err(BaselineError::InvalidConfig {
                reason: "epochs must be positive".into(),
            });
        }
        if self.l2 < 0.0 {
            return Err(BaselineError::InvalidConfig {
                reason: format!("l2 must be non-negative, got {}", self.l2),
            });
        }
        Ok(())
    }
}

/// A binary logistic-regression classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    config: LogisticRegressionConfig,
    weights: Option<Vec<f64>>,
    bias: f64,
}

impl LogisticRegression {
    /// Creates an unfitted classifier.
    pub fn new(config: LogisticRegressionConfig) -> Result<Self> {
        config.validate()?;
        Ok(LogisticRegression {
            config,
            weights: None,
            bias: 0.0,
        })
    }

    /// Creates a classifier with default hyperparameters.
    pub fn with_defaults() -> Self {
        LogisticRegression {
            config: LogisticRegressionConfig::default(),
            weights: None,
            bias: 0.0,
        }
    }

    /// Fits on soft targets in `[0, 1]` with optional per-example weights.
    ///
    /// Full-batch gradient descent on the weighted cross-entropy; this is the
    /// most general entry point — [`LogisticRegression::fit`] wraps it for
    /// hard labels.
    pub fn fit_soft(
        &mut self,
        features: &Matrix,
        targets: &[f64],
        sample_weights: Option<&[f64]>,
    ) -> Result<()> {
        let n = features.rows();
        if n == 0 {
            return Err(BaselineError::DegenerateData {
                reason: "cannot fit on zero examples".into(),
            });
        }
        if targets.len() != n {
            return Err(BaselineError::InvalidConfig {
                reason: format!("{} targets for {n} rows", targets.len()),
            });
        }
        if let Some(&bad) = targets.iter().find(|t| !(0.0..=1.0).contains(*t)) {
            return Err(BaselineError::InvalidConfig {
                reason: format!("soft target {bad} outside [0, 1]"),
            });
        }
        if let Some(w) = sample_weights {
            if w.len() != n {
                return Err(BaselineError::InvalidConfig {
                    reason: format!("{} sample weights for {n} rows", w.len()),
                });
            }
            if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                return Err(BaselineError::InvalidConfig {
                    reason: "sample weights must be finite and non-negative".into(),
                });
            }
            if w.iter().sum::<f64>() <= 0.0 {
                return Err(BaselineError::DegenerateData {
                    reason: "all sample weights are zero".into(),
                });
            }
        }

        let dim = features.cols();
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let weight_total: f64 = sample_weights.map(|w| w.iter().sum()).unwrap_or(n as f64);

        for _ in 0..self.config.epochs {
            let mut gw = vec![0.0; dim];
            let mut gb = 0.0;
            for i in 0..n {
                let row = features.row(i)?;
                let z: f64 = weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>() + bias;
                let sw = sample_weights.map_or(1.0, |w| w[i]);
                let err = sw * (sigmoid(z) - targets[i]);
                for (g, &x) in gw.iter_mut().zip(row) {
                    *g += err * x;
                }
                gb += err;
            }
            let step = self.config.learning_rate / weight_total;
            for (w, g) in weights.iter_mut().zip(&gw) {
                *w -= step * g + self.config.learning_rate * self.config.l2 * *w;
            }
            bias -= step * gb;
        }
        self.weights = Some(weights);
        self.bias = bias;
        Ok(())
    }

    /// Fits on hard binary labels.
    pub fn fit(&mut self, features: &Matrix, labels: &[u8]) -> Result<()> {
        if let Some(&bad) = labels.iter().find(|&&l| l > 1) {
            return Err(BaselineError::InvalidConfig {
                reason: format!("label {bad} is not binary"),
            });
        }
        let targets: Vec<f64> = labels.iter().map(|&l| f64::from(l)).collect();
        self.fit_soft(features, &targets, None)
    }

    /// `P(y = 1 | x)` for every row.
    pub fn predict_proba(&self, features: &Matrix) -> Result<Vec<f64>> {
        let weights = self.weights.as_ref().ok_or(BaselineError::NotFitted {
            model: "LogisticRegression",
        })?;
        if features.cols() != weights.len() {
            return Err(BaselineError::InvalidConfig {
                reason: format!(
                    "model fitted on {} features, input has {}",
                    weights.len(),
                    features.cols()
                ),
            });
        }
        let mut out = Vec::with_capacity(features.rows());
        for i in 0..features.rows() {
            let row = features.row(i)?;
            let z: f64 = weights.iter().zip(row).map(|(w, x)| w * x).sum::<f64>() + self.bias;
            out.push(sigmoid(z));
        }
        Ok(out)
    }

    /// Hard predictions at threshold 0.5.
    pub fn predict(&self, features: &Matrix) -> Result<Vec<u8>> {
        Ok(self
            .predict_proba(features)?
            .into_iter()
            .map(|p| u8::from(p > 0.5))
            .collect())
    }

    /// The fitted weights, if any.
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// The fitted bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_tensor::Rng64;

    fn separable(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let l = u8::from(rng.bernoulli(0.5));
            let c = if l == 1 { 1.5 } else { -1.5 };
            rows.push(vec![
                rng.normal(c, 0.5).unwrap(),
                rng.normal(-c, 0.5).unwrap(),
            ]);
            labels.push(l);
        }
        (Matrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_separable_problem() {
        let (x, y) = separable(200, 1);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y).unwrap();
        let pred = lr.predict(&x).unwrap();
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / y.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn soft_targets_shift_probabilities() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let mut strong = LogisticRegression::with_defaults();
        strong.fit_soft(&x, &[1.0, 1.0], None).unwrap();
        let mut weak = LogisticRegression::with_defaults();
        weak.fit_soft(&x, &[0.6, 0.6], None).unwrap();
        let ps = strong.predict_proba(&x).unwrap()[0];
        let pw = weak.predict_proba(&x).unwrap()[0];
        assert!(ps > pw, "strong {ps} vs weak {pw}");
        assert!((pw - 0.6).abs() < 0.1);
    }

    #[test]
    fn sample_weights_downweight_examples() {
        // Two contradictory examples at the same point; weights decide.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let mut lr = LogisticRegression::with_defaults();
        lr.fit_soft(&x, &[1.0, 0.0], Some(&[10.0, 1.0])).unwrap();
        assert!(lr.predict_proba(&x).unwrap()[0] > 0.7);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit_soft(&x, &[1.0, 0.0], Some(&[1.0, 10.0])).unwrap();
        assert!(lr.predict_proba(&x).unwrap()[0] < 0.3);
    }

    #[test]
    fn validates_inputs() {
        let x = Matrix::ones(2, 2);
        let mut lr = LogisticRegression::with_defaults();
        assert!(lr.fit(&x, &[1]).is_err());
        assert!(lr.fit(&x, &[1, 2]).is_err());
        assert!(lr.fit_soft(&x, &[0.5, 1.5], None).is_err());
        assert!(lr.fit_soft(&x, &[0.5, 0.5], Some(&[1.0])).is_err());
        assert!(lr.fit_soft(&x, &[0.5, 0.5], Some(&[-1.0, 1.0])).is_err());
        assert!(lr.fit_soft(&x, &[0.5, 0.5], Some(&[0.0, 0.0])).is_err());
        assert!(lr.fit(&Matrix::zeros(0, 2), &[]).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(LogisticRegression::new(LogisticRegressionConfig {
            learning_rate: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(LogisticRegression::new(LogisticRegressionConfig {
            epochs: 0,
            ..Default::default()
        })
        .is_err());
        assert!(LogisticRegression::new(LogisticRegressionConfig {
            l2: -0.1,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn predict_before_fit_is_error() {
        let lr = LogisticRegression::with_defaults();
        assert!(matches!(
            lr.predict(&Matrix::ones(1, 2)),
            Err(BaselineError::NotFitted { .. })
        ));
    }

    #[test]
    fn predict_dim_mismatch_is_error() {
        let (x, y) = separable(50, 2);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y).unwrap();
        assert!(lr.predict(&Matrix::ones(1, 3)).is_err());
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = separable(100, 3);
        let mut free = LogisticRegression::new(LogisticRegressionConfig {
            l2: 0.0,
            ..Default::default()
        })
        .unwrap();
        free.fit(&x, &y).unwrap();
        let mut tight = LogisticRegression::new(LogisticRegressionConfig {
            l2: 0.5,
            ..Default::default()
        })
        .unwrap();
        tight.fit(&x, &y).unwrap();
        let norm = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm(tight.weights().unwrap()) < norm(free.weights().unwrap()));
    }

    #[test]
    fn serde_round_trip() {
        let (x, y) = separable(50, 4);
        let mut lr = LogisticRegression::with_defaults();
        lr.fit(&x, &y).unwrap();
        let json = serde_json::to_string(&lr).unwrap();
        let back: LogisticRegression = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(&x).unwrap(), lr.predict(&x).unwrap());
    }
}
