//! Pair / triplet / episode sampling from labeled data.
//!
//! The Group-2 baselines re-assemble the handful of labeled examples into
//! many training tuples — the same leverage the RLL grouping layer uses, but
//! with pair/triplet structure instead of groups.

use crate::error::BaselineError;
use crate::Result;
use rll_tensor::Rng64;

/// Splits example indices by binary label, validating that both classes are
/// present.
pub fn class_indices(labels: &[u8]) -> Result<(Vec<usize>, Vec<usize>)> {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (i, &l) in labels.iter().enumerate() {
        match l {
            1 => pos.push(i),
            0 => neg.push(i),
            other => {
                return Err(BaselineError::InvalidConfig {
                    reason: format!("label {other} is not binary"),
                })
            }
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return Err(BaselineError::DegenerateData {
            reason: format!(
                "need both classes, got {} positives / {} negatives",
                pos.len(),
                neg.len()
            ),
        });
    }
    Ok((pos, neg))
}

/// A labeled pair for contrastive training.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// First example index.
    pub a: usize,
    /// Second example index.
    pub b: usize,
    /// Whether the two share a class.
    pub same: bool,
}

/// Samples `count` pairs, alternating similar and dissimilar, never pairing an
/// example with itself.
pub fn sample_pairs(labels: &[u8], count: usize, rng: &mut Rng64) -> Result<Vec<Pair>> {
    let (pos, neg) = class_indices(labels)?;
    let mut pairs = Vec::with_capacity(count);
    for i in 0..count {
        if i % 2 == 0 {
            // Similar pair from a random class (weighted by class size so both
            // classes contribute).
            let from_pos = rng.bernoulli(pos.len() as f64 / labels.len() as f64);
            let class = if from_pos { &pos } else { &neg };
            if class.len() < 2 {
                // Fall back to a dissimilar pair when the class is a singleton.
                pairs.push(Pair {
                    a: *rng.choose(&pos)?,
                    b: *rng.choose(&neg)?,
                    same: false,
                });
                continue;
            }
            let picks = rng.sample_indices(class.len(), 2)?;
            pairs.push(Pair {
                a: class[picks[0]],
                b: class[picks[1]],
                same: true,
            });
        } else {
            pairs.push(Pair {
                a: *rng.choose(&pos)?,
                b: *rng.choose(&neg)?,
                same: false,
            });
        }
    }
    Ok(pairs)
}

/// A training triplet: anchor and positive share a class, negative differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triplet {
    /// Anchor example index.
    pub anchor: usize,
    /// Same-class example index (distinct from the anchor).
    pub positive: usize,
    /// Different-class example index.
    pub negative: usize,
}

/// Samples `count` triplets. Requires at least two examples in some class.
pub fn sample_triplets(labels: &[u8], count: usize, rng: &mut Rng64) -> Result<Vec<Triplet>> {
    let (pos, neg) = class_indices(labels)?;
    if pos.len() < 2 && neg.len() < 2 {
        return Err(BaselineError::DegenerateData {
            reason: "triplet sampling needs a class with at least 2 members".into(),
        });
    }
    let mut triplets = Vec::with_capacity(count);
    for _ in 0..count {
        // Prefer anchoring in a class with >= 2 members.
        let anchor_in_pos = if pos.len() < 2 {
            false
        } else if neg.len() < 2 {
            true
        } else {
            rng.bernoulli(pos.len() as f64 / labels.len() as f64)
        };
        let (same, other) = if anchor_in_pos {
            (&pos, &neg)
        } else {
            (&neg, &pos)
        };
        let picks = rng.sample_indices(same.len(), 2)?;
        triplets.push(Triplet {
            anchor: same[picks[0]],
            positive: same[picks[1]],
            negative: *rng.choose(other)?,
        });
    }
    Ok(triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<u8> {
        vec![1, 1, 1, 0, 0, 1, 0, 1]
    }

    #[test]
    fn class_indices_split() {
        let (pos, neg) = class_indices(&labels()).unwrap();
        assert_eq!(pos, vec![0, 1, 2, 5, 7]);
        assert_eq!(neg, vec![3, 4, 6]);
        assert!(class_indices(&[1, 1]).is_err());
        assert!(class_indices(&[0]).is_err());
        assert!(class_indices(&[0, 2]).is_err());
    }

    #[test]
    fn pairs_are_valid() {
        let labels = labels();
        let mut rng = Rng64::seed_from_u64(1);
        let pairs = sample_pairs(&labels, 100, &mut rng).unwrap();
        assert_eq!(pairs.len(), 100);
        for p in &pairs {
            assert_ne!(p.a, p.b);
            assert_eq!(p.same, labels[p.a] == labels[p.b]);
        }
        // Both polarities occur.
        assert!(pairs.iter().any(|p| p.same));
        assert!(pairs.iter().any(|p| !p.same));
    }

    #[test]
    fn pairs_singleton_class_falls_back() {
        let labels = vec![1u8, 0, 0, 0];
        let mut rng = Rng64::seed_from_u64(2);
        let pairs = sample_pairs(&labels, 50, &mut rng).unwrap();
        for p in pairs {
            assert_ne!(p.a, p.b);
            // Any "same" pair must come from class 0 (class 1 is a singleton).
            if p.same {
                assert_eq!(labels[p.a], 0);
            }
        }
    }

    #[test]
    fn triplets_are_valid() {
        let labels = labels();
        let mut rng = Rng64::seed_from_u64(3);
        let triplets = sample_triplets(&labels, 100, &mut rng).unwrap();
        assert_eq!(triplets.len(), 100);
        for t in triplets {
            assert_ne!(t.anchor, t.positive);
            assert_eq!(labels[t.anchor], labels[t.positive]);
            assert_ne!(labels[t.anchor], labels[t.negative]);
        }
    }

    #[test]
    fn triplets_with_singleton_class_anchor_elsewhere() {
        let labels = vec![1u8, 0, 0, 0];
        let mut rng = Rng64::seed_from_u64(4);
        let triplets = sample_triplets(&labels, 30, &mut rng).unwrap();
        for t in triplets {
            assert_eq!(labels[t.anchor], 0); // must anchor in the big class
            assert_eq!(labels[t.negative], 1);
        }
    }

    #[test]
    fn triplets_need_a_pairable_class() {
        let labels = vec![1u8, 0];
        let mut rng = Rng64::seed_from_u64(5);
        assert!(sample_triplets(&labels, 10, &mut rng).is_err());
    }

    #[test]
    fn sampling_deterministic_per_seed() {
        let labels = labels();
        let a = sample_pairs(&labels, 20, &mut Rng64::seed_from_u64(9)).unwrap();
        let b = sample_pairs(&labels, 20, &mut Rng64::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
        let t1 = sample_triplets(&labels, 20, &mut Rng64::seed_from_u64(9)).unwrap();
        let t2 = sample_triplets(&labels, 20, &mut Rng64::seed_from_u64(9)).unwrap();
        assert_eq!(t1, t2);
    }
}
