//! Property-based tests for the crowdsourcing substrate.

use proptest::prelude::*;
use rll_crowd::aggregate::{Aggregator, DawidSkene, MajorityVote, SoftLabels};
use rll_crowd::simulate::{WorkerModel, WorkerPool};
use rll_crowd::{AnnotationMatrix, BetaPrior, ConfidenceEstimator};
use rll_tensor::Rng64;

/// Strategy: a dense binary annotation table with 1-30 items and 1-7 workers.
fn dense_table() -> impl Strategy<Value = AnnotationMatrix> {
    (1usize..30, 1usize..7).prop_flat_map(|(items, workers)| {
        prop::collection::vec(prop::collection::vec(0u8..2, workers), items)
            .prop_map(|votes| AnnotationMatrix::from_dense_binary(&votes).unwrap())
    })
}

proptest! {
    #[test]
    fn majority_posteriors_are_distributions(ann in dense_table()) {
        let mv = MajorityVote::positive_ties();
        for row in mv.posteriors(&ann).unwrap() {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn majority_agrees_with_soft_argmax_when_no_tie(ann in dense_table()) {
        let mv = MajorityVote::positive_ties().hard_labels(&ann).unwrap();
        let soft = SoftLabels::new().soft_binary_targets(&ann).unwrap();
        for (i, (&label, &p)) in mv.iter().zip(&soft).enumerate() {
            if (p - 0.5).abs() > 1e-9 {
                prop_assert_eq!(label, u8::from(p > 0.5), "item {}", i);
            }
        }
    }

    #[test]
    fn unanimous_items_are_certain(workers in 1usize..8, label in 0u8..2) {
        let ann = AnnotationMatrix::from_dense_binary(&[vec![label; workers]]).unwrap();
        let labels = MajorityVote::positive_ties().hard_labels(&ann).unwrap();
        prop_assert_eq!(labels[0], label);
        let conf = ConfidenceEstimator::Mle.positiveness_all(&ann).unwrap();
        prop_assert_eq!(conf[0], f64::from(label));
    }

    #[test]
    fn bayesian_confidence_strictly_inside_unit_interval(
        pos in 0usize..10,
        extra in 0usize..10,
        alpha in 0.1f64..10.0,
        beta in 0.1f64..10.0,
    ) {
        let total = pos + extra;
        let prior = BetaPrior::new(alpha, beta).unwrap();
        let c = ConfidenceEstimator::Bayesian(prior).positiveness(pos, total).unwrap();
        prop_assert!(c > 0.0 && c < 1.0);
    }

    #[test]
    fn bayesian_between_prior_and_mle(pos in 0usize..10, extra in 1usize..10) {
        let total = pos + extra;
        let prior = BetaPrior::new(2.0, 2.0).unwrap();
        let bay = ConfidenceEstimator::Bayesian(prior).positiveness(pos, total).unwrap();
        let mle = ConfidenceEstimator::Mle.positiveness(pos, total).unwrap();
        let prior_mean = prior.mean();
        let lo = mle.min(prior_mean) - 1e-12;
        let hi = mle.max(prior_mean) + 1e-12;
        prop_assert!(bay >= lo && bay <= hi, "bay {bay} outside [{lo}, {hi}]");
    }

    #[test]
    fn bayesian_monotone_in_votes(total in 1usize..10, alpha in 0.5f64..5.0, beta in 0.5f64..5.0) {
        let prior = BetaPrior::new(alpha, beta).unwrap();
        let est = ConfidenceEstimator::Bayesian(prior);
        let mut prev = -1.0;
        for pos in 0..=total {
            let c = est.positiveness(pos, total).unwrap();
            prop_assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn dawid_skene_ll_non_decreasing(seed in 0u64..50) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..40).map(|_| u8::from(rng.bernoulli(0.6))).collect();
        let pool = WorkerPool::graded(4, 0.55, 0.95).unwrap();
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let fit = DawidSkene::default().fit(&ann).unwrap();
        for w in fit.log_likelihoods.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-6);
        }
    }

    #[test]
    fn dawid_skene_confusions_are_stochastic(seed in 0u64..30) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..30).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let pool = WorkerPool::graded(3, 0.6, 0.9).unwrap();
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let fit = DawidSkene::default().fit(&ann).unwrap();
        for worker in &fit.confusions {
            for row in worker {
                prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }

    #[test]
    fn restrict_workers_preserves_prefix_votes(ann in dense_table(), keep_frac in 0.1f64..1.0) {
        let keep = ((ann.num_workers() as f64 * keep_frac).ceil() as usize)
            .clamp(1, ann.num_workers());
        let restricted = ann.restrict_workers(keep).unwrap();
        for i in 0..ann.num_items() {
            for w in 0..keep {
                prop_assert_eq!(ann.get(i, w).unwrap(), restricted.get(i, w).unwrap());
            }
        }
    }

    #[test]
    fn simulated_annotations_match_worker_count(
        seed in 0u64..100,
        d in 1usize..9,
        n in 1usize..40,
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let pool = WorkerPool::graded(d, 0.6, 0.9).unwrap();
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        prop_assert_eq!(ann.total_annotations(), n * d);
        for i in 0..n {
            prop_assert_eq!(ann.annotation_count(i).unwrap(), d);
        }
    }

    #[test]
    fn hammer_pool_always_unanimous(seed in 0u64..50, n in 1usize..20) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.4))).collect();
        let pool = WorkerPool::new(vec![WorkerModel::Hammer; 3]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let labels = MajorityVote::positive_ties().hard_labels(&ann).unwrap();
        prop_assert_eq!(labels, truth);
    }
}
