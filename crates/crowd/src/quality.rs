//! Worker-quality estimation and spammer detection.
//!
//! Production crowdsourcing pipelines need to know *which* workers to trust,
//! pay, or drop. These utilities rank workers from a fitted Dawid–Skene model
//! and flag probable spammers — workers whose votes carry (almost) no
//! information about the true label.

use crate::aggregate::DawidSkeneFit;
use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Quality summary for one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerQuality {
    /// Worker index (column in the annotation table).
    pub worker: usize,
    /// Expected accuracy: `Σ_k P(z = k) π_w[k][k]` under the fitted class
    /// prior.
    pub expected_accuracy: f64,
    /// Informativeness: how far the worker's response distribution moves with
    /// the true class, measured as the total-variation distance between the
    /// confusion matrix's rows (binary) or the mean pairwise row TV
    /// (multi-class). 0 = spammer (response independent of truth), 1 =
    /// deterministic signal.
    pub informativeness: f64,
    /// Number of annotations the worker contributed.
    pub annotation_count: usize,
}

/// Derives per-worker quality from a Dawid–Skene fit.
pub fn worker_qualities(
    fit: &DawidSkeneFit,
    annotations: &AnnotationMatrix,
) -> Result<Vec<WorkerQuality>> {
    if fit.confusions.len() != annotations.num_workers() {
        return Err(CrowdError::InvalidConfig {
            reason: format!(
                "fit covers {} workers, table has {}",
                fit.confusions.len(),
                annotations.num_workers()
            ),
        });
    }
    let c = fit.class_prior.len();
    let mut out = Vec::with_capacity(fit.confusions.len());
    for (w, confusion) in fit.confusions.iter().enumerate() {
        let expected_accuracy = (0..c)
            .map(|k| fit.class_prior[k] * confusion[k][k])
            .sum::<f64>();
        // Mean pairwise total-variation distance between class-conditional
        // response rows.
        let mut tv_sum = 0.0;
        let mut pairs = 0usize;
        for a in 0..c {
            for b in (a + 1)..c {
                let tv: f64 = confusion[a]
                    .iter()
                    .zip(&confusion[b])
                    .map(|(x, y)| (x - y).abs())
                    .sum::<f64>()
                    / 2.0;
                tv_sum += tv;
                pairs += 1;
            }
        }
        let informativeness = if pairs > 0 {
            tv_sum / pairs as f64
        } else {
            0.0
        };
        out.push(WorkerQuality {
            worker: w,
            expected_accuracy,
            informativeness,
            annotation_count: annotations.worker_labels(w)?.len(),
        });
    }
    Ok(out)
}

/// One-call quality estimation for a *live* annotation table: fits the
/// deterministic Dawid–Skene EM on `annotations` and derives per-worker
/// quality from the fitted confusions. This is the streaming path's entry
/// point — the retrainer has a raw vote table, not a pre-existing fit.
pub fn live_worker_qualities(annotations: &AnnotationMatrix) -> Result<Vec<WorkerQuality>> {
    let fit = crate::aggregate::DawidSkene::default().fit(annotations)?;
    worker_qualities(&fit, annotations)
}

/// Indices of workers whose informativeness falls below `threshold`
/// (probable spammers). A common operating point is 0.2.
pub fn detect_spammers(qualities: &[WorkerQuality], threshold: f64) -> Vec<usize> {
    qualities
        .iter()
        .filter(|q| q.informativeness < threshold)
        .map(|q| q.worker)
        .collect()
}

/// Workers ranked best-first by informativeness (ties by expected accuracy).
pub fn rank_workers(qualities: &[WorkerQuality]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..qualities.len()).collect();
    order.sort_by(|&a, &b| {
        let qa = &qualities[a];
        let qb = &qualities[b];
        qb.informativeness
            .total_cmp(&qa.informativeness)
            .then(qb.expected_accuracy.total_cmp(&qa.expected_accuracy))
    });
    order.into_iter().map(|i| qualities[i].worker).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::DawidSkene;
    use crate::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn fit_pool(
        models: Vec<WorkerModel>,
        n: usize,
        seed: u64,
    ) -> (DawidSkeneFit, AnnotationMatrix) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.6))).collect();
        let pool = WorkerPool::new(models);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let fit = DawidSkene::default().fit(&ann).unwrap();
        (fit, ann)
    }

    #[test]
    fn spammer_scores_near_zero_informativeness() {
        let (fit, ann) = fit_pool(
            vec![
                WorkerModel::OneCoin { accuracy: 0.9 },
                WorkerModel::OneCoin { accuracy: 0.9 },
                WorkerModel::Spammer { positive_rate: 0.6 },
            ],
            500,
            1,
        );
        let q = worker_qualities(&fit, &ann).unwrap();
        assert!(q[0].informativeness > 0.6, "good worker {:?}", q[0]);
        assert!(q[2].informativeness < 0.15, "spammer {:?}", q[2]);
        let spammers = detect_spammers(&q, 0.2);
        assert_eq!(spammers, vec![2]);
    }

    #[test]
    fn adversary_is_informative_but_inaccurate() {
        // A systematically-wrong worker carries signal (flip their votes!);
        // informativeness is high while expected accuracy is low.
        let (fit, ann) = fit_pool(
            vec![
                WorkerModel::OneCoin { accuracy: 0.9 },
                WorkerModel::OneCoin { accuracy: 0.9 },
                WorkerModel::OneCoin { accuracy: 0.1 },
            ],
            500,
            2,
        );
        let q = worker_qualities(&fit, &ann).unwrap();
        assert!(q[2].informativeness > 0.6, "adversary {:?}", q[2]);
        assert!(q[2].expected_accuracy < 0.3);
        assert!(detect_spammers(&q, 0.2).is_empty());
    }

    #[test]
    fn ranking_puts_best_workers_first() {
        let (fit, ann) = fit_pool(
            vec![
                WorkerModel::Spammer { positive_rate: 0.5 },
                WorkerModel::OneCoin { accuracy: 0.95 },
                WorkerModel::OneCoin { accuracy: 0.95 },
                WorkerModel::OneCoin { accuracy: 0.6 },
            ],
            800,
            3,
        );
        let q = worker_qualities(&fit, &ann).unwrap();
        let ranked = rank_workers(&q);
        // The spammer is last; the two excellent workers occupy the top two.
        assert_eq!(*ranked.last().unwrap(), 0);
        assert!(
            ranked[..2].contains(&1) && ranked[..2].contains(&2),
            "{ranked:?}"
        );
        // Ranking is ordered by informativeness.
        let info_of = |w: usize| q.iter().find(|x| x.worker == w).unwrap().informativeness;
        for pair in ranked.windows(2) {
            assert!(info_of(pair[0]) >= info_of(pair[1]) - 1e-12);
        }
    }

    #[test]
    fn counts_and_validation() {
        let (fit, ann) = fit_pool(vec![WorkerModel::Hammer; 2], 50, 4);
        let q = worker_qualities(&fit, &ann).unwrap();
        assert!(q.iter().all(|w| w.annotation_count == 50));
        // Mismatched table rejected.
        let other = AnnotationMatrix::from_dense_binary(&[vec![1, 0, 1]]).unwrap();
        assert!(worker_qualities(&fit, &other).is_err());
    }
}
