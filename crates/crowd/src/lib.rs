#![warn(missing_docs)]

//! # `rll-crowd` — crowdsourced-label substrate
//!
//! Everything the RLL reproduction needs to model labels that come from the
//! crowd rather than from an oracle:
//!
//! - [`AnnotationMatrix`] — the items × workers label table (workers may skip
//!   items);
//! - [`aggregate`] — true-label inference baselines from the paper's Group 1:
//!   majority vote, soft probabilistic labels (SoftProb), the Dawid–Skene EM
//!   estimator, GLAD (worker expertise × item difficulty), and Raykar's joint
//!   "learning from crowds" logistic-regression EM;
//! - [`confidence`] — the paper's two label-confidence estimators: the MLE
//!   vote fraction (eq. 1) and the Beta-posterior mean (eq. 2), plus the
//!   class-prior → `(α, β)` mapping the paper uses to set the prior;
//! - [`simulate`] — crowd-worker models (one-coin, two-coin, spammer,
//!   adversary, hammer) used to synthesize annotations for the `oral` and
//!   `class` dataset simulators, since the original proprietary datasets are
//!   unavailable.

pub mod aggregate;
pub mod agreement;
pub mod annotations;
pub mod confidence;
pub mod error;
pub mod quality;
pub mod simulate;

pub use annotations::AnnotationMatrix;
pub use confidence::{
    emit_confidence_summary, worker_aware_label_confidences,
    worker_aware_label_confidences_observed, BetaPrior, ConfidenceEstimator,
};
pub use error::CrowdError;
pub use quality::{detect_spammers, live_worker_qualities, rank_workers, WorkerQuality};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, CrowdError>;
