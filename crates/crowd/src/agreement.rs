//! Inter-annotator agreement statistics.
//!
//! The paper motivates RLL with the observation that educational labels are
//! "very inconsistent". These estimators quantify that inconsistency on an
//! [`AnnotationMatrix`]: raw observed agreement, pairwise Cohen's κ, and
//! Fleiss' κ for the whole worker pool. The `class` preset, for instance,
//! shows markedly lower κ than `oral`, matching the paper's description of
//! the two tasks.

use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;

/// Fraction of item-pairs on which two workers gave the same label, over the
/// items both annotated. Returns an error if they share no items.
pub fn observed_agreement(
    annotations: &AnnotationMatrix,
    worker_a: usize,
    worker_b: usize,
) -> Result<f64> {
    let mut shared = 0usize;
    let mut agree = 0usize;
    for i in 0..annotations.num_items() {
        if let (Some(a), Some(b)) = (annotations.get(i, worker_a)?, annotations.get(i, worker_b)?) {
            shared += 1;
            if a == b {
                agree += 1;
            }
        }
    }
    if shared == 0 {
        return Err(CrowdError::InvalidAnnotations {
            reason: format!("workers {worker_a} and {worker_b} share no items"),
        });
    }
    Ok(agree as f64 / shared as f64)
}

/// Cohen's κ between two workers: agreement corrected for chance, using each
/// worker's own marginal label distribution.
///
/// κ = 1 is perfect agreement, 0 is chance level, negative is systematic
/// disagreement. Returns an error when the workers share no items; when
/// chance agreement is 1 (both workers constant and equal) the convention
/// κ = 1 on full agreement is used.
pub fn cohens_kappa(
    annotations: &AnnotationMatrix,
    worker_a: usize,
    worker_b: usize,
) -> Result<f64> {
    let c = annotations.num_classes() as usize;
    let mut joint = vec![vec![0usize; c]; c];
    let mut shared = 0usize;
    for i in 0..annotations.num_items() {
        if let (Some(a), Some(b)) = (annotations.get(i, worker_a)?, annotations.get(i, worker_b)?) {
            joint[a as usize][b as usize] += 1;
            shared += 1;
        }
    }
    if shared == 0 {
        return Err(CrowdError::InvalidAnnotations {
            reason: format!("workers {worker_a} and {worker_b} share no items"),
        });
    }
    let n = shared as f64;
    let po: f64 = (0..c).map(|k| joint[k][k] as f64).sum::<f64>() / n;
    let mut pe = 0.0;
    for k in 0..c {
        let row: usize = joint[k].iter().sum();
        let col: usize = joint.iter().map(|r| r[k]).sum();
        pe += (row as f64 / n) * (col as f64 / n);
    }
    if (1.0 - pe).abs() < 1e-12 {
        // Degenerate marginals: both constant. Perfect observed agreement is
        // κ = 1 by convention, anything else is undefined → 0.
        return Ok(if (po - 1.0).abs() < 1e-12 { 1.0 } else { 0.0 });
    }
    Ok((po - pe) / (1.0 - pe))
}

/// Mean pairwise Cohen's κ over all worker pairs that share at least one
/// item.
pub fn mean_pairwise_kappa(annotations: &AnnotationMatrix) -> Result<f64> {
    let w = annotations.num_workers();
    if w < 2 {
        return Err(CrowdError::InvalidConfig {
            reason: "pairwise kappa needs at least 2 workers".into(),
        });
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for a in 0..w {
        for b in (a + 1)..w {
            if let Ok(k) = cohens_kappa(annotations, a, b) {
                total += k;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        return Err(CrowdError::InvalidAnnotations {
            reason: "no worker pair shares any item".into(),
        });
    }
    Ok(total / pairs as f64)
}

/// Fleiss' κ: chance-corrected agreement for many raters.
///
/// Only items with at least two annotations contribute (agreement is
/// undefined on singly-annotated items). Returns an error when no item
/// qualifies.
pub fn fleiss_kappa(annotations: &AnnotationMatrix) -> Result<f64> {
    let c = annotations.num_classes() as usize;
    let mut p_bar_sum = 0.0;
    let mut class_totals = vec![0usize; c];
    let mut total_votes = 0usize;
    let mut items = 0usize;
    for i in 0..annotations.num_items() {
        let counts = annotations.vote_counts(i)?;
        let n: usize = counts.iter().sum();
        if n < 2 {
            continue;
        }
        items += 1;
        total_votes += n;
        for (k, &ct) in counts.iter().enumerate() {
            class_totals[k] += ct;
        }
        let agree_pairs: usize = counts.iter().map(|&ct| ct * ct.saturating_sub(1)).sum();
        p_bar_sum += agree_pairs as f64 / (n * (n - 1)) as f64;
    }
    if items == 0 {
        return Err(CrowdError::InvalidAnnotations {
            reason: "Fleiss kappa needs items with at least 2 annotations".into(),
        });
    }
    let p_bar = p_bar_sum / items as f64;
    let pe: f64 = class_totals
        .iter()
        .map(|&ct| {
            let p = ct as f64 / total_votes as f64;
            p * p
        })
        .sum();
    if (1.0 - pe).abs() < 1e-12 {
        return Ok(if (p_bar - 1.0).abs() < 1e-12 {
            1.0
        } else {
            0.0
        });
    }
    Ok((p_bar - pe) / (1.0 - pe))
}

/// Summary of a table's annotation quality, for reports and examples.
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementReport {
    /// Fleiss' κ over the table.
    pub fleiss_kappa: f64,
    /// Mean pairwise Cohen's κ.
    pub mean_cohens_kappa: f64,
    /// Fraction of items whose votes are not unanimous.
    pub split_vote_fraction: f64,
}

/// Computes the full agreement summary.
pub fn agreement_report(annotations: &AnnotationMatrix) -> Result<AgreementReport> {
    let mut split = 0usize;
    let mut counted = 0usize;
    for i in 0..annotations.num_items() {
        let counts = annotations.vote_counts(i)?;
        let n: usize = counts.iter().sum();
        if n == 0 {
            continue;
        }
        counted += 1;
        if counts.iter().all(|&ct| ct < n) {
            split += 1;
        }
    }
    if counted == 0 {
        return Err(CrowdError::InvalidAnnotations {
            reason: "no annotated items".into(),
        });
    }
    Ok(AgreementReport {
        fleiss_kappa: fleiss_kappa(annotations)?,
        mean_cohens_kappa: mean_pairwise_kappa(annotations)?,
        split_vote_fraction: split as f64 / counted as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn perfect_table() -> AnnotationMatrix {
        AnnotationMatrix::from_dense_binary(&[vec![1, 1, 1], vec![0, 0, 0], vec![1, 1, 1]]).unwrap()
    }

    #[test]
    fn perfect_agreement_is_kappa_one() {
        let ann = perfect_table();
        assert!((observed_agreement(&ann, 0, 1).unwrap() - 1.0).abs() < 1e-12);
        assert!((cohens_kappa(&ann, 0, 1).unwrap() - 1.0).abs() < 1e-12);
        assert!((fleiss_kappa(&ann).unwrap() - 1.0).abs() < 1e-12);
        assert!((mean_pairwise_kappa(&ann).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn systematic_disagreement_is_negative_kappa() {
        // Worker 1 always inverts worker 0.
        let ann =
            AnnotationMatrix::from_dense_binary(&[vec![1, 0], vec![0, 1], vec![1, 0], vec![0, 1]])
                .unwrap();
        assert_eq!(observed_agreement(&ann, 0, 1).unwrap(), 0.0);
        assert!(cohens_kappa(&ann, 0, 1).unwrap() < -0.9);
    }

    #[test]
    fn random_voting_has_near_zero_kappa() {
        let mut rng = Rng64::seed_from_u64(5);
        let truth: Vec<u8> = (0..600).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let pool = WorkerPool::new(vec![WorkerModel::Spammer { positive_rate: 0.5 }; 4]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let k = fleiss_kappa(&ann).unwrap();
        assert!(k.abs() < 0.06, "kappa {k}");
        let ck = mean_pairwise_kappa(&ann).unwrap();
        assert!(ck.abs() < 0.06, "cohen {ck}");
    }

    #[test]
    fn reliable_workers_have_high_kappa() {
        let mut rng = Rng64::seed_from_u64(6);
        let truth: Vec<u8> = (0..400).map(|_| u8::from(rng.bernoulli(0.6))).collect();
        let pool = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 0.95 }; 4]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        assert!(fleiss_kappa(&ann).unwrap() > 0.7);
    }

    #[test]
    fn kappa_orders_task_difficulty() {
        // Noisier workers → lower agreement, the paper's oral-vs-class story.
        let mut rng = Rng64::seed_from_u64(7);
        let truth: Vec<u8> = (0..400).map(|_| u8::from(rng.bernoulli(0.6))).collect();
        let easy = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 0.9 }; 5])
            .annotate(&truth, &mut rng)
            .unwrap();
        let hard = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 0.65 }; 5])
            .annotate(&truth, &mut rng)
            .unwrap();
        assert!(fleiss_kappa(&easy).unwrap() > fleiss_kappa(&hard).unwrap() + 0.2);
    }

    #[test]
    fn handles_missing_votes() {
        let mut ann = AnnotationMatrix::new(3, 3, 2).unwrap();
        // Workers 0 and 1 share only item 0.
        ann.set(0, 0, 1).unwrap();
        ann.set(0, 1, 1).unwrap();
        ann.set(1, 0, 0).unwrap();
        ann.set(2, 1, 1).unwrap();
        assert_eq!(observed_agreement(&ann, 0, 1).unwrap(), 1.0);
        // Workers 0 and 2 share nothing.
        assert!(observed_agreement(&ann, 0, 2).is_err());
        assert!(cohens_kappa(&ann, 0, 2).is_err());
    }

    #[test]
    fn fleiss_requires_multi_annotated_items() {
        let mut ann = AnnotationMatrix::new(2, 2, 2).unwrap();
        ann.set(0, 0, 1).unwrap();
        ann.set(1, 1, 0).unwrap();
        assert!(fleiss_kappa(&ann).is_err());
    }

    #[test]
    fn report_summarizes() {
        let ann = AnnotationMatrix::from_dense_binary(&[
            vec![1, 1, 1],
            vec![1, 0, 1],
            vec![0, 0, 0],
            vec![0, 1, 0],
        ])
        .unwrap();
        let report = agreement_report(&ann).unwrap();
        assert!((report.split_vote_fraction - 0.5).abs() < 1e-12);
        assert!(report.fleiss_kappa > 0.0 && report.fleiss_kappa < 1.0);
        assert!(report.mean_cohens_kappa > 0.0);
    }

    #[test]
    fn mean_kappa_validates() {
        let single = AnnotationMatrix::from_dense_binary(&[vec![1], vec![0]]).unwrap();
        assert!(mean_pairwise_kappa(&single).is_err());
    }
}
