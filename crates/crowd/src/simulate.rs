//! Crowd-worker simulation.
//!
//! The paper's `oral` and `class` datasets are proprietary; the reproduction
//! synthesizes annotations by passing ground-truth labels through explicit
//! worker noise models. The models cover the standard crowdsourcing taxonomy:
//!
//! - [`WorkerModel::OneCoin`] — symmetric accuracy `p(correct) = accuracy`;
//! - [`WorkerModel::TwoCoin`] — separate sensitivity/specificity, matching
//!   the Raykar generative assumptions;
//! - [`WorkerModel::Spammer`] — votes 1 with fixed probability regardless of
//!   the truth (zero information);
//! - [`WorkerModel::Hammer`] — always correct (an expert);
//! - [`WorkerModel::DifficultyAware`] — accuracy degrades with per-item
//!   difficulty, matching the GLAD generative assumptions.

use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use rll_tensor::ops::sigmoid;
use rll_tensor::Rng64;
use serde::{Deserialize, Serialize};

/// A generative model of one crowd worker's labeling behaviour (binary).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkerModel {
    /// Correct with probability `accuracy`, independent of the true class.
    /// `accuracy < 0.5` models an adversarial worker.
    OneCoin {
        /// Probability of reporting the true label.
        accuracy: f64,
    },
    /// Class-conditional noise: reports 1 for a true positive with
    /// probability `sensitivity`, reports 0 for a true negative with
    /// probability `specificity`.
    TwoCoin {
        /// `P(vote 1 | z = 1)`.
        sensitivity: f64,
        /// `P(vote 0 | z = 0)`.
        specificity: f64,
    },
    /// Ignores the item entirely; votes 1 with probability `positive_rate`.
    Spammer {
        /// Marginal positive-vote rate.
        positive_rate: f64,
    },
    /// Always reports the true label.
    Hammer,
    /// GLAD-style worker: correct with probability `σ(ability / difficulty)`,
    /// where the per-item difficulty is supplied at annotation time.
    DifficultyAware {
        /// Worker ability (higher = better; negative = adversarial).
        ability: f64,
    },
}

impl WorkerModel {
    /// Validates the model's parameters.
    pub fn validate(&self) -> Result<()> {
        let check_prob = |name: &'static str, p: f64| -> Result<()> {
            if !(0.0..=1.0).contains(&p) {
                return Err(CrowdError::InvalidConfig {
                    reason: format!("{name} must be in [0, 1], got {p}"),
                });
            }
            Ok(())
        };
        match *self {
            WorkerModel::OneCoin { accuracy } => check_prob("accuracy", accuracy),
            WorkerModel::TwoCoin {
                sensitivity,
                specificity,
            } => {
                check_prob("sensitivity", sensitivity)?;
                check_prob("specificity", specificity)
            }
            WorkerModel::Spammer { positive_rate } => check_prob("positive_rate", positive_rate),
            WorkerModel::Hammer => Ok(()),
            WorkerModel::DifficultyAware { ability } => {
                if !ability.is_finite() {
                    return Err(CrowdError::InvalidConfig {
                        reason: format!("ability must be finite, got {ability}"),
                    });
                }
                Ok(())
            }
        }
    }

    /// Samples this worker's vote for an item with true label `truth` and
    /// difficulty `difficulty > 0` (only [`WorkerModel::DifficultyAware`]
    /// reads the difficulty; pass `1.0` otherwise).
    pub fn vote(&self, truth: u8, difficulty: f64, rng: &mut Rng64) -> u8 {
        match *self {
            WorkerModel::OneCoin { accuracy } => {
                if rng.bernoulli(accuracy) {
                    truth
                } else {
                    1 - truth
                }
            }
            WorkerModel::TwoCoin {
                sensitivity,
                specificity,
            } => {
                if truth == 1 {
                    u8::from(rng.bernoulli(sensitivity))
                } else {
                    u8::from(!rng.bernoulli(specificity))
                }
            }
            WorkerModel::Spammer { positive_rate } => u8::from(rng.bernoulli(positive_rate)),
            WorkerModel::Hammer => truth,
            WorkerModel::DifficultyAware { ability } => {
                let p_correct = sigmoid(ability / difficulty.max(1e-6));
                if rng.bernoulli(p_correct) {
                    truth
                } else {
                    1 - truth
                }
            }
        }
    }

    /// Expected probability of reporting the true label for a positive item
    /// (used by tests and analysis).
    pub fn expected_accuracy_on_positive(&self, difficulty: f64) -> f64 {
        match *self {
            WorkerModel::OneCoin { accuracy } => accuracy,
            WorkerModel::TwoCoin { sensitivity, .. } => sensitivity,
            WorkerModel::Spammer { positive_rate } => positive_rate,
            WorkerModel::Hammer => 1.0,
            WorkerModel::DifficultyAware { ability } => sigmoid(ability / difficulty.max(1e-6)),
        }
    }
}

/// A fixed set of crowd workers that annotate items together.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPool {
    workers: Vec<WorkerModel>,
}

impl WorkerPool {
    /// Creates a pool from explicit worker models.
    pub fn new(workers: Vec<WorkerModel>) -> Self {
        WorkerPool { workers }
    }

    /// A pool of `d` one-coin workers with accuracies evenly spaced in
    /// `[lo, hi]` — the generic "mixed-quality crowd" used by the dataset
    /// presets.
    pub fn graded(d: usize, lo: f64, hi: f64) -> Result<Self> {
        if d == 0 {
            return Err(CrowdError::InvalidConfig {
                reason: "pool needs at least one worker".into(),
            });
        }
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(CrowdError::InvalidConfig {
                reason: format!("accuracy range [{lo}, {hi}] invalid"),
            });
        }
        let workers = (0..d)
            .map(|i| {
                let t = if d == 1 {
                    0.5
                } else {
                    i as f64 / (d - 1) as f64
                };
                WorkerModel::OneCoin {
                    accuracy: lo + t * (hi - lo),
                }
            })
            .collect();
        Ok(WorkerPool { workers })
    }

    /// Number of workers in the pool.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The worker models.
    pub fn workers(&self) -> &[WorkerModel] {
        &self.workers
    }

    /// Annotates every item with every worker (items have unit difficulty).
    pub fn annotate(&self, truth: &[u8], rng: &mut Rng64) -> Result<AnnotationMatrix> {
        self.annotate_with_difficulty(truth, None, rng)
    }

    /// Annotates with optional per-item difficulties (`> 0`, larger =
    /// harder). Difficulties drive [`WorkerModel::DifficultyAware`] workers.
    pub fn annotate_with_difficulty(
        &self,
        truth: &[u8],
        difficulties: Option<&[f64]>,
        rng: &mut Rng64,
    ) -> Result<AnnotationMatrix> {
        if self.workers.is_empty() {
            return Err(CrowdError::InvalidConfig {
                reason: "pool has no workers".into(),
            });
        }
        if truth.is_empty() {
            return Err(CrowdError::InvalidAnnotations {
                reason: "no items to annotate".into(),
            });
        }
        if let Some(d) = difficulties {
            if d.len() != truth.len() {
                return Err(CrowdError::InvalidConfig {
                    reason: format!("{} difficulties for {} items", d.len(), truth.len()),
                });
            }
            if d.iter().any(|&x| x <= 0.0 || !x.is_finite()) {
                return Err(CrowdError::InvalidConfig {
                    reason: "difficulties must be positive and finite".into(),
                });
            }
        }
        for w in &self.workers {
            w.validate()?;
        }
        if let Some(&bad) = truth.iter().find(|&&t| t > 1) {
            return Err(CrowdError::InvalidAnnotations {
                reason: format!("binary truth expected, found label {bad}"),
            });
        }
        let mut ann = AnnotationMatrix::new(truth.len(), self.workers.len(), 2)?;
        for (i, &t) in truth.iter().enumerate() {
            let difficulty = difficulties.map_or(1.0, |d| d[i]);
            for (j, worker) in self.workers.iter().enumerate() {
                ann.set(i, j, worker.vote(t, difficulty, rng))?;
            }
        }
        Ok(ann)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_coin_accuracy_rate() {
        let mut rng = Rng64::seed_from_u64(1);
        let w = WorkerModel::OneCoin { accuracy: 0.8 };
        let correct = (0..20_000)
            .filter(|_| w.vote(1, 1.0, &mut rng) == 1)
            .count() as f64
            / 20_000.0;
        assert!((correct - 0.8).abs() < 0.02, "rate {correct}");
    }

    #[test]
    fn two_coin_asymmetric_rates() {
        let mut rng = Rng64::seed_from_u64(2);
        let w = WorkerModel::TwoCoin {
            sensitivity: 0.9,
            specificity: 0.6,
        };
        let n = 20_000;
        let sens = (0..n).filter(|_| w.vote(1, 1.0, &mut rng) == 1).count() as f64 / n as f64;
        let spec = (0..n).filter(|_| w.vote(0, 1.0, &mut rng) == 0).count() as f64 / n as f64;
        assert!((sens - 0.9).abs() < 0.02);
        assert!((spec - 0.6).abs() < 0.02);
    }

    #[test]
    fn spammer_ignores_truth() {
        let mut rng = Rng64::seed_from_u64(3);
        let w = WorkerModel::Spammer { positive_rate: 0.7 };
        let n = 20_000;
        let on_pos = (0..n).filter(|_| w.vote(1, 1.0, &mut rng) == 1).count() as f64 / n as f64;
        let on_neg = (0..n).filter(|_| w.vote(0, 1.0, &mut rng) == 1).count() as f64 / n as f64;
        assert!((on_pos - on_neg).abs() < 0.03);
        assert!((on_pos - 0.7).abs() < 0.02);
    }

    #[test]
    fn hammer_is_perfect() {
        let mut rng = Rng64::seed_from_u64(4);
        let w = WorkerModel::Hammer;
        for t in [0u8, 1] {
            for _ in 0..50 {
                assert_eq!(w.vote(t, 1.0, &mut rng), t);
            }
        }
    }

    #[test]
    fn difficulty_degrades_accuracy() {
        let mut rng = Rng64::seed_from_u64(5);
        let w = WorkerModel::DifficultyAware { ability: 2.0 };
        let n = 20_000;
        let easy = (0..n).filter(|_| w.vote(1, 0.5, &mut rng) == 1).count() as f64 / n as f64;
        let hard = (0..n).filter(|_| w.vote(1, 4.0, &mut rng) == 1).count() as f64 / n as f64;
        assert!(easy > hard + 0.1, "easy {easy} vs hard {hard}");
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(WorkerModel::OneCoin { accuracy: 1.5 }.validate().is_err());
        assert!(WorkerModel::TwoCoin {
            sensitivity: -0.1,
            specificity: 0.5
        }
        .validate()
        .is_err());
        assert!(WorkerModel::Spammer { positive_rate: 2.0 }
            .validate()
            .is_err());
        assert!(WorkerModel::DifficultyAware { ability: f64::NAN }
            .validate()
            .is_err());
        assert!(WorkerModel::Hammer.validate().is_ok());
    }

    #[test]
    fn pool_annotates_every_cell() {
        let mut rng = Rng64::seed_from_u64(6);
        let pool = WorkerPool::graded(5, 0.6, 0.9).unwrap();
        let truth = vec![1u8, 0, 1, 1];
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        assert_eq!(ann.num_items(), 4);
        assert_eq!(ann.num_workers(), 5);
        assert_eq!(ann.total_annotations(), 20);
    }

    #[test]
    fn graded_pool_spans_range() {
        let pool = WorkerPool::graded(3, 0.5, 0.9).unwrap();
        match pool.workers()[0] {
            WorkerModel::OneCoin { accuracy } => assert!((accuracy - 0.5).abs() < 1e-12),
            _ => panic!("expected OneCoin"),
        }
        match pool.workers()[2] {
            WorkerModel::OneCoin { accuracy } => assert!((accuracy - 0.9).abs() < 1e-12),
            _ => panic!("expected OneCoin"),
        }
        assert!(WorkerPool::graded(0, 0.5, 0.9).is_err());
        assert!(WorkerPool::graded(3, 0.9, 0.5).is_err());
    }

    #[test]
    fn annotate_validates() {
        let mut rng = Rng64::seed_from_u64(7);
        let pool = WorkerPool::new(vec![]);
        assert!(pool.annotate(&[1], &mut rng).is_err());
        let pool = WorkerPool::graded(2, 0.7, 0.9).unwrap();
        assert!(pool.annotate(&[], &mut rng).is_err());
        assert!(pool.annotate(&[2], &mut rng).is_err());
        assert!(pool
            .annotate_with_difficulty(&[1, 0], Some(&[1.0]), &mut rng)
            .is_err());
        assert!(pool
            .annotate_with_difficulty(&[1, 0], Some(&[1.0, -1.0]), &mut rng)
            .is_err());
        let bad_pool = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 2.0 }]);
        assert!(bad_pool.annotate(&[1], &mut rng).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let pool = WorkerPool::graded(5, 0.6, 0.9).unwrap();
        let truth = vec![1u8, 0, 1];
        let a = pool.annotate(&truth, &mut Rng64::seed_from_u64(9)).unwrap();
        let b = pool.annotate(&truth, &mut Rng64::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
