//! The items × workers annotation table.

use crate::error::CrowdError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Crowdsourced labels for a set of items.
///
/// Storage is a dense `items x workers` grid of `Option<u8>` — `None` marks a
/// worker who did not annotate the item. Labels are class indices in
/// `0..num_classes`; the RLL paper's setting is binary (`num_classes == 2`,
/// label 1 = positive), and the whole workspace follows that convention, but
/// the table and the Dawid–Skene aggregator support general class counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnotationMatrix {
    num_items: usize,
    num_workers: usize,
    num_classes: u8,
    labels: Vec<Option<u8>>,
}

impl AnnotationMatrix {
    /// Creates an empty table (all cells unannotated).
    pub fn new(num_items: usize, num_workers: usize, num_classes: u8) -> Result<Self> {
        if num_classes < 2 {
            return Err(CrowdError::InvalidConfig {
                reason: format!("need at least 2 classes, got {num_classes}"),
            });
        }
        Ok(AnnotationMatrix {
            num_items,
            num_workers,
            num_classes,
            labels: vec![None; num_items * num_workers],
        })
    }

    /// Builds a binary table from dense per-item vote vectors (every worker
    /// annotated every item), the common case in the paper where each example
    /// receives exactly `d` labels.
    pub fn from_dense_binary(votes: &[Vec<u8>]) -> Result<Self> {
        let num_items = votes.len();
        if num_items == 0 {
            return Err(CrowdError::InvalidAnnotations {
                reason: "no items".into(),
            });
        }
        let num_workers = votes[0].len();
        if num_workers == 0 {
            return Err(CrowdError::InvalidAnnotations {
                reason: "no workers".into(),
            });
        }
        let mut m = AnnotationMatrix::new(num_items, num_workers, 2)?;
        for (i, row) in votes.iter().enumerate() {
            if row.len() != num_workers {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {i} has {} votes, expected {num_workers}", row.len()),
                });
            }
            for (w, &label) in row.iter().enumerate() {
                m.set(i, w, label)?;
            }
        }
        Ok(m)
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of classes.
    pub fn num_classes(&self) -> u8 {
        self.num_classes
    }

    /// Records worker `w`'s label for item `i`.
    pub fn set(&mut self, item: usize, worker: usize, label: u8) -> Result<()> {
        self.check_cell(item, worker)?;
        if label >= self.num_classes {
            return Err(CrowdError::InvalidAnnotations {
                reason: format!(
                    "label {label} out of range for {} classes",
                    self.num_classes
                ),
            });
        }
        self.labels[item * self.num_workers + worker] = Some(label);
        Ok(())
    }

    /// Clears worker `w`'s label for item `i`.
    pub fn unset(&mut self, item: usize, worker: usize) -> Result<()> {
        self.check_cell(item, worker)?;
        self.labels[item * self.num_workers + worker] = None;
        Ok(())
    }

    /// Worker `w`'s label for item `i`, if present.
    pub fn get(&self, item: usize, worker: usize) -> Result<Option<u8>> {
        self.check_cell(item, worker)?;
        Ok(self.labels[item * self.num_workers + worker])
    }

    /// All `(worker, label)` pairs for an item.
    pub fn item_labels(&self, item: usize) -> Result<Vec<(usize, u8)>> {
        if item >= self.num_items {
            return Err(CrowdError::InvalidAnnotations {
                reason: format!("item {item} out of range ({} items)", self.num_items),
            });
        }
        Ok(
            self.labels[item * self.num_workers..(item + 1) * self.num_workers]
                .iter()
                .enumerate()
                .filter_map(|(w, l)| l.map(|label| (w, label)))
                .collect(),
        )
    }

    /// All `(item, label)` pairs produced by a worker.
    pub fn worker_labels(&self, worker: usize) -> Result<Vec<(usize, u8)>> {
        if worker >= self.num_workers {
            return Err(CrowdError::InvalidAnnotations {
                reason: format!(
                    "worker {worker} out of range ({} workers)",
                    self.num_workers
                ),
            });
        }
        Ok((0..self.num_items)
            .filter_map(|i| self.labels[i * self.num_workers + worker].map(|l| (i, l)))
            .collect())
    }

    /// Per-class vote counts for an item.
    pub fn vote_counts(&self, item: usize) -> Result<Vec<usize>> {
        let mut counts = vec![0usize; self.num_classes as usize];
        for (_, label) in self.item_labels(item)? {
            counts[label as usize] += 1;
        }
        Ok(counts)
    }

    /// Number of annotations an item received.
    pub fn annotation_count(&self, item: usize) -> Result<usize> {
        Ok(self.item_labels(item)?.len())
    }

    /// Total number of annotations in the table.
    pub fn total_annotations(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Positive-vote count for a binary table (`Σ_j y_{i,j}` in the paper).
    pub fn positive_votes(&self, item: usize) -> Result<usize> {
        if self.num_classes != 2 {
            return Err(CrowdError::InvalidConfig {
                reason: format!(
                    "positive_votes requires a binary table, has {} classes",
                    self.num_classes
                ),
            });
        }
        Ok(self.vote_counts(item)?[1])
    }

    /// Ensures every item has at least `min` annotations; returns the indices
    /// of items that violate the requirement.
    pub fn items_below_coverage(&self, min: usize) -> Vec<usize> {
        (0..self.num_items)
            .filter(|&i| self.annotation_count(i).map(|c| c < min).unwrap_or(true))
            .collect()
    }

    /// Restricts the table to the first `d` workers, modelling the paper's
    /// Table III sweep over the number of crowd workers per item.
    pub fn restrict_workers(&self, d: usize) -> Result<AnnotationMatrix> {
        if d == 0 || d > self.num_workers {
            return Err(CrowdError::InvalidConfig {
                reason: format!(
                    "cannot restrict to {d} workers (table has {})",
                    self.num_workers
                ),
            });
        }
        let mut out = AnnotationMatrix::new(self.num_items, d, self.num_classes)?;
        for i in 0..self.num_items {
            for w in 0..d {
                if let Some(l) = self.labels[i * self.num_workers + w] {
                    out.set(i, w, l)?;
                }
            }
        }
        Ok(out)
    }

    /// Builds a sub-table containing only the given items (in the given
    /// order), used by cross-validation splits.
    pub fn select_items(&self, items: &[usize]) -> Result<AnnotationMatrix> {
        let mut out = AnnotationMatrix::new(items.len(), self.num_workers, self.num_classes)?;
        for (new_i, &old_i) in items.iter().enumerate() {
            if old_i >= self.num_items {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {old_i} out of range ({} items)", self.num_items),
                });
            }
            for w in 0..self.num_workers {
                if let Some(l) = self.labels[old_i * self.num_workers + w] {
                    out.set(new_i, w, l)?;
                }
            }
        }
        Ok(out)
    }

    fn check_cell(&self, item: usize, worker: usize) -> Result<()> {
        if item >= self.num_items || worker >= self.num_workers {
            return Err(CrowdError::InvalidAnnotations {
                reason: format!(
                    "cell ({item}, {worker}) out of range for {}x{} table",
                    self.num_items, self.num_workers
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AnnotationMatrix {
        // 3 items, 3 workers. Item 2 is missing worker 1's vote.
        let mut m = AnnotationMatrix::new(3, 3, 2).unwrap();
        m.set(0, 0, 1).unwrap();
        m.set(0, 1, 1).unwrap();
        m.set(0, 2, 0).unwrap();
        m.set(1, 0, 0).unwrap();
        m.set(1, 1, 0).unwrap();
        m.set(1, 2, 0).unwrap();
        m.set(2, 0, 1).unwrap();
        m.set(2, 2, 1).unwrap();
        m
    }

    #[test]
    fn construction_validates_classes() {
        assert!(AnnotationMatrix::new(2, 2, 1).is_err());
        assert!(AnnotationMatrix::new(2, 2, 2).is_ok());
        assert!(AnnotationMatrix::new(0, 0, 3).is_ok());
    }

    #[test]
    fn set_get_round_trip() {
        let m = table();
        assert_eq!(m.get(0, 0).unwrap(), Some(1));
        assert_eq!(m.get(2, 1).unwrap(), None);
        assert!(m.get(3, 0).is_err());
        assert!(m.get(0, 5).is_err());
    }

    #[test]
    fn set_rejects_bad_label() {
        let mut m = table();
        assert!(m.set(0, 0, 2).is_err());
        assert!(m.set(9, 0, 1).is_err());
    }

    #[test]
    fn unset_clears() {
        let mut m = table();
        m.unset(0, 0).unwrap();
        assert_eq!(m.get(0, 0).unwrap(), None);
        assert!(m.unset(9, 0).is_err());
    }

    #[test]
    fn item_and_worker_views() {
        let m = table();
        assert_eq!(m.item_labels(0).unwrap(), vec![(0, 1), (1, 1), (2, 0)]);
        assert_eq!(m.item_labels(2).unwrap(), vec![(0, 1), (2, 1)]);
        assert_eq!(m.worker_labels(1).unwrap(), vec![(0, 1), (1, 0)]);
        assert!(m.item_labels(5).is_err());
        assert!(m.worker_labels(5).is_err());
    }

    #[test]
    fn vote_counts_and_positive_votes() {
        let m = table();
        assert_eq!(m.vote_counts(0).unwrap(), vec![1, 2]);
        assert_eq!(m.positive_votes(0).unwrap(), 2);
        assert_eq!(m.positive_votes(1).unwrap(), 0);
        assert_eq!(m.annotation_count(2).unwrap(), 2);
        assert_eq!(m.total_annotations(), 8);
    }

    #[test]
    fn positive_votes_requires_binary() {
        let m = AnnotationMatrix::new(1, 2, 3).unwrap();
        assert!(m.positive_votes(0).is_err());
    }

    #[test]
    fn coverage_report() {
        let m = table();
        assert_eq!(m.items_below_coverage(3), vec![2]);
        assert!(m.items_below_coverage(1).is_empty());
    }

    #[test]
    fn from_dense_binary_builds_full_table() {
        let m = AnnotationMatrix::from_dense_binary(&[vec![1, 0, 1], vec![0, 0, 1]]).unwrap();
        assert_eq!(m.num_items(), 2);
        assert_eq!(m.num_workers(), 3);
        assert_eq!(m.total_annotations(), 6);
        assert!(AnnotationMatrix::from_dense_binary(&[]).is_err());
        assert!(AnnotationMatrix::from_dense_binary(&[vec![]]).is_err());
        assert!(AnnotationMatrix::from_dense_binary(&[vec![1], vec![1, 0]]).is_err());
        assert!(AnnotationMatrix::from_dense_binary(&[vec![2]]).is_err());
    }

    #[test]
    fn restrict_workers_drops_columns() {
        let m = table();
        let r = m.restrict_workers(2).unwrap();
        assert_eq!(r.num_workers(), 2);
        assert_eq!(r.item_labels(0).unwrap(), vec![(0, 1), (1, 1)]);
        assert_eq!(r.item_labels(2).unwrap(), vec![(0, 1)]);
        assert!(m.restrict_workers(0).is_err());
        assert!(m.restrict_workers(4).is_err());
    }

    #[test]
    fn select_items_reorders() {
        let m = table();
        let s = m.select_items(&[2, 0]).unwrap();
        assert_eq!(s.num_items(), 2);
        assert_eq!(s.item_labels(0).unwrap(), vec![(0, 1), (2, 1)]);
        assert_eq!(s.item_labels(1).unwrap(), vec![(0, 1), (1, 1), (2, 0)]);
        assert!(m.select_items(&[7]).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let m = table();
        let json = serde_json::to_string(&m).unwrap();
        let back: AnnotationMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
