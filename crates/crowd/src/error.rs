//! Typed errors for the crowdsourcing substrate.

use rll_tensor::TensorError;
use std::fmt;

/// Errors produced by annotation handling, aggregation, and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CrowdError {
    /// A tensor operation failed.
    Tensor(TensorError),
    /// The annotation matrix was malformed (e.g. a label outside the class
    /// range, or an item with no annotations where one is required).
    InvalidAnnotations {
        /// Human-readable description.
        reason: String,
    },
    /// A model or estimator configuration was invalid.
    InvalidConfig {
        /// Human-readable description.
        reason: String,
    },
    /// An iterative algorithm failed to make progress (e.g. EM produced a
    /// non-finite likelihood).
    NumericalFailure {
        /// Algorithm name.
        algorithm: &'static str,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::Tensor(e) => write!(f, "tensor error: {e}"),
            CrowdError::InvalidAnnotations { reason } => {
                write!(f, "invalid annotations: {reason}")
            }
            CrowdError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CrowdError::NumericalFailure { algorithm, reason } => {
                write!(f, "numerical failure in {algorithm}: {reason}")
            }
        }
    }
}

impl std::error::Error for CrowdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrowdError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CrowdError {
    fn from(e: TensorError) -> Self {
        CrowdError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CrowdError::InvalidAnnotations {
            reason: "label 3 with 2 classes".into(),
        };
        assert!(e.to_string().contains("label 3"));
        let e = CrowdError::NumericalFailure {
            algorithm: "dawid-skene",
            reason: "NaN likelihood".into(),
        };
        assert!(e.to_string().contains("dawid-skene"));
        let t: CrowdError = TensorError::Empty { op: "mean" }.into();
        assert!(t.source().is_some());
    }
}
