//! Dawid–Skene EM estimator of true labels and worker confusion matrices.
//!
//! The paper's "EM" baseline: labels are latent, each worker `w` has a
//! confusion matrix `π_w[true][observed]`, and EM alternates between
//!
//! - **E-step**: posterior over each item's true class given current worker
//!   confusions and the class prior;
//! - **M-step**: re-estimate class priors and confusion matrices from the
//!   posteriors (with a small Laplace smoothing so empty cells stay finite).
//!
//! The observed-data log-likelihood is tracked per iteration and is
//! non-decreasing (a property test asserts this).

// Index-based loops below walk several parallel arrays at once; iterator
// zips would obscure the alignment, so the clippy lint is silenced.
#![allow(clippy::needless_range_loop)]

use crate::aggregate::Aggregator;
use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Configuration for the Dawid–Skene EM run.
///
/// ```
/// use rll_crowd::aggregate::{Aggregator, DawidSkene};
/// use rll_crowd::AnnotationMatrix;
///
/// // Three items, three workers; worker 2 disagrees once.
/// let ann = AnnotationMatrix::from_dense_binary(&[
///     vec![1, 1, 0],
///     vec![0, 0, 0],
///     vec![1, 1, 1],
/// ])?;
/// let labels = DawidSkene::default().hard_labels(&ann)?;
/// assert_eq!(labels, vec![1, 0, 1]);
/// # Ok::<(), rll_crowd::CrowdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the absolute log-likelihood improvement.
    pub tol: f64,
    /// Laplace smoothing pseudo-count for confusion-matrix cells.
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            max_iters: 100,
            tol: 1e-7,
            smoothing: 0.01,
        }
    }
}

/// A fitted Dawid–Skene model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DawidSkeneFit {
    /// Per-item class posteriors, `num_items x num_classes`.
    pub posteriors: Vec<Vec<f64>>,
    /// Class prior estimated in the final M-step.
    pub class_prior: Vec<f64>,
    /// Per-worker confusion matrices, `num_workers x num_classes x num_classes`
    /// (`confusions[w][true][observed]`).
    pub confusions: Vec<Vec<Vec<f64>>>,
    /// Observed-data log-likelihood after each iteration.
    pub log_likelihoods: Vec<f64>,
    /// Number of EM iterations performed.
    pub iterations: usize,
    /// Whether the run stopped because the tolerance was met (vs. hitting
    /// `max_iters`).
    pub converged: bool,
}

impl DawidSkene {
    /// Creates a config with explicit limits.
    pub fn new(max_iters: usize, tol: f64) -> Result<Self> {
        if max_iters == 0 {
            return Err(CrowdError::InvalidConfig {
                reason: "max_iters must be positive".into(),
            });
        }
        if tol < 0.0 || !tol.is_finite() {
            return Err(CrowdError::InvalidConfig {
                reason: format!("tol must be non-negative and finite, got {tol}"),
            });
        }
        Ok(DawidSkene {
            max_iters,
            tol,
            ..DawidSkene::default()
        })
    }

    /// Runs EM and returns the full fit.
    pub fn fit(&self, annotations: &AnnotationMatrix) -> Result<DawidSkeneFit> {
        let n = annotations.num_items();
        let w = annotations.num_workers();
        let c = annotations.num_classes() as usize;
        if n == 0 || w == 0 {
            return Err(CrowdError::InvalidAnnotations {
                reason: "Dawid-Skene requires at least one item and one worker".into(),
            });
        }
        for i in 0..n {
            if annotations.annotation_count(i)? == 0 {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {i} has no annotations"),
                });
            }
        }

        // Initialize posteriors from per-item vote fractions (the standard
        // majority-vote initialization).
        let mut posteriors: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let counts = annotations.vote_counts(i)?;
                let total: usize = counts.iter().sum();
                Ok(counts.iter().map(|&x| x as f64 / total as f64).collect())
            })
            .collect::<Result<_>>()?;

        let mut class_prior = vec![1.0 / c as f64; c];
        let mut confusions = vec![vec![vec![0.0; c]; c]; w];
        let mut log_likelihoods = Vec::new();
        let mut converged = false;
        let mut iterations = 0;

        for _ in 0..self.max_iters {
            iterations += 1;
            // ---------------- M-step ----------------
            // Class prior.
            for k in 0..c {
                class_prior[k] = posteriors.iter().map(|p| p[k]).sum::<f64>() / n as f64;
            }
            // Worker confusion matrices with Laplace smoothing.
            for worker in 0..w {
                let mut counts = vec![vec![self.smoothing; c]; c];
                for (item, observed) in annotations.worker_labels(worker)? {
                    for (k, row) in counts.iter_mut().enumerate() {
                        row[observed as usize] += posteriors[item][k];
                    }
                }
                for (k, row) in counts.iter().enumerate() {
                    let total: f64 = row.iter().sum();
                    for l in 0..c {
                        confusions[worker][k][l] = row[l] / total;
                    }
                }
            }

            // ---------------- E-step ----------------
            let mut ll = 0.0;
            for i in 0..n {
                let mut log_post: Vec<f64> =
                    class_prior.iter().map(|&p| p.max(1e-300).ln()).collect();
                for (worker, observed) in annotations.item_labels(i)? {
                    for (k, lp) in log_post.iter_mut().enumerate() {
                        *lp += confusions[worker][k][observed as usize].max(1e-300).ln();
                    }
                }
                let lse = rll_tensor::ops::log_sum_exp(&log_post)?;
                if !lse.is_finite() {
                    return Err(CrowdError::NumericalFailure {
                        algorithm: "dawid-skene",
                        reason: format!("non-finite likelihood at item {i}"),
                    });
                }
                ll += lse;
                for (k, lp) in log_post.iter().enumerate() {
                    posteriors[i][k] = (lp - lse).exp();
                }
            }
            let improved = log_likelihoods
                .last()
                .map(|&prev: &f64| (ll - prev).abs() < self.tol)
                .unwrap_or(false);
            log_likelihoods.push(ll);
            if improved {
                converged = true;
                break;
            }
        }

        Ok(DawidSkeneFit {
            posteriors,
            class_prior,
            confusions,
            log_likelihoods,
            iterations,
            converged,
        })
    }
}

impl Aggregator for DawidSkene {
    fn posteriors(&self, annotations: &AnnotationMatrix) -> Result<Vec<Vec<f64>>> {
        Ok(self.fit(annotations)?.posteriors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn simulated(n: usize, accs: &[f64], seed: u64) -> (AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.6))).collect();
        let pool = WorkerPool::new(
            accs.iter()
                .map(|&a| WorkerModel::OneCoin { accuracy: a })
                .collect(),
        );
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (ann, truth)
    }

    #[test]
    fn recovers_labels_with_reliable_workers() {
        let (ann, truth) = simulated(200, &[0.9, 0.85, 0.9, 0.8, 0.95], 1);
        let fit = DawidSkene::default().fit(&ann).unwrap();
        let labels = DawidSkene::default().hard_labels(&ann).unwrap();
        let acc =
            labels.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert!(fit.iterations >= 1);
    }

    #[test]
    fn log_likelihood_non_decreasing() {
        let (ann, _) = simulated(100, &[0.8, 0.7, 0.6, 0.9, 0.75], 2);
        let fit = DawidSkene::default().fit(&ann).unwrap();
        for pair in fit.log_likelihoods.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-6,
                "LL decreased: {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn identifies_worker_quality() {
        let (ann, _) = simulated(400, &[0.95, 0.55, 0.95, 0.95, 0.95], 3);
        let fit = DawidSkene::default().fit(&ann).unwrap();
        // Diagonal mass of the good worker 0 should exceed the spammer 1.
        let diag = |w: usize| fit.confusions[w][0][0] + fit.confusions[w][1][1];
        assert!(diag(0) > diag(1) + 0.3, "{} vs {}", diag(0), diag(1));
    }

    #[test]
    fn beats_majority_vote_with_mixed_quality() {
        // Three noisy workers outvote two excellent ones under MV; DS should
        // discover the reliable pair and do at least as well.
        let (ann, truth) = simulated(500, &[0.95, 0.95, 0.58, 0.58, 0.58], 4);
        let ds = DawidSkene::default().hard_labels(&ann).unwrap();
        let mv = crate::aggregate::MajorityVote::positive_ties()
            .hard_labels(&ann)
            .unwrap();
        let acc = |ls: &[u8]| {
            ls.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
        };
        assert!(
            acc(&ds) >= acc(&mv),
            "DS {} should be >= MV {}",
            acc(&ds),
            acc(&mv)
        );
        assert!(acc(&ds) > 0.9);
    }

    #[test]
    fn posteriors_are_distributions() {
        let (ann, _) = simulated(50, &[0.7, 0.8, 0.9], 5);
        let post = DawidSkene::default().posteriors(&ann).unwrap();
        for row in post {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(DawidSkene::new(0, 1e-6).is_err());
        assert!(DawidSkene::new(10, -1.0).is_err());
        let empty = AnnotationMatrix::new(0, 3, 2).unwrap();
        assert!(DawidSkene::default().fit(&empty).is_err());
        let mut sparse = AnnotationMatrix::new(2, 2, 2).unwrap();
        sparse.set(0, 0, 1).unwrap();
        assert!(DawidSkene::default().fit(&sparse).is_err());
    }

    #[test]
    fn converges_quickly_on_unanimous_data() {
        let ann =
            AnnotationMatrix::from_dense_binary(&[vec![1; 5], vec![0; 5], vec![1; 5]]).unwrap();
        let fit = DawidSkene::default().fit(&ann).unwrap();
        assert!(fit.converged);
        let labels = DawidSkene::default().hard_labels(&ann).unwrap();
        assert_eq!(labels, vec![1, 0, 1]);
    }

    #[test]
    fn multiclass_support() {
        let mut rng = Rng64::seed_from_u64(6);
        let truth: Vec<u8> = (0..150).map(|_| rng.below(3).unwrap() as u8).collect();
        let mut ann = AnnotationMatrix::new(truth.len(), 4, 3).unwrap();
        for (i, &t) in truth.iter().enumerate() {
            for w in 0..4 {
                let observed = if rng.bernoulli(0.8) {
                    t
                } else {
                    rng.below(3).unwrap() as u8
                };
                ann.set(i, w, observed).unwrap();
            }
        }
        let labels = DawidSkene::default().hard_labels(&ann).unwrap();
        let acc =
            labels.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64;
        assert!(acc > 0.9, "multiclass accuracy {acc}");
    }
}
