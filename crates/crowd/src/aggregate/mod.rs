//! True-label inference from crowdsourced annotations.
//!
//! These are the paper's Group-1 baselines plus the majority-vote rule the
//! Group-2/Group-4 methods use to pick training labels. Every aggregator
//! implements [`Aggregator`]: given an [`AnnotationMatrix`] it produces a
//! per-item posterior over classes, from which hard labels follow by argmax.

pub mod dawid_skene;
pub mod glad;
pub mod majority;
pub mod raykar;
pub mod soft;

pub use dawid_skene::{DawidSkene, DawidSkeneFit};
pub use glad::{Glad, GladFit};
pub use majority::{MajorityVote, TieBreak};
pub use raykar::{Raykar, RaykarFit};
pub use soft::SoftLabels;

use crate::annotations::AnnotationMatrix;
use crate::Result;

/// A crowd-label aggregation algorithm.
pub trait Aggregator {
    /// Per-item class posteriors, shape `num_items x num_classes`; each row
    /// sums to 1.
    fn posteriors(&self, annotations: &AnnotationMatrix) -> Result<Vec<Vec<f64>>>;

    /// Hard labels by argmax over [`Aggregator::posteriors`].
    fn hard_labels(&self, annotations: &AnnotationMatrix) -> Result<Vec<u8>> {
        let post = self.posteriors(annotations)?;
        post.iter()
            .map(|row| {
                rll_tensor::ops::argmax(row)
                    .map(|i| i as u8)
                    .map_err(Into::into)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_labels_follow_posteriors() {
        struct Fixed;
        impl Aggregator for Fixed {
            fn posteriors(&self, ann: &AnnotationMatrix) -> Result<Vec<Vec<f64>>> {
                Ok((0..ann.num_items())
                    .map(|i| {
                        if i % 2 == 0 {
                            vec![0.9, 0.1]
                        } else {
                            vec![0.2, 0.8]
                        }
                    })
                    .collect())
            }
        }
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1], vec![0], vec![1]]).unwrap();
        assert_eq!(Fixed.hard_labels(&ann).unwrap(), vec![0, 1, 0]);
    }
}
