//! Majority vote with configurable tie-breaking.

use crate::aggregate::Aggregator;
use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use rll_tensor::Rng64;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// What to do when two or more classes tie for the most votes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TieBreak {
    /// Pick the lowest class index (deterministic, biases toward negative in
    /// the binary setting).
    LowestClass,
    /// Pick the highest class index (biases toward positive).
    HighestClass,
    /// Pick uniformly at random among the tied classes (seeded).
    Random {
        /// Seed for the tie-breaking stream.
        seed: u64,
    },
}

/// The majority-vote aggregator.
///
/// Posteriors are vote fractions; ties in [`Aggregator::hard_labels`] resolve
/// per [`TieBreak`]. Items with zero annotations are an error — majority vote
/// has no opinion about them.
#[derive(Debug, Clone)]
pub struct MajorityVote {
    tie_break: TieBreak,
    rng: RefCell<Rng64>,
}

impl MajorityVote {
    /// Creates the aggregator with the given tie-breaking rule.
    pub fn new(tie_break: TieBreak) -> Self {
        let seed = match tie_break {
            TieBreak::Random { seed } => seed,
            _ => 0,
        };
        MajorityVote {
            tie_break,
            rng: RefCell::new(Rng64::seed_from_u64(seed)),
        }
    }

    /// Majority vote breaking ties toward the positive class, the convention
    /// the paper's Group-2 baselines use ("majority vote from the
    /// crowdsourced labels").
    pub fn positive_ties() -> Self {
        MajorityVote::new(TieBreak::HighestClass)
    }
}

impl Aggregator for MajorityVote {
    fn posteriors(&self, annotations: &AnnotationMatrix) -> Result<Vec<Vec<f64>>> {
        let mut out = Vec::with_capacity(annotations.num_items());
        for i in 0..annotations.num_items() {
            let counts = annotations.vote_counts(i)?;
            let total: usize = counts.iter().sum();
            if total == 0 {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {i} has no annotations"),
                });
            }
            out.push(counts.iter().map(|&c| c as f64 / total as f64).collect());
        }
        Ok(out)
    }

    fn hard_labels(&self, annotations: &AnnotationMatrix) -> Result<Vec<u8>> {
        let mut labels = Vec::with_capacity(annotations.num_items());
        for i in 0..annotations.num_items() {
            let counts = annotations.vote_counts(i)?;
            let total: usize = counts.iter().sum();
            if total == 0 {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {i} has no annotations"),
                });
            }
            // `total > 0` (checked above) means `counts` is non-empty; the
            // fallback keeps this branch panic-free regardless.
            let max = counts.iter().copied().max().unwrap_or(0);
            let tied: Vec<u8> = counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c == max)
                .map(|(cls, _)| cls as u8)
                .collect();
            let label = if tied.len() == 1 {
                tied[0]
            } else {
                match self.tie_break {
                    TieBreak::LowestClass => tied[0],
                    TieBreak::HighestClass => tied.last().copied().unwrap_or(0),
                    TieBreak::Random { .. } => {
                        let mut rng = self.rng.borrow_mut();
                        *rng.choose(&tied)?
                    }
                }
            };
            labels.push(label);
        }
        Ok(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_majorities() {
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1, 1, 1, 0, 0], vec![0, 0, 0, 0, 1]])
            .unwrap();
        let mv = MajorityVote::positive_ties();
        assert_eq!(mv.hard_labels(&ann).unwrap(), vec![1, 0]);
        let post = mv.posteriors(&ann).unwrap();
        assert!((post[0][1] - 0.6).abs() < 1e-12);
        assert!((post[1][0] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn tie_breaking_rules() {
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1, 0, 1, 0]]).unwrap();
        assert_eq!(
            MajorityVote::new(TieBreak::LowestClass)
                .hard_labels(&ann)
                .unwrap(),
            vec![0]
        );
        assert_eq!(
            MajorityVote::new(TieBreak::HighestClass)
                .hard_labels(&ann)
                .unwrap(),
            vec![1]
        );
        // Random tie-break is deterministic for a fixed seed.
        let a = MajorityVote::new(TieBreak::Random { seed: 1 })
            .hard_labels(&ann)
            .unwrap();
        let b = MajorityVote::new(TieBreak::Random { seed: 1 })
            .hard_labels(&ann)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn random_tie_break_hits_both_sides() {
        let ann = AnnotationMatrix::from_dense_binary(&vec![vec![1, 0]; 64]).unwrap();
        let mv = MajorityVote::new(TieBreak::Random { seed: 3 });
        let labels = mv.hard_labels(&ann).unwrap();
        assert!(labels.contains(&0));
        assert!(labels.contains(&1));
    }

    #[test]
    fn empty_item_is_error() {
        let mut ann = AnnotationMatrix::new(2, 3, 2).unwrap();
        ann.set(0, 0, 1).unwrap();
        let mv = MajorityVote::positive_ties();
        assert!(mv.hard_labels(&ann).is_err());
        assert!(mv.posteriors(&ann).is_err());
    }

    #[test]
    fn multiclass_majority() {
        let mut ann = AnnotationMatrix::new(1, 4, 3).unwrap();
        ann.set(0, 0, 2).unwrap();
        ann.set(0, 1, 2).unwrap();
        ann.set(0, 2, 0).unwrap();
        ann.set(0, 3, 1).unwrap();
        let mv = MajorityVote::new(TieBreak::LowestClass);
        assert_eq!(mv.hard_labels(&ann).unwrap(), vec![2]);
    }
}
