//! Soft probabilistic labels (the paper's SoftProb baseline).
//!
//! Rather than inferring one hard label per item, every `(instance, label)`
//! pair contributed by a crowd worker is kept — equivalently, each item gets a
//! *soft* label equal to its per-class vote fraction, "a soft probabilistic
//! estimate of the actual ground truth" (Raykar et al., cited by the paper as
//! the SoftProb baseline). Downstream classifiers consume either the soft
//! targets directly or the expanded pair list with per-pair weights.

use crate::aggregate::Aggregator;
use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;

/// The SoftProb aggregator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftLabels;

impl SoftLabels {
    /// Creates the aggregator.
    pub fn new() -> Self {
        SoftLabels
    }

    /// Expands the table into `(item, label)` training pairs — one per
    /// annotation — exactly the "every pair provided by each crowd worker as a
    /// separate example" construction from the paper.
    pub fn expand_pairs(&self, annotations: &AnnotationMatrix) -> Result<Vec<(usize, u8)>> {
        let mut pairs = Vec::with_capacity(annotations.total_annotations());
        for i in 0..annotations.num_items() {
            for (_, label) in annotations.item_labels(i)? {
                pairs.push((i, label));
            }
        }
        Ok(pairs)
    }

    /// Per-item soft positive targets for a binary table (`P(y=1)` = positive
    /// vote fraction).
    pub fn soft_binary_targets(&self, annotations: &AnnotationMatrix) -> Result<Vec<f64>> {
        if annotations.num_classes() != 2 {
            return Err(CrowdError::InvalidConfig {
                reason: "soft_binary_targets requires a binary table".into(),
            });
        }
        self.posteriors(annotations)
            .map(|rows| rows.into_iter().map(|r| r[1]).collect())
    }
}

impl Aggregator for SoftLabels {
    fn posteriors(&self, annotations: &AnnotationMatrix) -> Result<Vec<Vec<f64>>> {
        let mut out = Vec::with_capacity(annotations.num_items());
        for i in 0..annotations.num_items() {
            let counts = annotations.vote_counts(i)?;
            let total: usize = counts.iter().sum();
            if total == 0 {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {i} has no annotations"),
                });
            }
            out.push(counts.iter().map(|&c| c as f64 / total as f64).collect());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_targets_are_vote_fractions() {
        let ann = AnnotationMatrix::from_dense_binary(&[
            vec![1, 1, 1, 0, 0],
            vec![1, 1, 1, 1, 1],
            vec![0, 0, 0, 0, 0],
        ])
        .unwrap();
        let s = SoftLabels::new();
        let targets = s.soft_binary_targets(&ann).unwrap();
        assert!((targets[0] - 0.6).abs() < 1e-12);
        assert_eq!(targets[1], 1.0);
        assert_eq!(targets[2], 0.0);
    }

    #[test]
    fn expand_pairs_one_per_annotation() {
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1, 0], vec![1, 1]]).unwrap();
        let pairs = SoftLabels::new().expand_pairs(&ann).unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs, vec![(0, 1), (0, 0), (1, 1), (1, 1)]);
    }

    #[test]
    fn expand_pairs_skips_missing_votes() {
        let mut ann = AnnotationMatrix::new(2, 3, 2).unwrap();
        ann.set(0, 0, 1).unwrap();
        ann.set(1, 2, 0).unwrap();
        let pairs = SoftLabels::new().expand_pairs(&ann).unwrap();
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn requires_binary_for_soft_targets() {
        let ann = AnnotationMatrix::new(1, 2, 3).unwrap();
        assert!(SoftLabels::new().soft_binary_targets(&ann).is_err());
    }

    #[test]
    fn hard_labels_are_majority() {
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1, 1, 0], vec![0, 0, 1]]).unwrap();
        assert_eq!(SoftLabels::new().hard_labels(&ann).unwrap(), vec![1, 0]);
    }
}
