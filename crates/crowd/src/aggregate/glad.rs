//! GLAD: Generative model of Labels, Abilities, and Difficulties
//! (Whitehill et al., NIPS 2009) — the paper's "GLAD" baseline.
//!
//! Binary true labels `z_i` are latent. Worker `j` has ability `α_j ∈ ℝ`
//! (negative = adversarial) and item `i` has inverse-difficulty
//! `β_i = exp(b_i) > 0`. A label is correct with probability
//! `σ(α_j β_i)`. EM alternates a closed-form E-step over `z` with a
//! gradient-ascent M-step over `(α, b)`; a weak Gaussian prior on both keeps
//! the ascent bounded.

use crate::aggregate::Aggregator;
use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use rll_tensor::ops::{log_sum_exp, sigmoid};
use serde::{Deserialize, Serialize};

/// Configuration for a GLAD run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Glad {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the log-likelihood improvement.
    pub tol: f64,
    /// Gradient-ascent steps per M-step.
    pub m_steps: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
    /// Precision of the zero-mean Gaussian prior on `α` and `b`.
    pub prior_precision: f64,
    /// Prior probability of the positive class.
    pub positive_prior: f64,
}

impl Default for Glad {
    fn default() -> Self {
        Glad {
            max_iters: 60,
            tol: 1e-6,
            m_steps: 20,
            learning_rate: 0.05,
            prior_precision: 0.01,
            positive_prior: 0.5,
        }
    }
}

/// A fitted GLAD model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GladFit {
    /// Posterior `P(z_i = 1)` per item.
    pub posterior_positive: Vec<f64>,
    /// Worker abilities `α_j`.
    pub abilities: Vec<f64>,
    /// Item inverse-difficulties `β_i` (larger = easier).
    pub inverse_difficulties: Vec<f64>,
    /// Log-likelihood trace.
    pub log_likelihoods: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
}

impl Glad {
    /// Creates a config with explicit EM limits, keeping the other defaults.
    pub fn new(max_iters: usize, tol: f64) -> Result<Self> {
        if max_iters == 0 {
            return Err(CrowdError::InvalidConfig {
                reason: "max_iters must be positive".into(),
            });
        }
        if tol < 0.0 || !tol.is_finite() {
            return Err(CrowdError::InvalidConfig {
                reason: format!("tol must be non-negative and finite, got {tol}"),
            });
        }
        Ok(Glad {
            max_iters,
            tol,
            ..Glad::default()
        })
    }

    /// Sets the positive-class prior (e.g. from the dataset class ratio).
    pub fn with_positive_prior(mut self, prior: f64) -> Result<Self> {
        // Open interval (0, 1): rejects 0, 1, and NaN in one comparison.
        if !(prior > 0.0 && prior < 1.0) {
            return Err(CrowdError::InvalidConfig {
                reason: format!("positive prior must be in (0, 1), got {prior}"),
            });
        }
        self.positive_prior = prior;
        Ok(self)
    }

    /// Runs EM and returns the full fit.
    pub fn fit(&self, annotations: &AnnotationMatrix) -> Result<GladFit> {
        if annotations.num_classes() != 2 {
            return Err(CrowdError::InvalidConfig {
                reason: "GLAD supports binary labels only".into(),
            });
        }
        let n = annotations.num_items();
        let w = annotations.num_workers();
        if n == 0 || w == 0 {
            return Err(CrowdError::InvalidAnnotations {
                reason: "GLAD requires at least one item and one worker".into(),
            });
        }
        for i in 0..n {
            if annotations.annotation_count(i)? == 0 {
                return Err(CrowdError::InvalidAnnotations {
                    reason: format!("item {i} has no annotations"),
                });
            }
        }

        // Flatten annotations once: (item, worker, label).
        let mut obs: Vec<(usize, usize, u8)> = Vec::with_capacity(annotations.total_annotations());
        for i in 0..n {
            for (j, l) in annotations.item_labels(i)? {
                obs.push((i, j, l));
            }
        }

        let mut alpha = vec![1.0_f64; w]; // start mildly competent
        let mut b = vec![0.0_f64; n]; // β = e^0 = 1
        let mut post = vec![self.positive_prior; n];
        let log_prior_pos = self.positive_prior.ln();
        let log_prior_neg = (1.0 - self.positive_prior).ln();
        let mut log_likelihoods: Vec<f64> = Vec::new();
        let mut converged = false;
        let mut iterations = 0;

        for _ in 0..self.max_iters {
            iterations += 1;

            // ---------------- E-step ----------------
            let mut ll = 0.0;
            let mut log_pos = vec![log_prior_pos; n];
            let mut log_neg = vec![log_prior_neg; n];
            for &(i, j, l) in &obs {
                let x = alpha[j] * b[i].exp();
                let log_correct = rll_tensor::ops::log_sigmoid(x);
                let log_wrong = rll_tensor::ops::log_sigmoid(-x);
                if l == 1 {
                    log_pos[i] += log_correct;
                    log_neg[i] += log_wrong;
                } else {
                    log_pos[i] += log_wrong;
                    log_neg[i] += log_correct;
                }
            }
            for i in 0..n {
                let lse = log_sum_exp(&[log_pos[i], log_neg[i]])?;
                if !lse.is_finite() {
                    return Err(CrowdError::NumericalFailure {
                        algorithm: "glad",
                        reason: format!("non-finite likelihood at item {i}"),
                    });
                }
                post[i] = (log_pos[i] - lse).exp();
                ll += lse;
            }

            // ---------------- M-step (gradient ascent) ----------------
            for _ in 0..self.m_steps {
                let mut g_alpha = vec![0.0; w];
                let mut g_b = vec![0.0; n];
                for &(i, j, l) in &obs {
                    let beta = b[i].exp();
                    let s = sigmoid(alpha[j] * beta);
                    // Expected "label matches z" indicator under the posterior.
                    let m = if l == 1 { post[i] } else { 1.0 - post[i] };
                    let common = m - s;
                    g_alpha[j] += common * beta;
                    g_b[i] += common * alpha[j] * beta;
                }
                for j in 0..w {
                    g_alpha[j] -= self.prior_precision * alpha[j];
                    alpha[j] += self.learning_rate * g_alpha[j];
                }
                for i in 0..n {
                    g_b[i] -= self.prior_precision * b[i];
                    b[i] += self.learning_rate * g_b[i];
                    // Keep β in a numerically safe range.
                    b[i] = b[i].clamp(-6.0, 6.0);
                }
            }

            let done = log_likelihoods
                .last()
                .map(|&prev| (ll - prev).abs() < self.tol)
                .unwrap_or(false);
            log_likelihoods.push(ll);
            if done {
                converged = true;
                break;
            }
        }

        Ok(GladFit {
            posterior_positive: post,
            abilities: alpha,
            inverse_difficulties: b.iter().map(|x| x.exp()).collect(),
            log_likelihoods,
            iterations,
            converged,
        })
    }
}

impl Aggregator for Glad {
    fn posteriors(&self, annotations: &AnnotationMatrix) -> Result<Vec<Vec<f64>>> {
        let fit = self.fit(annotations)?;
        Ok(fit
            .posterior_positive
            .iter()
            .map(|&p| vec![1.0 - p, p])
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    fn simulated(n: usize, accs: &[f64], seed: u64) -> (AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let pool = WorkerPool::new(
            accs.iter()
                .map(|&a| WorkerModel::OneCoin { accuracy: a })
                .collect(),
        );
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (ann, truth)
    }

    fn accuracy(labels: &[u8], truth: &[u8]) -> f64 {
        labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn recovers_labels_with_reliable_workers() {
        let (ann, truth) = simulated(200, &[0.9, 0.85, 0.8, 0.9, 0.85], 11);
        let labels = Glad::default().hard_labels(&ann).unwrap();
        assert!(accuracy(&labels, &truth) > 0.93);
    }

    #[test]
    fn ability_separates_good_from_bad_workers() {
        let (ann, _) = simulated(400, &[0.95, 0.95, 0.52, 0.95, 0.52], 12);
        let fit = Glad::default().fit(&ann).unwrap();
        let good = (fit.abilities[0] + fit.abilities[1] + fit.abilities[3]) / 3.0;
        let bad = (fit.abilities[2] + fit.abilities[4]) / 2.0;
        assert!(good > bad + 0.5, "good {good} vs bad {bad}");
    }

    #[test]
    fn log_likelihood_trends_upward() {
        let (ann, _) = simulated(100, &[0.8, 0.7, 0.9, 0.6, 0.75], 13);
        let fit = Glad::default().fit(&ann).unwrap();
        let first = fit.log_likelihoods.first().unwrap();
        let last = fit.log_likelihoods.last().unwrap();
        assert!(last >= first, "LL fell from {first} to {last}");
    }

    #[test]
    fn posteriors_are_distributions() {
        let (ann, _) = simulated(60, &[0.8, 0.8, 0.8], 14);
        for row in Glad::default().posteriors(&ann).unwrap() {
            assert!((row[0] + row[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn validates_inputs() {
        assert!(Glad::new(0, 1e-6).is_err());
        assert!(Glad::new(10, f64::NAN).is_err());
        assert!(Glad::default().with_positive_prior(0.0).is_err());
        assert!(Glad::default().with_positive_prior(1.0).is_err());
        let multi = AnnotationMatrix::new(2, 2, 3).unwrap();
        assert!(Glad::default().fit(&multi).is_err());
        let mut sparse = AnnotationMatrix::new(2, 2, 2).unwrap();
        sparse.set(0, 0, 1).unwrap();
        assert!(Glad::default().fit(&sparse).is_err());
    }

    #[test]
    fn class_prior_shifts_uncertain_items() {
        // One item, one coin-flip vote each way from two workers: the
        // posterior should lean toward the configured prior.
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1, 0]]).unwrap();
        let high = Glad::default()
            .with_positive_prior(0.9)
            .unwrap()
            .fit(&ann)
            .unwrap();
        let low = Glad::default()
            .with_positive_prior(0.1)
            .unwrap()
            .fit(&ann)
            .unwrap();
        assert!(high.posterior_positive[0] > low.posterior_positive[0]);
    }

    #[test]
    fn handles_adversarial_worker_via_negative_ability() {
        let mut rng = Rng64::seed_from_u64(15);
        let truth: Vec<u8> = (0..300).map(|_| u8::from(rng.bernoulli(0.5))).collect();
        let pool = WorkerPool::new(vec![
            WorkerModel::OneCoin { accuracy: 0.9 },
            WorkerModel::OneCoin { accuracy: 0.9 },
            WorkerModel::OneCoin { accuracy: 0.1 }, // systematically wrong
        ]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let fit = Glad::default().fit(&ann).unwrap();
        assert!(
            fit.abilities[2] < 0.0,
            "adversary ability {}",
            fit.abilities[2]
        );
        let labels = Glad::default().hard_labels(&ann).unwrap();
        assert!(accuracy(&labels, &truth) > 0.9);
    }
}
