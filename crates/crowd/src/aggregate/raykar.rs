//! Raykar et al., "Learning from Crowds" (JMLR 2010).
//!
//! Jointly estimates a logistic-regression classifier and per-worker
//! sensitivity (`P(vote 1 | z = 1)`) / specificity (`P(vote 0 | z = 0)`) by
//! EM. Unlike the feature-free aggregators, the classifier's prediction acts
//! as a data-dependent prior in the E-step, so items with similar features
//! share evidence. This underlies the paper's SoftProb discussion and is the
//! strongest Group-1-style baseline we implement.

// Index-based loops below walk several parallel arrays at once; iterator
// zips would obscure the alignment, so the clippy lint is silenced.
#![allow(clippy::needless_range_loop)]

use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use rll_tensor::ops::sigmoid;
use rll_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Configuration for a Raykar EM run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Raykar {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Convergence threshold on the mean absolute posterior change.
    pub tol: f64,
    /// Gradient steps for the logistic-regression M-step.
    pub lr_steps: usize,
    /// Learning rate for the logistic-regression M-step.
    pub learning_rate: f64,
    /// L2 regularization on the classifier weights.
    pub l2: f64,
}

impl Default for Raykar {
    fn default() -> Self {
        Raykar {
            max_iters: 50,
            tol: 1e-5,
            lr_steps: 100,
            learning_rate: 0.5,
            l2: 1e-3,
        }
    }
}

/// A fitted Raykar model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RaykarFit {
    /// Posterior `P(z_i = 1)` per item.
    pub posterior_positive: Vec<f64>,
    /// Classifier weights (one per feature).
    pub weights: Vec<f64>,
    /// Classifier bias.
    pub bias: f64,
    /// Per-worker sensitivity `P(vote 1 | z = 1)`.
    pub sensitivities: Vec<f64>,
    /// Per-worker specificity `P(vote 0 | z = 0)`.
    pub specificities: Vec<f64>,
    /// EM iterations performed.
    pub iterations: usize,
    /// Whether the posterior change fell below tolerance.
    pub converged: bool,
}

impl RaykarFit {
    /// Classifier probability `P(z = 1 | x)` for a feature row.
    pub fn predict_proba(&self, features: &[f64]) -> Result<f64> {
        if features.len() != self.weights.len() {
            return Err(CrowdError::InvalidConfig {
                reason: format!(
                    "feature dim {} does not match model dim {}",
                    features.len(),
                    self.weights.len()
                ),
            });
        }
        let z: f64 = self
            .weights
            .iter()
            .zip(features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias;
        Ok(sigmoid(z))
    }
}

impl Raykar {
    /// Creates a config with explicit EM limits, keeping the other defaults.
    pub fn new(max_iters: usize, tol: f64) -> Result<Self> {
        if max_iters == 0 {
            return Err(CrowdError::InvalidConfig {
                reason: "max_iters must be positive".into(),
            });
        }
        if tol < 0.0 || !tol.is_finite() {
            return Err(CrowdError::InvalidConfig {
                reason: format!("tol must be non-negative and finite, got {tol}"),
            });
        }
        Ok(Raykar {
            max_iters,
            tol,
            ..Raykar::default()
        })
    }

    /// Runs EM over features + annotations.
    pub fn fit(&self, features: &Matrix, annotations: &AnnotationMatrix) -> Result<RaykarFit> {
        if annotations.num_classes() != 2 {
            return Err(CrowdError::InvalidConfig {
                reason: "Raykar supports binary labels only".into(),
            });
        }
        let n = annotations.num_items();
        let w = annotations.num_workers();
        if features.rows() != n {
            return Err(CrowdError::InvalidConfig {
                reason: format!("{} feature rows for {} annotated items", features.rows(), n),
            });
        }
        if n == 0 || w == 0 {
            return Err(CrowdError::InvalidAnnotations {
                reason: "Raykar requires at least one item and one worker".into(),
            });
        }
        let dim = features.cols();

        // Initialize posteriors with vote fractions.
        let mut post: Vec<f64> = (0..n)
            .map(|i| {
                let counts = annotations.vote_counts(i)?;
                let total: usize = counts.iter().sum();
                if total == 0 {
                    return Err(CrowdError::InvalidAnnotations {
                        reason: format!("item {i} has no annotations"),
                    });
                }
                Ok(counts[1] as f64 / total as f64)
            })
            .collect::<Result<_>>()?;

        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut sens = vec![0.8; w];
        let mut spec = vec![0.8; w];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iters {
            iterations += 1;

            // ---------------- M-step ----------------
            // Worker parameters (smoothed so degenerate workers stay finite).
            for j in 0..w {
                let (mut s_num, mut s_den) = (1.0, 2.0);
                let (mut c_num, mut c_den) = (1.0, 2.0);
                for (i, l) in annotations.worker_labels(j)? {
                    s_den += post[i];
                    c_den += 1.0 - post[i];
                    if l == 1 {
                        s_num += post[i];
                    } else {
                        c_num += 1.0 - post[i];
                    }
                }
                sens[j] = s_num / s_den;
                spec[j] = c_num / c_den;
            }

            // Logistic regression on soft targets `post` by gradient descent.
            for _ in 0..self.lr_steps {
                let mut gw = vec![0.0; dim];
                let mut gb = 0.0;
                for i in 0..n {
                    let row = features.row(i)?;
                    let z: f64 = weights.iter().zip(row).map(|(wk, x)| wk * x).sum::<f64>() + bias;
                    let err = sigmoid(z) - post[i];
                    for (g, &x) in gw.iter_mut().zip(row) {
                        *g += err * x;
                    }
                    gb += err;
                }
                let scale = self.learning_rate / n as f64;
                for (wk, g) in weights.iter_mut().zip(&gw) {
                    *wk -= scale * (g + self.l2 * *wk * n as f64);
                }
                bias -= scale * gb;
            }

            // ---------------- E-step ----------------
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let row = features.row(i)?;
                let z: f64 = weights.iter().zip(row).map(|(wk, x)| wk * x).sum::<f64>() + bias;
                let mut log_pos = rll_tensor::ops::log_sigmoid(z);
                let mut log_neg = rll_tensor::ops::log_sigmoid(-z);
                for (j, l) in annotations.item_labels(i)? {
                    if l == 1 {
                        log_pos += sens[j].max(1e-12).ln();
                        log_neg += (1.0 - spec[j]).max(1e-12).ln();
                    } else {
                        log_pos += (1.0 - sens[j]).max(1e-12).ln();
                        log_neg += spec[j].max(1e-12).ln();
                    }
                }
                let lse = rll_tensor::ops::log_sum_exp(&[log_pos, log_neg])?;
                if !lse.is_finite() {
                    return Err(CrowdError::NumericalFailure {
                        algorithm: "raykar",
                        reason: format!("non-finite likelihood at item {i}"),
                    });
                }
                let new_post = (log_pos - lse).exp();
                max_delta = max_delta.max((new_post - post[i]).abs());
                post[i] = new_post;
            }

            if max_delta < self.tol {
                converged = true;
                break;
            }
        }

        Ok(RaykarFit {
            posterior_positive: post,
            weights,
            bias,
            sensitivities: sens,
            specificities: spec,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{WorkerModel, WorkerPool};
    use rll_tensor::Rng64;

    /// Linearly separable features + noisy crowd votes.
    fn dataset(n: usize, seed: u64) -> (Matrix, AnnotationMatrix, Vec<u8>) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let label = u8::from(rng.bernoulli(0.5));
            let center = if label == 1 { 1.0 } else { -1.0 };
            rows.push(vec![
                rng.normal(center, 0.7).unwrap(),
                rng.normal(-center, 0.7).unwrap(),
            ]);
            truth.push(label);
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let pool = WorkerPool::new(vec![
            WorkerModel::TwoCoin {
                sensitivity: 0.85,
                specificity: 0.8,
            },
            WorkerModel::TwoCoin {
                sensitivity: 0.75,
                specificity: 0.9,
            },
            WorkerModel::OneCoin { accuracy: 0.7 },
        ]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        (features, ann, truth)
    }

    #[test]
    fn recovers_labels_and_learns_classifier() {
        let (x, ann, truth) = dataset(300, 21);
        let fit = Raykar::default().fit(&x, &ann).unwrap();
        let inferred: Vec<u8> = fit
            .posterior_positive
            .iter()
            .map(|&p| u8::from(p > 0.5))
            .collect();
        let acc =
            inferred.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64;
        assert!(acc > 0.9, "posterior accuracy {acc}");

        // The classifier generalizes to fresh points.
        let p_pos = fit.predict_proba(&[2.0, -2.0]).unwrap();
        let p_neg = fit.predict_proba(&[-2.0, 2.0]).unwrap();
        assert!(p_pos > 0.8, "positive side {p_pos}");
        assert!(p_neg < 0.2, "negative side {p_neg}");
    }

    #[test]
    fn estimates_worker_operating_points() {
        let (x, ann, _) = dataset(600, 22);
        let fit = Raykar::default().fit(&x, &ann).unwrap();
        // Worker 0 was simulated at sens 0.85 / spec 0.8.
        assert!((fit.sensitivities[0] - 0.85).abs() < 0.1);
        assert!((fit.specificities[0] - 0.8).abs() < 0.1);
    }

    #[test]
    fn predict_proba_validates_dim() {
        let (x, ann, _) = dataset(50, 23);
        let fit = Raykar::default().fit(&x, &ann).unwrap();
        assert!(fit.predict_proba(&[1.0]).is_err());
    }

    #[test]
    fn validates_inputs() {
        assert!(Raykar::new(0, 1e-5).is_err());
        assert!(Raykar::new(5, -0.1).is_err());
        let (x, ann, _) = dataset(10, 24);
        let wrong_rows = Matrix::zeros(5, 2);
        assert!(Raykar::default().fit(&wrong_rows, &ann).is_err());
        let multi = AnnotationMatrix::new(10, 2, 3).unwrap();
        assert!(Raykar::default().fit(&x, &multi).is_err());
    }

    #[test]
    fn features_rescue_items_with_bad_votes() {
        // Items whose votes are all wrong but whose features sit deep in the
        // correct class should be pulled toward the feature side.
        let mut rng = Rng64::seed_from_u64(25);
        let n = 200;
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for _ in 0..n {
            let label = u8::from(rng.bernoulli(0.5));
            let center = if label == 1 { 2.0 } else { -2.0 };
            rows.push(vec![rng.normal(center, 0.4).unwrap()]);
            truth.push(label);
        }
        let features = Matrix::from_rows(&rows).unwrap();
        let pool = WorkerPool::new(vec![WorkerModel::OneCoin { accuracy: 0.75 }; 3]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let fit = Raykar::default().fit(&features, &ann).unwrap();
        let acc = fit
            .posterior_positive
            .iter()
            .zip(&truth)
            .filter(|(&p, &t)| u8::from(p > 0.5) == t)
            .count() as f64
            / n as f64;
        // Majority vote of three 0.75 workers is right ~84% of the time; the
        // feature-aware posterior should do better.
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
