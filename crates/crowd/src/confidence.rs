//! Label-confidence estimation (paper §III-B).
//!
//! For each item with crowd votes `y_{i,1..d}` the framework derives a
//! confidence `δ_i` about its aggregated label:
//!
//! - **MLE** (eq. 1): `δ_i = Σ_j y_{i,j} / d` — the raw positive-vote
//!   fraction, unreliable when `d` is small;
//! - **Bayesian** (eq. 2): `δ_i = (α + Σ_j y_{i,j}) / (α + β + d)` — the mean
//!   of the Beta posterior under a `Beta(α, β)` prior, which shrinks extreme
//!   estimates toward the prior when votes are few.
//!
//! The paper sets `(α, β)` from the label class prior; [`BetaPrior::from_class_prior`]
//! implements that mapping with an explicit pseudo-count strength.
//!
//! For an item whose aggregated label is *negative*, the confidence of its
//! "negativeness" is the complement; [`ConfidenceEstimator::label_confidences`]
//! returns per-item confidence of the item's own aggregated label, which is
//! what the RLL loss consumes (`δ_j`, `δ_*` in eq. 3).

use crate::annotations::AnnotationMatrix;
use crate::error::CrowdError;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A `Beta(α, β)` prior over per-item "positiveness".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaPrior {
    /// Pseudo-count of positive votes.
    pub alpha: f64,
    /// Pseudo-count of negative votes.
    pub beta: f64,
}

impl BetaPrior {
    /// Creates a prior, validating that both parameters are positive.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if alpha <= 0.0 || beta <= 0.0 || !alpha.is_finite() || !beta.is_finite() {
            return Err(CrowdError::InvalidConfig {
                reason: format!("Beta prior parameters must be positive, got ({alpha}, {beta})"),
            });
        }
        Ok(BetaPrior { alpha, beta })
    }

    /// The uniform prior `Beta(1, 1)`.
    pub fn uniform() -> Self {
        BetaPrior {
            alpha: 1.0,
            beta: 1.0,
        }
    }

    /// Builds the prior from the dataset's positive-class prior, as the paper
    /// does ("we use label class prior to set the hyper parameters α and β").
    ///
    /// `positive_prior` is `P(y = 1)`; `strength` is the total pseudo-count
    /// `α + β` (how strongly the prior resists the observed votes).
    pub fn from_class_prior(positive_prior: f64, strength: f64) -> Result<Self> {
        // Open interval (0, 1): rejects 0, 1, and NaN in one comparison.
        if !(positive_prior > 0.0 && positive_prior < 1.0) {
            return Err(CrowdError::InvalidConfig {
                reason: format!("positive prior must be in (0, 1), got {positive_prior}"),
            });
        }
        if strength <= 0.0 || !strength.is_finite() {
            return Err(CrowdError::InvalidConfig {
                reason: format!("prior strength must be positive, got {strength}"),
            });
        }
        BetaPrior::new(positive_prior * strength, (1.0 - positive_prior) * strength)
    }

    /// The prior mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }
}

/// Which confidence estimator to use (the paper's RLL variants).
///
/// ```
/// use rll_crowd::{BetaPrior, ConfidenceEstimator};
///
/// // 3-of-5 positive votes under the paper's two estimators:
/// let mle = ConfidenceEstimator::Mle.positiveness(3, 5)?;
/// assert!((mle - 0.6).abs() < 1e-12); // eq. (1)
///
/// let prior = BetaPrior::from_class_prior(0.64, 2.0)?; // from pos:neg = 1.8
/// let bayes = ConfidenceEstimator::Bayesian(prior).positiveness(3, 5)?;
/// assert!((bayes - (prior.alpha + 3.0) / (prior.alpha + prior.beta + 5.0)).abs() < 1e-12); // eq. (2)
/// # Ok::<(), rll_crowd::CrowdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConfidenceEstimator {
    /// No confidence weighting: every δ is 1 (plain RLL).
    None,
    /// Eq. (1): the positive-vote fraction.
    Mle,
    /// Eq. (2): the Beta-posterior mean under the given prior.
    Bayesian(BetaPrior),
}

impl ConfidenceEstimator {
    /// Short stable name for telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            ConfidenceEstimator::None => "none",
            ConfidenceEstimator::Mle => "mle",
            ConfidenceEstimator::Bayesian(_) => "bayesian",
        }
    }

    /// Posterior "positiveness" `δ_i` for one item given its votes.
    pub fn positiveness(&self, positive_votes: usize, total_votes: usize) -> Result<f64> {
        if positive_votes > total_votes {
            return Err(CrowdError::InvalidAnnotations {
                reason: format!("{positive_votes} positive votes out of {total_votes}"),
            });
        }
        match *self {
            ConfidenceEstimator::None => Ok(1.0),
            ConfidenceEstimator::Mle => {
                if total_votes == 0 {
                    return Err(CrowdError::InvalidAnnotations {
                        reason: "MLE confidence undefined with zero votes".into(),
                    });
                }
                Ok(positive_votes as f64 / total_votes as f64)
            }
            ConfidenceEstimator::Bayesian(prior) => {
                // `BetaPrior`'s fields are public, so a degenerate prior
                // (non-positive or non-finite α/β) can reach this point
                // without going through `BetaPrior::new`. With zero votes a
                // `Beta(0, 0)` prior would yield 0/0 = NaN, which then leaks
                // into /metrics gauges and trace output; reject it here with
                // the same open-interval rule `new` enforces.
                if !(prior.alpha > 0.0
                    && prior.beta > 0.0
                    && prior.alpha.is_finite()
                    && prior.beta.is_finite())
                {
                    return Err(CrowdError::InvalidConfig {
                        reason: format!(
                            "Bayesian confidence requires a prior with finite positive (α, β), got ({}, {})",
                            prior.alpha, prior.beta
                        ),
                    });
                }
                Ok((prior.alpha + positive_votes as f64)
                    / (prior.alpha + prior.beta + total_votes as f64))
            }
        }
    }

    /// Per-item "positiveness" for every item in a binary annotation table.
    pub fn positiveness_all(&self, annotations: &AnnotationMatrix) -> Result<Vec<f64>> {
        (0..annotations.num_items())
            .map(|i| {
                let pos = annotations.positive_votes(i)?;
                let total = annotations.annotation_count(i)?;
                self.positiveness(pos, total)
            })
            .collect()
    }

    /// Confidence of each item's *aggregated* label: `δ_i` for items whose
    /// aggregated label is positive (`labels[i] == 1`), `1 - δ_i` otherwise.
    /// This is the quantity eq. (3) plugs into the group softmax.
    pub fn label_confidences(
        &self,
        annotations: &AnnotationMatrix,
        labels: &[u8],
    ) -> Result<Vec<f64>> {
        if labels.len() != annotations.num_items() {
            return Err(CrowdError::InvalidConfig {
                reason: format!(
                    "{} labels for {} items",
                    labels.len(),
                    annotations.num_items()
                ),
            });
        }
        if matches!(self, ConfidenceEstimator::None) {
            // No weighting: δ = 1 regardless of the aggregated label's sign.
            return Ok(vec![1.0; labels.len()]);
        }
        let pos = self.positiveness_all(annotations)?;
        Ok(labels
            .iter()
            .zip(pos)
            .map(|(&l, p)| if l == 1 { p } else { 1.0 - p })
            .collect())
    }

    /// [`Self::label_confidences`] plus telemetry: emits a
    /// `ConfidenceSummary` event describing the δ distribution (count, mean,
    /// spread) for this estimator variant.
    pub fn label_confidences_observed(
        &self,
        annotations: &AnnotationMatrix,
        labels: &[u8],
        recorder: &rll_obs::Recorder,
    ) -> Result<Vec<f64>> {
        let conf = self.label_confidences(annotations, labels)?;
        emit_confidence_summary(recorder, self.name(), &conf);
        Ok(conf)
    }
}

/// Emits a `ConfidenceSummary` event for a computed δ vector.
pub fn emit_confidence_summary(recorder: &rll_obs::Recorder, variant: &str, confidences: &[f64]) {
    recorder.emit(rll_obs::EventKind::ConfidenceSummary(
        rll_obs::ConfidenceStats {
            variant: variant.to_string(),
            items: confidences.len(),
            delta: rll_obs::DistSummary::from_values(confidences),
        },
    ));
}

/// Worker-aware label confidence — the extension the paper's conclusion
/// calls for ("our current model does not make use of any information about
/// individual crowd worker and we want to extend the proposed framework to
/// incorporate such information").
///
/// Given a fitted Dawid–Skene model, the confidence of item `i`'s aggregated
/// label is the DS posterior probability of that label — which weights each
/// worker's vote by that worker's estimated confusion matrix instead of
/// counting votes equally. A vote from a near-perfect annotator moves `δ`
/// much further than a vote from a spammer.
pub fn worker_aware_label_confidences(
    fit: &crate::aggregate::DawidSkeneFit,
    labels: &[u8],
) -> Result<Vec<f64>> {
    if labels.len() != fit.posteriors.len() {
        return Err(CrowdError::InvalidConfig {
            reason: format!(
                "{} labels for {} fitted items",
                labels.len(),
                fit.posteriors.len()
            ),
        });
    }
    labels
        .iter()
        .zip(&fit.posteriors)
        .map(|(&l, post)| {
            post.get(l as usize)
                .copied()
                .ok_or_else(|| CrowdError::InvalidConfig {
                    reason: format!("label {l} out of range for {}-class fit", post.len()),
                })
        })
        .collect()
}

/// [`worker_aware_label_confidences`] plus a `ConfidenceSummary` event under
/// the `"worker_aware"` variant name.
pub fn worker_aware_label_confidences_observed(
    fit: &crate::aggregate::DawidSkeneFit,
    labels: &[u8],
    recorder: &rll_obs::Recorder,
) -> Result<Vec<f64>> {
    let conf = worker_aware_label_confidences(fit, labels)?;
    emit_confidence_summary(recorder, "worker_aware", &conf);
    Ok(conf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_validation() {
        assert!(BetaPrior::new(0.0, 1.0).is_err());
        assert!(BetaPrior::new(1.0, -1.0).is_err());
        assert!(BetaPrior::new(f64::NAN, 1.0).is_err());
        let p = BetaPrior::new(2.0, 3.0).unwrap();
        assert!((p.mean() - 0.4).abs() < 1e-12);
        assert_eq!(BetaPrior::uniform().mean(), 0.5);
    }

    #[test]
    fn from_class_prior_matches_paper_setting() {
        // oral dataset: pos:neg = 1.8 → prior = 1.8 / 2.8.
        let prior = 1.8 / 2.8;
        let p = BetaPrior::from_class_prior(prior, 2.0).unwrap();
        assert!((p.mean() - prior).abs() < 1e-12);
        assert!((p.alpha + p.beta - 2.0).abs() < 1e-12);
        assert!(BetaPrior::from_class_prior(0.0, 2.0).is_err());
        assert!(BetaPrior::from_class_prior(1.0, 2.0).is_err());
        assert!(BetaPrior::from_class_prior(0.5, 0.0).is_err());
    }

    #[test]
    fn mle_matches_eq1() {
        let est = ConfidenceEstimator::Mle;
        // Paper's example: (1,1,1,1,1) vs (1,1,1,0,0).
        assert_eq!(est.positiveness(5, 5).unwrap(), 1.0);
        assert!((est.positiveness(3, 5).unwrap() - 0.6).abs() < 1e-12);
        assert!(est.positiveness(0, 0).is_err());
        assert!(est.positiveness(3, 2).is_err());
    }

    #[test]
    fn bayesian_matches_eq2() {
        let prior = BetaPrior::new(2.0, 2.0).unwrap();
        let est = ConfidenceEstimator::Bayesian(prior);
        // (α + Σy) / (α + β + d) = (2 + 3) / (4 + 5)
        assert!((est.positiveness(3, 5).unwrap() - 5.0 / 9.0).abs() < 1e-12);
        // Zero votes falls back to the prior mean.
        assert!((est.positiveness(0, 0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bayesian_shrinks_toward_prior() {
        let prior = BetaPrior::new(1.0, 1.0).unwrap();
        let bay = ConfidenceEstimator::Bayesian(prior);
        let mle = ConfidenceEstimator::Mle;
        // Unanimous 5-vote positive: Bayesian is less extreme than MLE.
        let b = bay.positiveness(5, 5).unwrap();
        let m = mle.positiveness(5, 5).unwrap();
        assert!(b < m);
        assert!(b > 0.5);
        // As d grows the two converge.
        let b_big = bay.positiveness(500, 500).unwrap();
        assert!((b_big - 1.0).abs() < 0.01);
    }

    #[test]
    fn bayesian_rejects_degenerate_priors_instead_of_nan() {
        // `BetaPrior`'s fields are public, so these can be constructed
        // without `new`'s validation. Before the guard, zero votes under a
        // Beta(0, 0) prior produced 0/0 = NaN.
        for prior in [
            BetaPrior {
                alpha: 0.0,
                beta: 0.0,
            },
            BetaPrior {
                alpha: -1.0,
                beta: 2.0,
            },
            BetaPrior {
                alpha: f64::NAN,
                beta: 1.0,
            },
            BetaPrior {
                alpha: f64::INFINITY,
                beta: 1.0,
            },
        ] {
            let est = ConfidenceEstimator::Bayesian(prior);
            // Zero votes, unanimous votes, and mixed votes all error —
            // never NaN.
            assert!(est.positiveness(0, 0).is_err(), "prior {prior:?}");
            assert!(est.positiveness(5, 5).is_err(), "prior {prior:?}");
            assert!(est.positiveness(2, 5).is_err(), "prior {prior:?}");
        }
    }

    #[test]
    fn bayesian_is_finite_at_vote_extremes() {
        let est = ConfidenceEstimator::Bayesian(BetaPrior::uniform());
        for (pos, total) in [(0, 0), (0, 1), (1, 1), (0, 1000), (1000, 1000)] {
            let c = est.positiveness(pos, total).unwrap();
            assert!(c.is_finite());
            assert!(c > 0.0 && c < 1.0, "open interval: {c} for {pos}/{total}");
        }
    }

    #[test]
    fn none_estimator_is_constant_one() {
        let est = ConfidenceEstimator::None;
        assert_eq!(est.positiveness(0, 5).unwrap(), 1.0);
        assert_eq!(est.positiveness(5, 5).unwrap(), 1.0);
    }

    #[test]
    fn label_confidences_complement_for_negatives() {
        let ann = AnnotationMatrix::from_dense_binary(&[
            vec![1, 1, 1, 1, 1], // strongly positive
            vec![1, 1, 1, 0, 0], // weakly positive
            vec![0, 0, 0, 0, 1], // strongly negative
        ])
        .unwrap();
        let est = ConfidenceEstimator::Mle;
        let conf = est.label_confidences(&ann, &[1, 1, 0]).unwrap();
        assert!((conf[0] - 1.0).abs() < 1e-12);
        assert!((conf[1] - 0.6).abs() < 1e-12);
        assert!((conf[2] - 0.8).abs() < 1e-12);
        assert!(est.label_confidences(&ann, &[1]).is_err());
    }

    #[test]
    fn confidences_in_unit_interval() {
        let prior = BetaPrior::from_class_prior(0.64, 2.0).unwrap();
        let est = ConfidenceEstimator::Bayesian(prior);
        for pos in 0..=5 {
            let c = est.positiveness(pos, 5).unwrap();
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn serde_round_trip() {
        let est = ConfidenceEstimator::Bayesian(BetaPrior::new(1.5, 2.5).unwrap());
        let json = serde_json::to_string(&est).unwrap();
        assert_eq!(
            serde_json::from_str::<ConfidenceEstimator>(&json).unwrap(),
            est
        );
    }

    #[test]
    fn worker_aware_tracks_ds_posterior() {
        use crate::aggregate::DawidSkene;
        use crate::simulate::{WorkerModel, WorkerPool};
        use rll_tensor::Rng64;
        let mut rng = Rng64::seed_from_u64(31);
        let truth: Vec<u8> = (0..120).map(|_| u8::from(rng.bernoulli(0.6))).collect();
        let pool = WorkerPool::new(vec![
            WorkerModel::OneCoin { accuracy: 0.95 },
            WorkerModel::OneCoin { accuracy: 0.95 },
            WorkerModel::OneCoin { accuracy: 0.52 },
        ]);
        let ann = pool.annotate(&truth, &mut rng).unwrap();
        let fit = DawidSkene::default().fit(&ann).unwrap();
        let labels: Vec<u8> = fit
            .posteriors
            .iter()
            .map(|p| u8::from(p[1] > p[0]))
            .collect();
        let conf = worker_aware_label_confidences(&fit, &labels).unwrap();
        assert_eq!(conf.len(), labels.len());
        assert!(conf.iter().all(|&c| (0.0..=1.0).contains(&c)));
        // By construction the confidence of the argmax label is >= 0.5.
        assert!(conf.iter().all(|&c| c >= 0.5 - 1e-9));
    }

    #[test]
    fn worker_aware_validates_lengths() {
        use crate::aggregate::DawidSkene;
        let ann = AnnotationMatrix::from_dense_binary(&[vec![1, 0, 1], vec![0, 0, 1]]).unwrap();
        let fit = DawidSkene::default().fit(&ann).unwrap();
        assert!(worker_aware_label_confidences(&fit, &[1]).is_err());
        assert!(worker_aware_label_confidences(&fit, &[1, 3]).is_err());
    }
}
