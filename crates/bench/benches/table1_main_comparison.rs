//! Table I as a benchmark: time one train+predict fold for each method
//! group on a quick-scale `oral` simulation. (The full-table reproduction
//! with scores is `repro_table1`; this measures the cost of each row.)

use criterion::{criterion_group, criterion_main, Criterion};
use rll_core::RllVariant;
use rll_data::{presets, StratifiedKFold};
use rll_eval::method::{fit_predict, EmbedKind, MethodSpec, TrainBudget, TwoStageAgg};
use std::hint::black_box;

fn bench_table1_methods(c: &mut Criterion) {
    let ds = presets::oral_scaled(160, 42).unwrap();
    let folds = StratifiedKFold::new(&ds.expert_labels, 5, 42).unwrap();
    let split = folds.split(0).unwrap();
    let train = ds.select(&split.train).unwrap();
    let test = ds.select(&split.test).unwrap();
    let budget = TrainBudget::quick();

    let methods = [
        MethodSpec::SoftProb,
        MethodSpec::Em,
        MethodSpec::Glad,
        MethodSpec::Embed(EmbedKind::Siamese),
        MethodSpec::Embed(EmbedKind::Triplet),
        MethodSpec::Embed(EmbedKind::Relation),
        MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Em),
        MethodSpec::Rll(RllVariant::Plain),
        MethodSpec::Rll(RllVariant::Mle),
        MethodSpec::Rll(RllVariant::Bayesian),
    ];

    let mut group = c.benchmark_group("table1/fit_predict_one_fold");
    group.sample_size(10);
    for spec in methods {
        group.bench_function(spec.name(), |bench| {
            bench.iter(|| {
                black_box(
                    fit_predict(
                        spec,
                        budget,
                        &train.features,
                        &train.annotations,
                        &test.features,
                        7,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1_methods);
criterion_main!(benches);
