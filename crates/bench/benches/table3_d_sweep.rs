//! Table III as a benchmark: RLL-Bayesian train+predict cost as the number
//! of crowd workers per item `d` sweeps over the paper's {1, 3, 5}.

use criterion::{criterion_group, criterion_main, Criterion};
use rll_core::RllVariant;
use rll_data::{presets, StratifiedKFold};
use rll_eval::method::{fit_predict, MethodSpec, TrainBudget};
use std::hint::black_box;

fn bench_d_sweep(c: &mut Criterion) {
    let ds_full = presets::oral_scaled(160, 42).unwrap();
    let folds = StratifiedKFold::new(&ds_full.expert_labels, 5, 42).unwrap();
    let split = folds.split(0).unwrap();

    let mut group = c.benchmark_group("table3/rll_bayesian_by_d");
    group.sample_size(10);
    for d in [1usize, 3, 5] {
        let ds = ds_full.with_workers(d).unwrap();
        let train = ds.select(&split.train).unwrap();
        let test = ds.select(&split.test).unwrap();
        group.bench_function(format!("d={d}"), |bench| {
            bench.iter(|| {
                black_box(
                    fit_predict(
                        MethodSpec::Rll(RllVariant::Bayesian),
                        TrainBudget::quick(),
                        &train.features,
                        &train.annotations,
                        &test.features,
                        7,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_d_sweep);
criterion_main!(benches);
