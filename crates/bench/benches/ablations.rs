//! Ablation benches for the design choices DESIGN.md §7 calls out: the cost
//! of each confidence estimator (the Bayesian estimator is a closed form;
//! the worker-aware extension pays for a Dawid–Skene fit), the η-independent
//! cost of the loss, and uniform vs. confidence-biased negative sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rll_core::{GroupSampler, RllConfig, RllTrainer, RllVariant, SamplingStrategy};
use rll_data::presets;
use rll_tensor::Rng64;
use std::hint::black_box;

fn quick_config(variant: RllVariant) -> RllConfig {
    RllConfig {
        variant,
        epochs: 6,
        groups_per_epoch: 64,
        ..RllConfig::default()
    }
}

fn bench_confidence_variants(c: &mut Criterion) {
    let ds = presets::oral_scaled(160, 42).unwrap();
    let mut group = c.benchmark_group("ablation/confidence_variant_fit");
    group.sample_size(10);
    for variant in [
        RllVariant::Plain,
        RllVariant::Mle,
        RllVariant::Bayesian,
        RllVariant::WorkerAware,
    ] {
        group.bench_function(variant.name(), |bench| {
            let trainer = RllTrainer::new(quick_config(variant)).unwrap();
            bench.iter(|| black_box(trainer.fit(&ds.features, &ds.annotations, 7).unwrap()))
        });
    }
    group.finish();
}

fn bench_sampling_strategies(c: &mut Criterion) {
    let mut labels = vec![1u8; 566];
    labels.extend(vec![0u8; 314]);
    let conf = vec![0.8f64; labels.len()];
    let uniform = GroupSampler::new(&labels, 3, SamplingStrategy::Uniform, None).unwrap();
    let biased = GroupSampler::new(
        &labels,
        3,
        SamplingStrategy::ConfidenceBiased { gamma: 1.0 },
        Some(&conf),
    )
    .unwrap();
    let mut group = c.benchmark_group("ablation/negative_sampling_256_groups");
    group.bench_function("uniform", |bench| {
        bench.iter_batched(
            || Rng64::seed_from_u64(3),
            |mut rng| black_box(uniform.sample_batch(256, &mut rng).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("confidence_biased", |bench| {
        bench.iter_batched(
            || Rng64::seed_from_u64(3),
            |mut rng| black_box(biased.sample_batch(256, &mut rng).unwrap()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_k_group_cost(c: &mut Criterion) {
    // Marginal cost of larger groups: one loss+gradient evaluation per k.
    let mut rng = Rng64::seed_from_u64(9);
    let mut group = c.benchmark_group("ablation/group_loss_by_k");
    for k in [2usize, 3, 4, 5] {
        let emb = rll_tensor::Matrix::from_fn(k + 2, 16, |_, _| rng.standard_normal());
        let conf = vec![0.8f64; k + 1];
        group.bench_function(format!("k={k}"), |bench| {
            bench.iter(|| black_box(rll_core::loss::group_softmax_loss(&emb, &conf, 10.0).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_confidence_variants,
    bench_sampling_strategies,
    bench_k_group_cost
);
criterion_main!(benches);
