//! Micro-benchmarks of the substrate components each experiment leans on:
//! GEMM, group sampling, the confidence-weighted group-softmax loss, the
//! Dawid–Skene and GLAD EM aggregators, and the dataset simulator.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rll_core::loss::group_softmax_loss;
use rll_core::{GroupSampler, SamplingStrategy};
use rll_crowd::aggregate::{DawidSkene, Glad};
use rll_crowd::simulate::WorkerPool;
use rll_data::presets;
use rll_tensor::{Matrix, Rng64};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor/matmul");
    for &n in &[32usize, 128] {
        let mut rng = Rng64::seed_from_u64(1);
        let a = Matrix::from_fn(n, n, |_, _| rng.standard_normal());
        let b = Matrix::from_fn(n, n, |_, _| rng.standard_normal());
        group.bench_function(format!("{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_group_sampling(c: &mut Criterion) {
    let mut labels = vec![1u8; 566];
    labels.extend(vec![0u8; 314]);
    let sampler = GroupSampler::new(&labels, 3, SamplingStrategy::Uniform, None).unwrap();
    c.bench_function("core/group_sampling_256_groups", |bench| {
        bench.iter_batched(
            || Rng64::seed_from_u64(7),
            |mut rng| black_box(sampler.sample_batch(256, &mut rng).unwrap()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_group_loss(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(3);
    let embeddings = Matrix::from_fn(5, 16, |_, _| rng.standard_normal());
    let conf = [0.9, 0.7, 0.8, 0.6];
    c.bench_function("core/group_softmax_loss_k3_dim16", |bench| {
        bench.iter(|| black_box(group_softmax_loss(&embeddings, &conf, 10.0).unwrap()))
    });
}

fn bench_dawid_skene(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(5);
    let truth: Vec<u8> = (0..880).map(|_| u8::from(rng.bernoulli(0.64))).collect();
    let pool = WorkerPool::graded(5, 0.6, 0.9).unwrap();
    let ann = pool.annotate(&truth, &mut rng).unwrap();
    c.bench_function("crowd/dawid_skene_880x5", |bench| {
        bench.iter(|| black_box(DawidSkene::default().fit(&ann).unwrap()))
    });
}

fn bench_glad(c: &mut Criterion) {
    let mut rng = Rng64::seed_from_u64(6);
    let truth: Vec<u8> = (0..472).map(|_| u8::from(rng.bernoulli(0.68))).collect();
    let pool = WorkerPool::graded(5, 0.6, 0.9).unwrap();
    let ann = pool.annotate(&truth, &mut rng).unwrap();
    let glad = Glad {
        max_iters: 20,
        ..Glad::default()
    };
    c.bench_function("crowd/glad_472x5_20iters", |bench| {
        bench.iter(|| black_box(glad.fit(&ann).unwrap()))
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("data/oral_preset_880", |bench| {
        bench.iter(|| black_box(presets::oral(9).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_group_sampling,
    bench_group_loss,
    bench_dawid_skene,
    bench_glad,
    bench_dataset_generation
);
criterion_main!(benches);
