//! Table II as a benchmark: RLL-Bayesian train+predict cost as the group's
//! negative count `k` sweeps over the paper's {2, 3, 4, 5}.

use criterion::{criterion_group, criterion_main, Criterion};
use rll_core::RllVariant;
use rll_data::{presets, StratifiedKFold};
use rll_eval::method::{fit_predict, MethodSpec, TrainBudget};
use std::hint::black_box;

fn bench_k_sweep(c: &mut Criterion) {
    let ds = presets::oral_scaled(160, 42).unwrap();
    let folds = StratifiedKFold::new(&ds.expert_labels, 5, 42).unwrap();
    let split = folds.split(0).unwrap();
    let train = ds.select(&split.train).unwrap();
    let test = ds.select(&split.test).unwrap();

    let mut group = c.benchmark_group("table2/rll_bayesian_by_k");
    group.sample_size(10);
    for k in [2usize, 3, 4, 5] {
        let budget = TrainBudget {
            k,
            ..TrainBudget::quick()
        };
        group.bench_function(format!("k={k}"), |bench| {
            bench.iter(|| {
                black_box(
                    fit_predict(
                        MethodSpec::Rll(RllVariant::Bayesian),
                        budget,
                        &train.features,
                        &train.annotations,
                        &test.features,
                        7,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k_sweep);
criterion_main!(benches);
