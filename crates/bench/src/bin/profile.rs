//! `profile` — offline reporting over rll-obs JSONL (traces + profiles).
//!
//! Three modes, all reading the event JSONL that `Recorder` sinks append:
//!
//! ```text
//! profile --run PATH                 merge EpochProfile events into one
//!                                    flamegraph-style self/total-time table
//! profile --trace PATH [--trace-id HEX]
//!                                    per-request phase breakdown; with no
//!                                    id, lists every trace and expands the
//!                                    slowest one
//! profile --validate PATH            check every trace/v1 record (schema,
//!                                    id format, phase ordering); non-zero
//!                                    exit on any violation — the CI gate
//! ```
//!
//! `--run` ingests a training run's JSONL (e.g. `results/runs/<id>.jsonl`
//! from `serve train-demo --profile`); `--trace`/`--validate` ingest a
//! serve `--trace-out` file. Lines that are not parseable events are
//! counted and reported, never silently dropped.

use rll_obs::{trace_id, Event, EventKind, ProfileNode, TraceRecord, TRACE_SCHEMA};
use std::process::ExitCode;

const USAGE: &str = "usage:
  profile --run PATH
  profile --trace PATH [--trace-id HEX]
  profile --validate PATH";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let result = if let Some(path) = value_of("--run") {
        run_report(&path)
    } else if let Some(path) = value_of("--trace") {
        trace_report(&path, value_of("--trace-id").as_deref())
    } else if let Some(path) = value_of("--validate") {
        validate_report(&path)
    } else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("profile: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a JSONL file into events, returning `(events, unparseable_lines)`.
/// Blank lines are ignored; malformed lines are counted, not fatal — a run
/// file may contain schema versions this binary predates.
fn load_events(path: &str) -> Result<(Vec<Event>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<Event>(line) {
            Ok(event) => events.push(event),
            Err(_) => skipped += 1,
        }
    }
    Ok((events, skipped))
}

fn traces_of(events: &[Event]) -> Vec<&TraceRecord> {
    events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Trace(record) => Some(record),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------- --run --

fn run_report(path: &str) -> Result<(), String> {
    let (events, skipped) = load_events(path)?;
    let mut merged: Option<ProfileNode> = None;
    let mut epochs = 0usize;
    for event in &events {
        if let EventKind::EpochProfile(stats) = &event.kind {
            epochs += 1;
            match &mut merged {
                Some(root) => root.merge(&stats.root),
                None => merged = Some(stats.root.clone()),
            }
        }
    }
    let Some(root) = merged else {
        return Err(format!(
            "no EpochProfile events in {path} — was training run with profiling enabled \
             (e.g. `serve train-demo --profile`)?"
        ));
    };
    println!(
        "profile: {epochs} epoch(s) merged from {path} ({} events, {skipped} unparseable lines)",
        events.len()
    );
    print!("{}", root.render_table());
    Ok(())
}

// -------------------------------------------------------------- --trace --

fn trace_report(path: &str, wanted_id: Option<&str>) -> Result<(), String> {
    let (events, skipped) = load_events(path)?;
    let traces = traces_of(&events);
    if traces.is_empty() {
        return Err(format!("no trace/v1 records in {path}"));
    }
    if skipped > 0 {
        println!("note: {skipped} unparseable line(s) skipped");
    }
    if let Some(id) = wanted_id {
        let record = traces
            .iter()
            .find(|t| t.trace_id == id)
            .ok_or_else(|| format!("trace id {id} not found in {path}"))?;
        print!("{}", render_trace(record));
        return Ok(());
    }
    println!(
        "{:<18} {:<6} {:<12} {:>6} {:>12} {:>8}",
        "trace_id", "method", "path", "status", "total_ms", "phases"
    );
    for t in &traces {
        println!(
            "{:<18} {:<6} {:<12} {:>6} {:>12.3} {:>8}",
            t.trace_id,
            t.method,
            t.path,
            t.status,
            t.total_secs * 1e3,
            t.phases.len()
        );
    }
    let slowest = traces
        .iter()
        .max_by(|a, b| a.total_secs.total_cmp(&b.total_secs))
        .expect("non-empty");
    println!("\nslowest request:");
    print!("{}", render_trace(slowest));
    Ok(())
}

/// Renders one trace as a per-phase table: where inside the request the
/// phase started, how long it ran, and its share of the request's total.
fn render_trace(record: &TraceRecord) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {} {} {} -> {} in {:.3}ms (conn {}, req {})",
        record.trace_id,
        record.method,
        record.path,
        record.status,
        record.total_secs * 1e3,
        record.conn_seq,
        record.req_seq
    );
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>12} {:>8}",
        "phase", "start_ms", "dur_ms", "%total"
    );
    let mut attributed = 0.0;
    for p in &record.phases {
        attributed += p.secs;
        let share = if record.total_secs > 0.0 {
            100.0 * p.secs / record.total_secs
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:<16} {:>12.3} {:>12.3} {:>7.1}%",
            p.phase,
            p.start_secs * 1e3,
            p.secs * 1e3,
            share
        );
    }
    let gap = (record.total_secs - attributed).max(0.0);
    let share = if record.total_secs > 0.0 {
        100.0 * gap / record.total_secs
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "  {:<16} {:>12} {:>12.3} {:>7.1}%",
        "(unattributed)",
        "-",
        gap * 1e3,
        share
    );
    out
}

// ----------------------------------------------------------- --validate --

/// Checks one trace record against the `trace/v1` contract. Returns every
/// violation, not just the first, so a broken producer is diagnosable from
/// one run.
fn validate_trace(record: &TraceRecord) -> Vec<String> {
    let mut problems = Vec::new();
    if record.schema != TRACE_SCHEMA {
        problems.push(format!(
            "schema is {:?}, expected {TRACE_SCHEMA:?}",
            record.schema
        ));
    }
    let hex_ok = record.trace_id.len() == 16
        && record
            .trace_id
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase());
    if !hex_ok {
        problems.push(format!(
            "trace_id {:?} is not 16 lowercase hex digits",
            record.trace_id
        ));
    } else {
        let expected = format!("{:016x}", trace_id(record.conn_seq, record.req_seq));
        if record.trace_id != expected {
            problems.push(format!(
                "trace_id {} does not match FNV-1a(conn {}, req {}) = {}",
                record.trace_id, record.conn_seq, record.req_seq, expected
            ));
        }
    }
    if record.total_secs < 0.0 {
        problems.push(format!("negative total_secs {}", record.total_secs));
    }
    if record.phases.is_empty() {
        problems.push("no phases recorded".to_string());
    }
    for pair in record.phases.windows(2) {
        if pair[0].start_secs > pair[1].start_secs {
            problems.push(format!(
                "phases out of order: {} at {} after {} at {}",
                pair[1].phase, pair[1].start_secs, pair[0].phase, pair[0].start_secs
            ));
        }
    }
    for p in &record.phases {
        if p.start_secs < 0.0 || p.secs < 0.0 {
            problems.push(format!(
                "phase {} has negative timing (start {}, dur {})",
                p.phase, p.start_secs, p.secs
            ));
        }
    }
    problems
}

fn validate_report(path: &str) -> Result<(), String> {
    let (events, skipped) = load_events(path)?;
    if skipped > 0 {
        return Err(format!("{skipped} unparseable line(s) in {path}"));
    }
    let traces = traces_of(&events);
    if traces.is_empty() {
        return Err(format!("no trace/v1 records in {path}"));
    }
    let mut bad = 0usize;
    for record in &traces {
        let problems = validate_trace(record);
        if !problems.is_empty() {
            bad += 1;
            eprintln!("trace {}:", record.trace_id);
            for p in problems {
                eprintln!("  - {p}");
            }
        }
    }
    if bad > 0 {
        return Err(format!("{bad} of {} trace(s) invalid", traces.len()));
    }
    println!("profile: {} trace(s) valid in {path}", traces.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rll_obs::PhaseSample;

    fn good_record() -> TraceRecord {
        TraceRecord {
            schema: TRACE_SCHEMA.to_string(),
            trace_id: format!("{:016x}", trace_id(3, 1)),
            conn_seq: 3,
            req_seq: 1,
            method: "POST".to_string(),
            path: "/embed".to_string(),
            status: 200,
            total_secs: 0.010,
            phases: vec![
                PhaseSample {
                    phase: "parse".to_string(),
                    start_secs: 0.0,
                    secs: 0.001,
                },
                PhaseSample {
                    phase: "forward".to_string(),
                    start_secs: 0.002,
                    secs: 0.005,
                },
            ],
        }
    }

    #[test]
    fn valid_record_has_no_problems() {
        assert!(validate_trace(&good_record()).is_empty());
    }

    #[test]
    fn validator_flags_each_contract_breach() {
        let mut r = good_record();
        r.schema = "trace/v0".to_string();
        r.trace_id = "XYZ".to_string();
        r.phases.swap(0, 1); // out of start order
        r.phases[0].secs = -1.0;
        let problems = validate_trace(&r);
        let text = problems.join("\n");
        assert!(text.contains("schema"), "{text}");
        assert!(text.contains("16 lowercase hex"), "{text}");
        assert!(text.contains("out of order"), "{text}");
        assert!(text.contains("negative timing"), "{text}");
    }

    #[test]
    fn validator_checks_id_against_seqs() {
        let mut r = good_record();
        r.req_seq = 2; // id no longer matches (conn, req)
        let problems = validate_trace(&r);
        assert!(
            problems.iter().any(|p| p.contains("FNV-1a")),
            "{problems:?}"
        );
    }

    #[test]
    fn rendered_trace_covers_every_phase_and_the_gap() {
        let table = render_trace(&good_record());
        assert!(table.contains("parse"), "{table}");
        assert!(table.contains("forward"), "{table}");
        assert!(table.contains("(unattributed)"), "{table}");
        assert!(table.contains("POST"), "{table}");
    }

    #[test]
    fn load_events_counts_bad_lines() {
        let dir = std::env::temp_dir().join("rll-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        let event = Event {
            seq: 0,
            elapsed_secs: 0.0,
            kind: EventKind::Trace(good_record()),
        };
        let good = serde_json::to_string(&event).unwrap();
        std::fs::write(&path, format!("{good}\nnot json\n\n{good}\n")).unwrap();
        let (events, skipped) = load_events(path.to_str().unwrap()).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(traces_of(&events).len(), 2);
    }
}
