//! Reproduces Table III: RLL-Bayesian vs. the number of crowd workers `d`.

use rll_bench::Cli;
use rll_eval::experiments::{paper, table3};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_table3"));
            std::process::exit(2);
        }
    };
    println!(
        "Running Table III (d sweep) at {:?} scale (seed {})...",
        cli.scale, cli.seed
    );
    let result = match table3::run(cli.scale, cli.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("\n{}", result.render());

    println!("Paper-reported Table III for reference:");
    println!(
        "{:<8}{:<11}{:<11}{:<11}{:<11}",
        "d", "oral-Acc", "oral-F1", "class-Acc", "class-F1"
    );
    for (d, oa, of, ca, cf) in paper::TABLE3 {
        println!("{d:<8}{oa:<11.3}{of:<11.3}{ca:<11.3}{cf:<11.3}");
    }

    println!("\nShape checks (measured):");
    println!(
        "  accuracy monotone in d on oral : {}",
        result.monotone_accuracy(true)
    );
    println!(
        "  accuracy monotone in d on class: {}",
        result.monotone_accuracy(false)
    );

    if let Some(path) = cli.json {
        if let Err(e) = rll_eval::report::write_json(std::path::Path::new(&path), &result) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}
