//! Reproduces Table III: RLL-Bayesian vs. the number of crowd workers `d`.

use rll_bench::Cli;
use rll_eval::experiments::{paper, table3};
use rll_obs::{EventKind, TableText};
use std::fmt::Write as _;

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_table3"));
            std::process::exit(2);
        }
    };
    let recorder = cli.recorder("table3");
    recorder.note(format!(
        "Table III (d sweep) at {:?} scale (seed {})",
        cli.scale, cli.seed
    ));
    let result = match table3::run_observed(cli.scale, cli.seed, &recorder) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    recorder.emit(EventKind::Table(TableText {
        title: "Table III (measured)".into(),
        text: result.render(),
    }));

    let mut reference = String::new();
    let _ = writeln!(
        reference,
        "{:<8}{:<11}{:<11}{:<11}{:<11}",
        "d", "oral-Acc", "oral-F1", "class-Acc", "class-F1"
    );
    for (d, oa, of, ca, cf) in paper::TABLE3 {
        let _ = writeln!(reference, "{d:<8}{oa:<11.3}{of:<11.3}{ca:<11.3}{cf:<11.3}");
    }
    recorder.emit(EventKind::Table(TableText {
        title: "Table III (paper-reported, for reference)".into(),
        text: reference,
    }));

    recorder.note(format!(
        "accuracy monotone in d on oral : {}",
        result.monotone_accuracy(true)
    ));
    recorder.note(format!(
        "accuracy monotone in d on class: {}",
        result.monotone_accuracy(false)
    ));

    if let Some(path) = cli.json {
        if let Err(e) = rll_eval::report::write_json(std::path::Path::new(&path), &result) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        recorder.note(format!("wrote {path}"));
    }
    recorder.finish();
}
