//! Reproduces Table II: RLL-Bayesian vs. the number of negatives `k`.

use rll_bench::Cli;
use rll_eval::experiments::{paper, table2};
use rll_obs::{EventKind, TableText};
use std::fmt::Write as _;

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_table2"));
            std::process::exit(2);
        }
    };
    let recorder = cli.recorder("table2");
    recorder.note(format!(
        "Table II (k sweep) at {:?} scale (seed {})",
        cli.scale, cli.seed
    ));
    let result = match table2::run_observed(cli.scale, cli.seed, &recorder) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    recorder.emit(EventKind::Table(TableText {
        title: "Table II (measured)".into(),
        text: result.render(),
    }));

    let mut reference = String::new();
    let _ = writeln!(
        reference,
        "{:<8}{:<11}{:<11}{:<11}{:<11}",
        "k", "oral-Acc", "oral-F1", "class-Acc", "class-F1"
    );
    for (k, oa, of, ca, cf) in paper::TABLE2 {
        let _ = writeln!(reference, "{k:<8}{oa:<11.3}{of:<11.3}{ca:<11.3}{cf:<11.3}");
    }
    recorder.emit(EventKind::Table(TableText {
        title: "Table II (paper-reported, for reference)".into(),
        text: reference,
    }));

    recorder.note(format!(
        "best k on oral : {} (paper: {})",
        result.best_k(true),
        paper::BEST_K
    ));
    recorder.note(format!(
        "best k on class: {} (paper: {})",
        result.best_k(false),
        paper::BEST_K
    ));

    if let Some(path) = cli.json {
        if let Err(e) = rll_eval::report::write_json(std::path::Path::new(&path), &result) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        recorder.note(format!("wrote {path}"));
    }
    recorder.finish();
}
