//! `crashtest` — fault-injection proof that resumed training is lossless.
//!
//! ```text
//! crashtest [--preset oral|class] [--n N] [--epochs N] [--seed N]
//!           [--every N] [--kill-at E1,E2,…] [--resume-threads N]
//!           [--out-dir PATH]
//! ```
//!
//! The harness trains one **golden** uninterrupted run to a checkpoint, then
//! for every kill epoch: trains a fresh pipeline with a [`FaultPlan`] that
//! aborts after that epoch (mimicking a crash between epochs), resumes from
//! the latest `.rllstate` snapshot, and demands the resumed run's final
//! `.rllckpt` be **byte-identical** to the golden one. Any drift — a missed
//! RNG word, a stale Adam moment, a dropped trace entry — flips checkpoint
//! bytes and fails the gate.
//!
//! `--resume-threads` resumes under a different worker-thread count than the
//! interrupted run (which honours `RLL_THREADS`), proving snapshots are
//! portable across parallelism settings. The run id is pinned via
//! `RLL_RUN_ID` semantics: both runs use the same fixed id so checkpoint
//! headers cannot differ by accident of timing.

use rll_core::{CheckpointPolicy, FaultPlan, RllConfig, RllError, RllPipeline, TrainState};
use rll_serve::Checkpoint;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    preset: String,
    n: usize,
    epochs: usize,
    seed: u64,
    every: usize,
    kill_at: Vec<usize>,
    resume_threads: Option<usize>,
    out_dir: PathBuf,
}

const USAGE: &str = "usage:
  crashtest [--preset oral|class] [--n N] [--epochs N] [--seed N]
            [--every N] [--kill-at E1,E2,...] [--resume-threads N] [--out-dir PATH]";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("crashtest: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => {
            println!("crashtest: all {} kill points PASS", args.kill_at.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("crashtest: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> Result<String, String> {
    *i += 1;
    args.get(*i)
        .cloned()
        .ok_or_else(|| format!("{flag} requires a value"))
}

fn parse(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        preset: "oral".to_string(),
        n: 120,
        epochs: 12,
        seed: 42,
        every: 3,
        kill_at: vec![2, 5, 10],
        resume_threads: None,
        out_dir: std::env::temp_dir().join(format!("rll_crashtest_{}", std::process::id())),
    };
    let parse_num = |flag: &str, v: String| -> Result<usize, String> {
        v.parse().map_err(|_| format!("invalid {flag}: {v}"))
    };
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--preset" => args.preset = take_value(raw, &mut i, "--preset")?,
            "--n" => args.n = parse_num("--n", take_value(raw, &mut i, "--n")?)?,
            "--epochs" => {
                args.epochs = parse_num("--epochs", take_value(raw, &mut i, "--epochs")?)?
            }
            "--seed" => {
                let v = take_value(raw, &mut i, "--seed")?;
                args.seed = v.parse().map_err(|_| format!("invalid --seed: {v}"))?;
            }
            "--every" => args.every = parse_num("--every", take_value(raw, &mut i, "--every")?)?,
            "--kill-at" => {
                let v = take_value(raw, &mut i, "--kill-at")?;
                args.kill_at = v
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse()
                            .map_err(|_| format!("invalid --kill-at: {v}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--resume-threads" => {
                args.resume_threads = Some(parse_num(
                    "--resume-threads",
                    take_value(raw, &mut i, "--resume-threads")?,
                )?)
            }
            "--out-dir" => args.out_dir = take_value(raw, &mut i, "--out-dir")?.into(),
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    if args.kill_at.is_empty() {
        return Err("--kill-at needs at least one epoch".into());
    }
    if args.kill_at.iter().any(|&k| k + 1 >= args.epochs) {
        return Err("every --kill-at epoch must leave at least one epoch to resume".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let ds = match args.preset.as_str() {
        "oral" => rll_data::presets::oral_scaled(args.n, args.seed)?,
        "class" => rll_data::presets::class_scaled(args.n, args.seed)?,
        other => return Err(format!("unknown preset {other:?} (use oral|class)").into()),
    };
    std::fs::create_dir_all(&args.out_dir)?;
    let config = RllConfig {
        epochs: args.epochs,
        groups_per_epoch: 64,
        ..RllConfig::default()
    };
    // One fixed run id for every run in this harness: checkpoint headers
    // embed it, and the byte-compare must only be able to fail on the math.
    let run_id = "crashtest";

    // Golden: uninterrupted training, straight to a checkpoint.
    let golden_path = args.out_dir.join("golden.rllckpt");
    let mut golden = RllPipeline::new(config.clone());
    golden.fit(&ds.features, &ds.annotations, args.seed)?;
    Checkpoint::from_pipeline(&golden, run_id)?.save(&golden_path)?;
    let golden_bytes = std::fs::read(&golden_path)?;
    println!(
        "golden: {} epochs -> {} ({} bytes)",
        args.epochs,
        golden_path.display(),
        golden_bytes.len()
    );

    for &kill_epoch in &args.kill_at {
        verify_kill_point(args, &config, &ds, run_id, kill_epoch, &golden_bytes)?;
    }
    Ok(())
}

fn verify_kill_point(
    args: &Args,
    config: &RllConfig,
    ds: &rll_data::Dataset,
    run_id: &str,
    kill_epoch: usize,
    golden_bytes: &[u8],
) -> Result<(), Box<dyn std::error::Error>> {
    let state_path = args.out_dir.join(format!("kill{kill_epoch}.rllstate"));
    let ckpt_path = args.out_dir.join(format!("resumed{kill_epoch}.rllckpt"));

    // Interrupted run: checkpoint every N epochs, crash after `kill_epoch`.
    let mut victim = RllPipeline::new(config.clone())
        .with_checkpoint_policy(CheckpointPolicy::every(&state_path, args.every)?)
        .with_fault_plan(FaultPlan {
            kill_after_epoch: kill_epoch,
        });
    match victim.fit(&ds.features, &ds.annotations, args.seed) {
        Err(RllError::Interrupted { epochs_done }) => {
            if epochs_done != kill_epoch + 1 {
                return Err(format!(
                    "kill@{kill_epoch}: interrupted after {epochs_done} epochs, expected {}",
                    kill_epoch + 1
                )
                .into());
            }
        }
        Err(other) => return Err(format!("kill@{kill_epoch}: unexpected error: {other}").into()),
        Ok(_) => return Err(format!("kill@{kill_epoch}: fault plan never fired").into()),
    }

    // Resume from whatever snapshot survived the crash and train to the end.
    let state = TrainState::load(&state_path)?;
    let resumed_from = state.meta.epochs_done;
    let mut resumed = RllPipeline::new(config.clone());
    if let Some(threads) = args.resume_threads {
        resumed = resumed.with_threads(threads);
    }
    resumed.resume_fit(&ds.features, &ds.annotations, state)?;
    Checkpoint::from_pipeline(&resumed, run_id)?.save(&ckpt_path)?;

    let resumed_bytes = std::fs::read(&ckpt_path)?;
    if resumed_bytes != golden_bytes {
        return Err(format!(
            "kill@{kill_epoch}: resumed checkpoint differs from golden \
             ({} vs {} bytes) — resume is NOT lossless",
            resumed_bytes.len(),
            golden_bytes.len()
        )
        .into());
    }
    println!(
        "kill@{kill_epoch}: resumed from epoch {resumed_from}, checkpoint bitwise identical — PASS"
    );
    Ok(())
}
