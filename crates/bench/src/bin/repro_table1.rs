//! Reproduces Table I: 15 methods × {oral, class} × {accuracy, F1}.

use rll_bench::Cli;
use rll_eval::experiments::{paper, table1};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_table1"));
            std::process::exit(2);
        }
    };
    println!(
        "Running Table I at {:?} scale (seed {}). This trains 15 methods x 2 datasets x {} folds...",
        cli.scale,
        cli.seed,
        cli.scale.folds()
    );
    let result = match table1::run(cli.scale, cli.seed, None) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("\n{}", result.render());

    println!("Paper-reported Table I for reference:");
    println!(
        "{:<22}{:<11}{:<11}{:<11}{:<11}",
        "Method", "oral-Acc", "oral-F1", "class-Acc", "class-F1"
    );
    for (name, oa, of, ca, cf) in paper::TABLE1 {
        println!("{name:<22}{oa:<11.3}{of:<11.3}{ca:<11.3}{cf:<11.3}");
    }

    println!("\nShape checks (measured):");
    println!(
        "  best method on oral : {} ({:.3})",
        result.best_method(true).method,
        result.best_method(true).accuracy.mean
    );
    println!(
        "  best method on class: {} ({:.3})",
        result.best_method(false).method,
        result.best_method(false).accuracy.mean
    );
    for g in 1..=4u8 {
        println!(
            "  group {g} mean accuracy: {:.3}",
            result.group_mean_accuracy(g)
        );
    }

    if let Some(path) = cli.json {
        if let Err(e) = rll_eval::report::write_json(std::path::Path::new(&path), &result) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}
