//! Reproduces Table I: 15 methods × {oral, class} × {accuracy, F1}.

use rll_bench::Cli;
use rll_eval::experiments::{paper, table1};
use rll_obs::{EventKind, TableText};
use std::fmt::Write as _;

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_table1"));
            std::process::exit(2);
        }
    };
    let recorder = cli.recorder("table1");
    recorder.note(format!(
        "Table I at {:?} scale (seed {}): 15 methods x 2 datasets x {} folds",
        cli.scale,
        cli.seed,
        cli.scale.folds()
    ));
    let result = match table1::run_observed(cli.scale, cli.seed, None, &recorder) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("experiment failed: {e}");
            std::process::exit(1);
        }
    };
    recorder.emit(EventKind::Table(TableText {
        title: "Table I (measured)".into(),
        text: result.render(),
    }));

    let mut reference = String::new();
    let _ = writeln!(
        reference,
        "{:<22}{:<11}{:<11}{:<11}{:<11}",
        "Method", "oral-Acc", "oral-F1", "class-Acc", "class-F1"
    );
    for (name, oa, of, ca, cf) in paper::TABLE1 {
        let _ = writeln!(
            reference,
            "{name:<22}{oa:<11.3}{of:<11.3}{ca:<11.3}{cf:<11.3}"
        );
    }
    recorder.emit(EventKind::Table(TableText {
        title: "Table I (paper-reported, for reference)".into(),
        text: reference,
    }));

    recorder.note(format!(
        "best method on oral : {} ({:.3})",
        result.best_method(true).method,
        result.best_method(true).accuracy.mean
    ));
    recorder.note(format!(
        "best method on class: {} ({:.3})",
        result.best_method(false).method,
        result.best_method(false).accuracy.mean
    ));
    for g in 1..=4u8 {
        recorder.note(format!(
            "group {g} mean accuracy: {:.3}",
            result.group_mean_accuracy(g)
        ));
    }

    if let Some(path) = cli.json {
        if let Err(e) = rll_eval::report::write_json(std::path::Path::new(&path), &result) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        recorder.note(format!("wrote {path}"));
    }
    recorder.finish();
}
