//! Runs the label-budget learning curve (extension; see EXPERIMENTS.md):
//! SoftProb vs RLL-Bayesian as the number of labeled examples shrinks.

use rll_bench::Cli;
use rll_eval::experiments::{learning_curve, ExperimentScale};
use rll_obs::{EventKind, TableText};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_learning_curve"));
            std::process::exit(2);
        }
    };
    let (ns, repeats): (&[usize], usize) = match cli.scale {
        ExperimentScale::Quick => (&[60, 120, 240], 1),
        ExperimentScale::Full => (&[110, 220, 440, 880], 3),
    };
    let recorder = cli.recorder("learning_curve");
    recorder.note(format!(
        "learning curve at {:?} scale (seed {}), n in {:?}, {} dataset seed(s) per point",
        cli.scale, cli.seed, ns, repeats
    ));
    let result =
        match learning_curve::run_repeated_observed(cli.scale, cli.seed, ns, repeats, &recorder) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("experiment failed: {e}");
                std::process::exit(1);
            }
        };
    recorder.emit(EventKind::Table(TableText {
        title: "Learning curve (measured)".into(),
        text: result.render(),
    }));
    if let Some(path) = cli.json {
        if let Err(e) = rll_eval::report::write_json(std::path::Path::new(&path), &result) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        recorder.note(format!("wrote {path}"));
    }
    recorder.finish();
}
