//! Runs the DESIGN.md §7 ablations: η sweep, confidence estimator comparison,
//! embedding-dimension sweep, and the confidence-biased sampling extension.

use rll_bench::Cli;
use rll_eval::experiments::ablations;

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_ablations"));
            std::process::exit(2);
        }
    };
    println!("Running ablations at {:?} scale (seed {})...", cli.scale, cli.seed);

    let run = || -> Result<(), rll_eval::EvalError> {
        println!("\n-- eta sweep (oral) --");
        for p in ablations::eta_sweep(cli.scale, cli.seed, &[2.0, 5.0, 10.0, 20.0, 40.0])? {
            println!(
                "  {:<10} acc {:.3} ± {:.3}   f1 {:.3}",
                p.label, p.score.accuracy.mean, p.score.accuracy.std, p.score.f1.mean
            );
        }

        println!("\n-- confidence estimator (class) --");
        for p in ablations::confidence_ablation(cli.scale, cli.seed)? {
            println!(
                "  {:<14} acc {:.3} ± {:.3}   f1 {:.3}",
                p.label, p.score.accuracy.mean, p.score.accuracy.std, p.score.f1.mean
            );
        }

        println!("\n-- embedding dimension (oral) --");
        for p in ablations::dim_sweep(cli.scale, cli.seed, &[4, 8, 16, 32])? {
            println!(
                "  {:<10} acc {:.3} ± {:.3}   f1 {:.3}",
                p.label, p.score.accuracy.mean, p.score.accuracy.std, p.score.f1.mean
            );
        }

        println!("\n-- negative sampling strategy (class) --");
        let s = ablations::sampling_ablation(cli.scale, cli.seed, 1.0)?;
        println!("  uniform             acc {:.3}", s.uniform_accuracy);
        println!("  confidence-biased   acc {:.3} (gamma {})", s.biased_accuracy, s.gamma);
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("ablations failed: {e}");
        std::process::exit(1);
    }
}
