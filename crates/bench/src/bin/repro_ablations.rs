//! Runs the DESIGN.md §7 ablations: η sweep, confidence estimator comparison,
//! embedding-dimension sweep, and the confidence-biased sampling extension.

use rll_bench::Cli;
use rll_eval::experiments::ablations;
use rll_obs::{EventKind, Recorder, TableText};
use std::fmt::Write as _;

fn render_points(points: &[ablations::AblationPoint]) -> String {
    let mut out = String::new();
    for p in points {
        let _ = writeln!(
            out,
            "{:<14} acc {:.3} ± {:.3}   f1 {:.3}",
            p.label, p.score.accuracy.mean, p.score.accuracy.std, p.score.f1.mean
        );
    }
    out
}

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{}", Cli::usage("repro_ablations"));
            std::process::exit(2);
        }
    };
    let recorder = cli.recorder("ablations");
    recorder.note(format!(
        "ablations at {:?} scale (seed {})",
        cli.scale, cli.seed
    ));

    let run = |recorder: &Recorder| -> Result<(), rll_eval::EvalError> {
        let points = ablations::eta_sweep_observed(
            cli.scale,
            cli.seed,
            &[2.0, 5.0, 10.0, 20.0, 40.0],
            recorder,
        )?;
        recorder.emit(EventKind::Table(TableText {
            title: "eta sweep (oral)".into(),
            text: render_points(&points),
        }));

        let points = ablations::confidence_ablation_observed(cli.scale, cli.seed, recorder)?;
        recorder.emit(EventKind::Table(TableText {
            title: "confidence estimator (class)".into(),
            text: render_points(&points),
        }));

        let points = ablations::dim_sweep_observed(cli.scale, cli.seed, &[4, 8, 16, 32], recorder)?;
        recorder.emit(EventKind::Table(TableText {
            title: "embedding dimension (oral)".into(),
            text: render_points(&points),
        }));

        let s = ablations::sampling_ablation_observed(cli.scale, cli.seed, 1.0, recorder)?;
        recorder.emit(EventKind::Table(TableText {
            title: "negative sampling strategy (class)".into(),
            text: format!(
                "uniform             acc {:.3}\nconfidence-biased   acc {:.3} (gamma {})\n",
                s.uniform_accuracy, s.biased_accuracy, s.gamma
            ),
        }));
        Ok(())
    };
    if let Err(e) = run(&recorder) {
        eprintln!("ablations failed: {e}");
        std::process::exit(1);
    }
    recorder.finish();
}
