//! Calibration utility: quick per-method timings and a compact Table-I-lite
//! (representative methods only) at full dataset size. Used while tuning the
//! dataset simulators; not part of the documented reproduction flow.

use std::time::Instant;

use rll_core::RllVariant;
use rll_eval::experiments::{table1, ExperimentScale};
use rll_eval::method::{EmbedKind, MethodSpec, TrainBudget, TwoStageAgg};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--timings") {
        timings();
        return;
    }
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let methods = [
        MethodSpec::SoftProb,
        MethodSpec::Em,
        MethodSpec::Glad,
        MethodSpec::Embed(EmbedKind::Triplet),
        MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Em),
        MethodSpec::Rll(RllVariant::Plain),
        MethodSpec::Rll(RllVariant::Mle),
        MethodSpec::Rll(RllVariant::Bayesian),
    ];
    let t = Instant::now();
    let result = table1::run(ExperimentScale::Full, seed, Some(&methods)).expect("table1 subset");
    println!("{}", result.render());
    println!("elapsed: {:?}", t.elapsed());
}

fn timings() {
    let ds = rll_data::presets::oral(42).unwrap();
    let folds = rll_data::StratifiedKFold::new(&ds.expert_labels, 5, 42).unwrap();
    let split = folds.split(0).unwrap();
    let train = ds.select(&split.train).unwrap();
    let test = ds.select(&split.test).unwrap();
    for (name, spec) in [
        ("rll", MethodSpec::Rll(RllVariant::Bayesian)),
        ("triplet", MethodSpec::Embed(EmbedKind::Triplet)),
        ("relation", MethodSpec::Embed(EmbedKind::Relation)),
        ("glad", MethodSpec::Glad),
    ] {
        let t = Instant::now();
        let _ = rll_eval::method::fit_predict(
            spec,
            TrainBudget::full(),
            &train.features,
            &train.annotations,
            &test.features,
            7,
        )
        .unwrap();
        println!("{name}: {:?}", t.elapsed());
    }
}
