//! Calibration utility: quick per-method timings, a compact Table-I-lite
//! (representative methods only) at full dataset size, and a
//! serial-vs-parallel trainer benchmark (`--bench-train`). Used while tuning
//! the dataset simulators; not part of the documented reproduction flow.

use std::time::Instant;

use rll_core::{RllConfig, RllTrainer, RllVariant};
use rll_eval::experiments::{table1, ExperimentScale};
use rll_eval::method::{EmbedKind, MethodSpec, TrainBudget, TwoStageAgg};
use serde::{Deserialize, Serialize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--timings") {
        timings();
        return;
    }
    if let Some(i) = args.iter().position(|a| a == CHILD_FLAG) {
        let threads: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--bench-train-child <threads>");
        bench_train_child(threads);
        return;
    }
    if args.iter().any(|a| a == "--bench-train") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("results/bench_train.json");
        bench_train(out);
        return;
    }
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let methods = [
        MethodSpec::SoftProb,
        MethodSpec::Em,
        MethodSpec::Glad,
        MethodSpec::Embed(EmbedKind::Triplet),
        MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Em),
        MethodSpec::Rll(RllVariant::Plain),
        MethodSpec::Rll(RllVariant::Mle),
        MethodSpec::Rll(RllVariant::Bayesian),
    ];
    let t = Instant::now();
    let result = table1::run(ExperimentScale::Full, seed, Some(&methods)).expect("table1 subset");
    println!("{}", result.render());
    println!("elapsed: {:?}", t.elapsed());
}

/// Child-process flag: run one `fit` with the kernel variant taken from the
/// `RLL_KERNEL` environment (which is read once per process — hence the
/// subprocess design) and print a [`VariantRun`] JSON line.
const CHILD_FLAG: &str = "--bench-train-child";

/// The `serial_secs` recorded by the pre-kernel `bench_train/v1` run checked
/// into `results/bench_train.json`; the tiled-kernel speedup is reported
/// against it.
const COMMITTED_SERIAL_BASELINE_SECS: f64 = 0.295228568;

/// How many times each (kernel, threads) cell is re-run; the fastest run is
/// kept, which filters scheduler noise on small boxes.
const REPS_PER_VARIANT: usize = 5;

/// One timed `fit` in a child process.
#[derive(Serialize, Deserialize)]
struct VariantRun {
    kernel: String,
    threads: usize,
    secs: f64,
    /// FNV-1a over the final embedding matrix bits — byte-equality across
    /// variants is the determinism contract.
    embed_hash: String,
    /// FNV-1a over epoch losses ++ pre-clip gradient norms.
    trace_hash: String,
}

#[derive(Serialize)]
struct BenchTrainV2 {
    schema: String,
    workload: String,
    seed: u64,
    epochs: usize,
    groups_per_epoch: usize,
    available_cores: usize,
    reps_per_variant: usize,
    baseline_serial_secs: f64,
    /// Best-of-reps timings for every kernel x thread-count cell.
    variants: Vec<VariantRun>,
    /// Serial tiled vs serial scalar, measured in this run.
    tiled_speedup_vs_scalar_serial: f64,
    /// Serial tiled vs the committed pre-kernel baseline.
    tiled_speedup_vs_baseline: f64,
    outputs_identical: bool,
}

/// Runs one `RllTrainer::fit` at the given thread count with the
/// process-wide configured kernel and prints the timing + output hashes.
fn bench_train_child(threads: usize) {
    let seed = 42;
    let ds = rll_data::presets::oral(seed).expect("oral preset");
    let trainer = RllTrainer::new(RllConfig::default())
        .expect("valid config")
        .with_threads(threads);
    let t = Instant::now();
    let (model, trace) = trainer
        .fit(&ds.features, &ds.annotations, seed)
        .expect("training succeeds");
    let secs = t.elapsed().as_secs_f64();
    let embed = model.embed(&ds.features).expect("embed");
    let mut trace_values = trace.epoch_losses.clone();
    trace_values.extend_from_slice(&trace.grad_norms_pre_clip);
    let run = VariantRun {
        kernel: rll_tensor::kernels::configured_kernel().as_str().into(),
        threads,
        secs,
        embed_hash: format!("{:#018x}", rll_tensor::hash::fnv1a_f64s(embed.as_slice())),
        trace_hash: format!("{:#018x}", rll_tensor::hash::fnv1a_f64s(&trace_values)),
    };
    println!("{}", serde_json::to_string(&run).expect("serialize"));
}

/// Benchmarks the full trainer across kernel variants (scalar vs tiled) and
/// thread counts (1 vs 4), checks all four runs produce bitwise-identical
/// models, and writes the measurements as `bench_train/v2` JSON.
///
/// Each cell runs in a child process because `RLL_KERNEL` is latched on
/// first read; the parent sets the variable per child and keeps the fastest
/// of [`REPS_PER_VARIANT`] runs. Speedups are reported as measured, alongside
/// `available_cores`: on a single-core machine the 4-thread runs cannot beat
/// the serial ones, and that is the honest number — the point of `rll-par`
/// is that the *results* never depend on the thread count.
fn bench_train(out: &str) {
    let exe = std::env::current_exe().expect("current exe");
    let seed = 42;
    let ds = rll_data::presets::oral(seed).expect("oral preset");
    let config = RllConfig::default();

    let mut variants: Vec<VariantRun> = Vec::new();
    for kernel in ["scalar", "tiled"] {
        for threads in [1usize, 4] {
            let mut best: Option<VariantRun> = None;
            for _ in 0..REPS_PER_VARIANT {
                let output = std::process::Command::new(&exe)
                    .arg(CHILD_FLAG)
                    .arg(threads.to_string())
                    .env(rll_tensor::kernels::KERNEL_ENV_VAR, kernel)
                    .output()
                    .expect("spawn bench child");
                assert!(
                    output.status.success(),
                    "bench child (kernel={kernel}, threads={threads}) failed:\n{}",
                    String::from_utf8_lossy(&output.stderr)
                );
                let stdout = String::from_utf8_lossy(&output.stdout);
                let run: VariantRun = serde_json::from_str(stdout.trim()).expect("child JSON");
                assert_eq!(run.kernel, kernel, "child ran the wrong kernel variant");
                if best.as_ref().is_none_or(|b| run.secs < b.secs) {
                    best = Some(run);
                }
            }
            variants.push(best.expect("at least one rep"));
        }
    }

    let outputs_identical = variants
        .iter()
        .all(|v| v.embed_hash == variants[0].embed_hash && v.trace_hash == variants[0].trace_hash);
    let secs_of = |kernel: &str, threads: usize| {
        variants
            .iter()
            .find(|v| v.kernel == kernel && v.threads == threads)
            .expect("cell present")
            .secs
    };
    let scalar_serial = secs_of("scalar", 1);
    let tiled_serial = secs_of("tiled", 1);

    let report = BenchTrainV2 {
        schema: "bench_train/v2".into(),
        workload: format!(
            "RllTrainer::fit on presets::oral ({} items, {} workers)",
            ds.features.rows(),
            ds.annotations.num_workers()
        ),
        seed,
        epochs: config.epochs,
        groups_per_epoch: config.groups_per_epoch,
        available_cores: rll_par::available_threads(),
        reps_per_variant: REPS_PER_VARIANT,
        baseline_serial_secs: COMMITTED_SERIAL_BASELINE_SECS,
        variants,
        tiled_speedup_vs_scalar_serial: scalar_serial / tiled_serial,
        tiled_speedup_vs_baseline: COMMITTED_SERIAL_BASELINE_SECS / tiled_serial,
        outputs_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, format!("{json}\n")).expect("write bench json");
    println!("{json}");
    assert!(
        outputs_identical,
        "kernel variants / thread counts disagree: determinism regression"
    );
}

fn timings() {
    let ds = rll_data::presets::oral(42).unwrap();
    let folds = rll_data::StratifiedKFold::new(&ds.expert_labels, 5, 42).unwrap();
    let split = folds.split(0).unwrap();
    let train = ds.select(&split.train).unwrap();
    let test = ds.select(&split.test).unwrap();
    for (name, spec) in [
        ("rll", MethodSpec::Rll(RllVariant::Bayesian)),
        ("triplet", MethodSpec::Embed(EmbedKind::Triplet)),
        ("relation", MethodSpec::Embed(EmbedKind::Relation)),
        ("glad", MethodSpec::Glad),
    ] {
        let t = Instant::now();
        let _ = rll_eval::method::fit_predict(
            spec,
            TrainBudget::full(),
            &train.features,
            &train.annotations,
            &test.features,
            7,
        )
        .unwrap();
        println!("{name}: {:?}", t.elapsed());
    }
}
