//! Calibration utility: quick per-method timings, a compact Table-I-lite
//! (representative methods only) at full dataset size, and a
//! serial-vs-parallel trainer benchmark (`--bench-train`). Used while tuning
//! the dataset simulators; not part of the documented reproduction flow.

use std::time::Instant;

use rll_core::{RllConfig, RllTrainer, RllVariant};
use rll_eval::experiments::{table1, ExperimentScale};
use rll_eval::method::{EmbedKind, MethodSpec, TrainBudget, TwoStageAgg};
use serde::Serialize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--timings") {
        timings();
        return;
    }
    if args.iter().any(|a| a == "--bench-train") {
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
            .unwrap_or("results/bench_train.json");
        bench_train(out);
        return;
    }
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let methods = [
        MethodSpec::SoftProb,
        MethodSpec::Em,
        MethodSpec::Glad,
        MethodSpec::Embed(EmbedKind::Triplet),
        MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Em),
        MethodSpec::Rll(RllVariant::Plain),
        MethodSpec::Rll(RllVariant::Mle),
        MethodSpec::Rll(RllVariant::Bayesian),
    ];
    let t = Instant::now();
    let result = table1::run(ExperimentScale::Full, seed, Some(&methods)).expect("table1 subset");
    println!("{}", result.render());
    println!("elapsed: {:?}", t.elapsed());
}

#[derive(Serialize)]
struct BenchTrain {
    schema: String,
    workload: String,
    seed: u64,
    epochs: usize,
    groups_per_epoch: usize,
    serial_secs: f64,
    parallel_secs: f64,
    parallel_threads: usize,
    available_cores: usize,
    speedup: f64,
    outputs_identical: bool,
}

/// Times one full `RllTrainer::fit` at 1 worker thread and at 4, checks the
/// two runs produce bitwise-identical models, and writes the measurements as
/// `bench_train/v1` JSON.
///
/// The speedup is reported as measured, alongside `available_cores`: on a
/// single-core machine the parallel run cannot beat the serial one (thread
/// overhead makes it slightly slower), and that is the honest number — the
/// point of `rll-par` is that the *results* never depend on the thread
/// count, so the knob is safe to turn wherever cores exist.
fn bench_train(out: &str) {
    let seed = 42;
    let ds = rll_data::presets::oral(seed).expect("oral preset");
    let config = RllConfig::default();

    let run = |threads: usize| {
        let trainer = RllTrainer::new(config.clone())
            .expect("valid config")
            .with_threads(threads);
        let t = Instant::now();
        let fitted = trainer
            .fit(&ds.features, &ds.annotations, seed)
            .expect("training succeeds");
        (t.elapsed().as_secs_f64(), fitted)
    };

    let (serial_secs, (serial_model, serial_trace)) = run(1);
    let parallel_threads = 4;
    let (parallel_secs, (parallel_model, parallel_trace)) = run(parallel_threads);

    let outputs_identical = serial_model.embed(&ds.features).expect("embed")
        == parallel_model.embed(&ds.features).expect("embed")
        && serial_trace.epoch_losses == parallel_trace.epoch_losses
        && serial_trace.grad_norms_pre_clip == parallel_trace.grad_norms_pre_clip;

    let report = BenchTrain {
        schema: "bench_train/v1".into(),
        workload: format!(
            "RllTrainer::fit on presets::oral ({} items, {} workers)",
            ds.features.rows(),
            ds.annotations.num_workers()
        ),
        seed,
        epochs: config.epochs,
        groups_per_epoch: config.groups_per_epoch,
        serial_secs,
        parallel_secs,
        parallel_threads,
        available_cores: rll_par::available_threads(),
        speedup: serial_secs / parallel_secs,
        outputs_identical,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    if let Some(parent) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(parent).expect("create results dir");
    }
    std::fs::write(out, format!("{json}\n")).expect("write bench json");
    println!("{json}");
    assert!(
        outputs_identical,
        "serial and 4-thread training disagree: determinism regression"
    );
}

fn timings() {
    let ds = rll_data::presets::oral(42).unwrap();
    let folds = rll_data::StratifiedKFold::new(&ds.expert_labels, 5, 42).unwrap();
    let split = folds.split(0).unwrap();
    let train = ds.select(&split.train).unwrap();
    let test = ds.select(&split.test).unwrap();
    for (name, spec) in [
        ("rll", MethodSpec::Rll(RllVariant::Bayesian)),
        ("triplet", MethodSpec::Embed(EmbedKind::Triplet)),
        ("relation", MethodSpec::Embed(EmbedKind::Relation)),
        ("glad", MethodSpec::Glad),
    ] {
        let t = Instant::now();
        let _ = rll_eval::method::fit_predict(
            spec,
            TrainBudget::full(),
            &train.features,
            &train.annotations,
            &test.features,
            7,
        )
        .unwrap();
        println!("{name}: {:?}", t.elapsed());
    }
}
