#![warn(missing_docs)]

//! # `rll-bench` — benchmark harness and table-reproduction binaries
//!
//! Binaries (run with `--release`):
//!
//! | Binary | Paper artifact | Typical invocation |
//! |---|---|---|
//! | `repro_table1` | Table I | `cargo run -p rll-bench --release --bin repro_table1 -- --full` |
//! | `repro_table2` | Table II (`k` sweep) | `cargo run -p rll-bench --release --bin repro_table2 -- --full` |
//! | `repro_table3` | Table III (`d` sweep) | `cargo run -p rll-bench --release --bin repro_table3 -- --full` |
//! | `repro_ablations` | DESIGN.md §7 ablations | `cargo run -p rll-bench --release --bin repro_ablations` |
//!
//! Every binary accepts `--quick` (default) or `--full` (paper-size datasets
//! and budgets), `--seed <u64>`, and `--json <path>` to dump machine-readable
//! results.
//!
//! Criterion benches live in `benches/`: one per table (scaled-down
//! experiment pipelines) plus `components` (micro-benchmarks of the
//! substrate: GEMM, group sampling, the group-softmax loss, Dawid–Skene and
//! GLAD EM).

use rll_eval::experiments::ExperimentScale;

/// Parsed command-line options shared by the repro binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Experiment scale.
    pub scale: ExperimentScale,
    /// Base seed.
    pub seed: u64,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: ExperimentScale::Quick,
            seed: 42,
            json: None,
        }
    }
}

impl Cli {
    /// Standard telemetry wiring for a repro binary: human-readable stdout
    /// plus an append-only `results/runs/<run_id>.jsonl`, with the `RunStart`
    /// event already emitted. Callers must `recorder.finish()` at the end.
    pub fn recorder(&self, experiment: &str) -> rll_obs::Recorder {
        let recorder = rll_obs::Recorder::for_experiment(experiment, self.seed);
        let scale = match self.scale {
            ExperimentScale::Quick => "quick",
            ExperimentScale::Full => "full",
        };
        recorder.run_start(experiment, scale, self.seed);
        recorder
    }

    /// Parses the binaries' shared flags. Unknown flags produce an error
    /// message (returned as `Err` so `main` can print usage and exit).
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cli.scale = ExperimentScale::Quick,
                "--full" => cli.scale = ExperimentScale::Full,
                "--seed" => {
                    let value = args
                        .next()
                        .ok_or_else(|| "--seed requires a value".to_string())?;
                    cli.seed = value
                        .parse()
                        .map_err(|_| format!("invalid seed: {value}"))?;
                }
                "--json" => {
                    cli.json = Some(
                        args.next()
                            .ok_or_else(|| "--json requires a path".to_string())?,
                    );
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(cli)
    }

    /// Usage string for the binaries.
    pub fn usage(bin: &str) -> String {
        format!("usage: {bin} [--quick|--full] [--seed <u64>] [--json <path>]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let cli = parse(&[]).unwrap();
        assert_eq!(cli.scale, ExperimentScale::Quick);
        assert_eq!(cli.seed, 42);
        assert!(cli.json.is_none());
    }

    #[test]
    fn parses_all_flags() {
        let cli = parse(&["--full", "--seed", "7", "--json", "/tmp/out.json"]).unwrap();
        assert_eq!(cli.scale, ExperimentScale::Full);
        assert_eq!(cli.seed, 7);
        assert_eq!(cli.json.as_deref(), Some("/tmp/out.json"));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--json"]).is_err());
        assert!(parse(&["--wat"]).is_err());
    }

    #[test]
    fn usage_mentions_flags() {
        let u = Cli::usage("repro_table1");
        assert!(u.contains("--full"));
        assert!(u.contains("--seed"));
    }
}
