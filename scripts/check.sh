#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rll-lint (workspace invariants, suppression ratchet, lock graph) =="
mkdir -p results
LINT_TMP=$(mktemp -d)
cargo run -q -p rll-lint --release -- --out results/lint.json \
    --baseline results/lint_baseline.json \
    --lock-graph "$LINT_TMP/lock_graph.json"
# The committed lock graph is part of the review surface: any change to lock
# declarations, ranks, or nesting edges must show up as a diff. (A cycle is
# already a lint violation, so the run above fails outright on one.)
diff -u results/lock_graph.json "$LINT_TMP/lock_graph.json" || {
    echo "lock graph drifted from results/lock_graph.json — regenerate with"
    echo "  cargo run -q -p rll-lint --release -- --lock-graph results/lock_graph.json"
    rm -rf "$LINT_TMP"
    exit 1
}
rm -rf "$LINT_TMP"

echo "== cargo build (all targets, incl. examples and bins) =="
cargo build --workspace --all-targets

echo "== cargo test =="
cargo test -q --workspace

echo "== serve smoke test =="
# One real round trip through the serving stack: train a tiny checkpoint,
# serve it on an ephemeral port, fire a seeded load burst, shut down. Gates
# on loadgen's exit status (non-zero when no request succeeds).
#
# RLL_LOCK_WITNESS=1 arms the runtime lock-order witness in these release
# binaries (it defaults to debug builds only): every lock acquisition on the
# serve/train paths below asserts the declared rank ladder, so an ordering
# inversion aborts the smoke/determinism/crash gates instead of deadlocking
# in production.
export RLL_LOCK_WITNESS=1
cargo build -q --release -p rll-serve
SMOKE_DIR=$(mktemp -d)
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
./target/release/serve train-demo --out "$SMOKE_DIR/smoke.rllckpt" \
    --n 80 --epochs 5 --seed 42 >/dev/null
./target/release/serve --checkpoint "$SMOKE_DIR/smoke.rllckpt" \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$SMOKE_DIR/port" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/port" ] || { echo "serve never wrote its port file"; exit 1; }
./target/release/loadgen --addr "$(head -n1 "$SMOKE_DIR/port")" \
    --requests 50 --concurrency 2 --seed 42 \
    --out "$SMOKE_DIR/serve_bench.json" >/dev/null
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "serve smoke test ok"

echo "== tracing gate (trace/v1 JSONL valid; profiling never changes bytes) =="
# Re-run the smoke serve with request tracing on, then validate the emitted
# trace/v1 JSONL with `profile --validate` (schema, deterministic ids,
# monotone phase ordering). Gates the tentpole contract: every request is
# explainable end-to-end from its trace.
cargo build -q --release -p rll-bench --bin profile
./target/release/serve --checkpoint "$SMOKE_DIR/smoke.rllckpt" \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/trace_port" \
    --trace-out "$SMOKE_DIR/trace.jsonl" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$SMOKE_DIR/trace_port" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/trace_port" ] || { echo "traced serve never wrote its port file"; exit 1; }
./target/release/loadgen --addr "$(head -n1 "$SMOKE_DIR/trace_port")" \
    --requests 50 --concurrency 2 --seed 42 \
    --out "$SMOKE_DIR/traced_bench.json" >/dev/null
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
./target/release/profile --validate "$SMOKE_DIR/trace.jsonl"
# Profiling must be observe-only: a profiled training run's checkpoint must
# be byte-identical to an unprofiled one (profiling reads clocks, never the
# RNG stream or the float math).
RLL_RUN_ID=trace-gate ./target/release/serve train-demo \
    --out "$SMOKE_DIR/prof_off.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
RLL_RUN_ID=trace-gate ./target/release/serve train-demo --profile \
    --out "$SMOKE_DIR/prof_on.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
cmp "$SMOKE_DIR/prof_off.rllckpt" "$SMOKE_DIR/prof_on.rllckpt" || {
    echo "tracing gate FAILED: --profile changed checkpoint bytes"
    exit 1
}
echo "tracing gate ok (traces valid; profiled checkpoint is byte-identical)"

echo "== determinism gate (RLL_THREADS must not change results) =="
# Two short training runs that differ only in worker-thread count must emit
# byte-identical checkpoints. RLL_RUN_ID pins the run id (normally it embeds
# a timestamp + pid) so the only possible difference is the math itself.
RLL_RUN_ID=det-gate RLL_THREADS=1 ./target/release/serve train-demo \
    --out "$SMOKE_DIR/det_t1.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
RLL_RUN_ID=det-gate RLL_THREADS=4 ./target/release/serve train-demo \
    --out "$SMOKE_DIR/det_t4.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
cmp "$SMOKE_DIR/det_t1.rllckpt" "$SMOKE_DIR/det_t4.rllckpt" || {
    echo "determinism gate FAILED: thread count changed checkpoint bytes"
    exit 1
}
echo "determinism gate ok (1-thread and 4-thread checkpoints are identical)"

echo "== crash-safety gate (kill, resume, byte-compare) =="
# Fault-injected training must be losslessly resumable: crashtest kills a run
# after chosen epochs, resumes from the latest .rllstate snapshot, and fails
# unless the resumed .rllckpt is byte-identical to an uninterrupted run's.
# Run at both thread counts; each resume deliberately uses the *other*
# thread count to prove snapshots are portable across parallelism settings.
cargo build -q --release -p rll-bench --bin crashtest
RLL_RUN_ID=crash-gate RLL_THREADS=1 ./target/release/crashtest \
    --n 100 --epochs 10 --every 3 --kill-at 2,5,8 --resume-threads 4 \
    --out-dir "$SMOKE_DIR/crash_t1"
RLL_RUN_ID=crash-gate RLL_THREADS=4 ./target/release/crashtest \
    --n 100 --epochs 10 --every 3 --kill-at 2,5,8 --resume-threads 1 \
    --out-dir "$SMOKE_DIR/crash_t4"
# The two golden checkpoints came from independent processes at different
# thread counts — they must agree too.
cmp "$SMOKE_DIR/crash_t1/golden.rllckpt" "$SMOKE_DIR/crash_t4/golden.rllckpt" || {
    echo "crash-safety gate FAILED: goldens differ across thread counts"
    exit 1
}
echo "crash-safety gate ok (resume is bitwise lossless at RLL_THREADS=1 and 4)"

echo "All checks passed."
