#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rll-lint (workspace invariants, suppression ratchet, lock graph) =="
mkdir -p results
LINT_TMP=$(mktemp -d)
cargo run -q -p rll-lint --release -- --out results/lint.json \
    --baseline results/lint_baseline.json \
    --lock-graph "$LINT_TMP/lock_graph.json"
# The committed lock graph is part of the review surface: any change to lock
# declarations, ranks, or nesting edges must show up as a diff. (A cycle is
# already a lint violation, so the run above fails outright on one.)
diff -u results/lock_graph.json "$LINT_TMP/lock_graph.json" || {
    echo "lock graph drifted from results/lock_graph.json — regenerate with"
    echo "  cargo run -q -p rll-lint --release -- --lock-graph results/lock_graph.json"
    rm -rf "$LINT_TMP"
    exit 1
}
rm -rf "$LINT_TMP"

echo "== cargo build (all targets, incl. examples and bins) =="
cargo build --workspace --all-targets

echo "== cargo test =="
cargo test -q --workspace

echo "== serve smoke test =="
# One real round trip through the serving stack: train a tiny checkpoint,
# serve it on an ephemeral port, fire a seeded load burst, shut down. Gates
# on loadgen's exit status (non-zero when no request succeeds).
#
# RLL_LOCK_WITNESS=1 arms the runtime lock-order witness in these release
# binaries (it defaults to debug builds only): every lock acquisition on the
# serve/train paths below asserts the declared rank ladder, so an ordering
# inversion aborts the smoke/determinism/crash gates instead of deadlocking
# in production.
export RLL_LOCK_WITNESS=1
cargo build -q --release -p rll-serve
SMOKE_DIR=$(mktemp -d)
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
./target/release/serve train-demo --out "$SMOKE_DIR/smoke.rllckpt" \
    --n 80 --epochs 5 --seed 42 >/dev/null
./target/release/serve --checkpoint "$SMOKE_DIR/smoke.rllckpt" \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$SMOKE_DIR/port" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/port" ] || { echo "serve never wrote its port file"; exit 1; }
./target/release/loadgen --addr "$(head -n1 "$SMOKE_DIR/port")" \
    --requests 50 --concurrency 2 --seed 42 \
    --out "$SMOKE_DIR/serve_bench.json" >/dev/null
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "serve smoke test ok"

echo "== tracing gate (trace/v1 JSONL valid; profiling never changes bytes) =="
# Re-run the smoke serve with request tracing on, then validate the emitted
# trace/v1 JSONL with `profile --validate` (schema, deterministic ids,
# monotone phase ordering). Gates the tentpole contract: every request is
# explainable end-to-end from its trace.
cargo build -q --release -p rll-bench --bin profile
./target/release/serve --checkpoint "$SMOKE_DIR/smoke.rllckpt" \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/trace_port" \
    --trace-out "$SMOKE_DIR/trace.jsonl" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$SMOKE_DIR/trace_port" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/trace_port" ] || { echo "traced serve never wrote its port file"; exit 1; }
./target/release/loadgen --addr "$(head -n1 "$SMOKE_DIR/trace_port")" \
    --requests 50 --concurrency 2 --seed 42 \
    --out "$SMOKE_DIR/traced_bench.json" >/dev/null
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
./target/release/profile --validate "$SMOKE_DIR/trace.jsonl"
# Profiling must be observe-only: a profiled training run's checkpoint must
# be byte-identical to an unprofiled one (profiling reads clocks, never the
# RNG stream or the float math).
RLL_RUN_ID=trace-gate ./target/release/serve train-demo \
    --out "$SMOKE_DIR/prof_off.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
RLL_RUN_ID=trace-gate ./target/release/serve train-demo --profile \
    --out "$SMOKE_DIR/prof_on.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
cmp "$SMOKE_DIR/prof_off.rllckpt" "$SMOKE_DIR/prof_on.rllckpt" || {
    echo "tracing gate FAILED: --profile changed checkpoint bytes"
    exit 1
}
echo "tracing gate ok (traces valid; profiled checkpoint is byte-identical)"

echo "== determinism gate (RLL_THREADS must not change results) =="
# Two short training runs that differ only in worker-thread count must emit
# byte-identical checkpoints. RLL_RUN_ID pins the run id (normally it embeds
# a timestamp + pid) so the only possible difference is the math itself.
RLL_RUN_ID=det-gate RLL_THREADS=1 ./target/release/serve train-demo \
    --out "$SMOKE_DIR/det_t1.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
RLL_RUN_ID=det-gate RLL_THREADS=4 ./target/release/serve train-demo \
    --out "$SMOKE_DIR/det_t4.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
cmp "$SMOKE_DIR/det_t1.rllckpt" "$SMOKE_DIR/det_t4.rllckpt" || {
    echo "determinism gate FAILED: thread count changed checkpoint bytes"
    exit 1
}
echo "determinism gate ok (1-thread and 4-thread checkpoints are identical)"

echo "== kernel gate (RLL_KERNEL must not change results; bench_train/v2) =="
# The scalar kernels are the oracle: training with the tiled kernels must
# emit byte-identical checkpoints, at 1 worker thread and at 4.
for T in 1 4; do
    RLL_RUN_ID=kern-gate RLL_THREADS=$T RLL_KERNEL=scalar ./target/release/serve train-demo \
        --out "$SMOKE_DIR/kern_scalar_t$T.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
    RLL_RUN_ID=kern-gate RLL_THREADS=$T RLL_KERNEL=tiled ./target/release/serve train-demo \
        --out "$SMOKE_DIR/kern_tiled_t$T.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
    cmp "$SMOKE_DIR/kern_scalar_t$T.rllckpt" "$SMOKE_DIR/kern_tiled_t$T.rllckpt" || {
        echo "kernel gate FAILED: RLL_KERNEL changed checkpoint bytes at RLL_THREADS=$T"
        exit 1
    }
done
# bench_train/v2 re-times both kernels at both thread counts in child
# processes and aborts unless all four runs hash to the same embeddings and
# training trace. Timings land in the temp dir; the committed
# results/bench_train.json is regenerated manually on a quiet box.
cargo build -q --release -p rll-bench --bin time_fold
./target/release/time_fold --bench-train --out "$SMOKE_DIR/bench_train.json" >/dev/null
echo "kernel gate ok (scalar and tiled agree bitwise at 1 and 4 threads)"

echo "== crash-safety gate (kill, resume, byte-compare) =="
# Fault-injected training must be losslessly resumable: crashtest kills a run
# after chosen epochs, resumes from the latest .rllstate snapshot, and fails
# unless the resumed .rllckpt is byte-identical to an uninterrupted run's.
# Run at both thread counts; each resume deliberately uses the *other*
# thread count to prove snapshots are portable across parallelism settings.
cargo build -q --release -p rll-bench --bin crashtest
RLL_RUN_ID=crash-gate RLL_THREADS=1 ./target/release/crashtest \
    --n 100 --epochs 10 --every 3 --kill-at 2,5,8 --resume-threads 4 \
    --out-dir "$SMOKE_DIR/crash_t1"
RLL_RUN_ID=crash-gate RLL_THREADS=4 ./target/release/crashtest \
    --n 100 --epochs 10 --every 3 --kill-at 2,5,8 --resume-threads 1 \
    --out-dir "$SMOKE_DIR/crash_t4"
# The two golden checkpoints came from independent processes at different
# thread counts — they must agree too.
cmp "$SMOKE_DIR/crash_t1/golden.rllckpt" "$SMOKE_DIR/crash_t4/golden.rllckpt" || {
    echo "crash-safety gate FAILED: goldens differ across thread counts"
    exit 1
}
echo "crash-safety gate ok (resume is bitwise lossless at RLL_THREADS=1 and 4)"

echo "== label soak gate (live ingest + drift retrain + compaction + WAL crash replay) =="
# A live-labeling server takes an interleaved vote + embed/score load with
# connection churn and duplicate vote retries, must complete at least one
# drift-triggered retrain → hot reload AND one log compaction with ZERO
# dropped requests and every duplicate answered by its original receipt
# (loadgen --strict --expect-reloads 1 --expect-compactions 1), and must
# survive kill -9 anywhere: mid-ingest, and mid-compaction at both fault
# boundaries.
cp "$SMOKE_DIR/smoke.rllckpt" "$SMOKE_DIR/label.rllckpt"
LABEL_DIR="$SMOKE_DIR/labels"
start_label_serve() { # $1 = port file, $2 = vote floor, $3 = trigger, $4 = compact
    ./target/release/serve --checkpoint "$SMOKE_DIR/label.rllckpt" \
        --addr 127.0.0.1:0 --port-file "$1" \
        --labels-dir "$LABEL_DIR" --labels-shards 2 --labels-segment 16 \
        --live-preset oral --live-n 80 --live-seed 42 --live-workers 8 \
        --retrain-votes "$2" --retrain-epochs 3 \
        --retrain-trigger "$3" --compact "$4" >/dev/null &
    SERVE_PID=$!
    for _ in $(seq 1 50); do
        [ -s "$1" ] && break
        sleep 0.1
    done
    [ -s "$1" ] || { echo "label serve never wrote its port file"; exit 1; }
}
wal_bytes() { find "$LABEL_DIR" -name '*.rllwal' -printf '%s\n' 2>/dev/null | awk '{s+=$1} END {print s+0}'; }
soak_field() { sed -n "s/.*\"$1\": *\([0-9][0-9]*\).*/\1/p" "$SMOKE_DIR/label_soak.json" | head -n1; }
start_label_serve "$SMOKE_DIR/label_port" 40 drift on
LABEL_ADDR=$(head -n1 "$SMOKE_DIR/label_port")
./target/release/loadgen --addr "$LABEL_ADDR" \
    --requests 300 --concurrency 3 --seed 42 \
    --labels --label-frac 0.4 --label-preset oral --label-n 80 --label-seed 42 \
    --label-workers 8 --label-flip 0.1 --label-dup-frac 0.1 \
    --expect-reloads 1 --expect-compactions 1 --reload-wait 120 --strict \
    --out "$SMOKE_DIR/label_bench.json" \
    --labels-out "$SMOKE_DIR/label_soak.json" >/dev/null
# The soak's auto-compaction must have actually reclaimed log bytes.
RECLAIMED=$(soak_field bytes_reclaimed)
[ -n "$RECLAIMED" ] && [ "$RECLAIMED" -gt 0 ] || {
    echo "label soak gate FAILED: compaction ran but reclaimed ${RECLAIMED:-0} bytes"
    exit 1
}
[ -f "$LABEL_DIR/confidence.rllsnap" ] || {
    echo "label soak gate FAILED: no confidence snapshot after compaction"
    exit 1
}
# Quiesced acked state, then kill -9 with the active WAL segments unsealed
# (no graceful shutdown exists to seal them) and a fresh vote burst racing
# the kill — the on-disk shape is a mid-ingest crash, torn tail and all.
curl -sf "http://$LABEL_ADDR/labels" > "$SMOKE_DIR/labels_before.json"
./target/release/loadgen --addr "$LABEL_ADDR" \
    --requests 400 --concurrency 2 --seed 7 \
    --labels --label-frac 1.0 --label-preset oral --label-n 80 --label-seed 42 \
    --label-workers 8 \
    --out "$SMOKE_DIR/burst_bench.json" \
    --labels-out "$SMOKE_DIR/burst_soak.json" >/dev/null 2>&1 &
BURST_PID=$!
sleep 0.2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$BURST_PID" 2>/dev/null || true
# Two independent restarts must replay the crashed WAL (snapshot + tail) to
# identical state (replay determinism), and that state must contain every
# pre-kill acked vote (durability): the quiesced snapshot's high-water mark
# can only grow.
start_label_serve "$SMOKE_DIR/label_port2" 0 drift off
curl -sf "http://$(head -n1 "$SMOKE_DIR/label_port2")/labels" > "$SMOKE_DIR/labels_replay1.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
start_label_serve "$SMOKE_DIR/label_port3" 0 drift off
curl -sf "http://$(head -n1 "$SMOKE_DIR/label_port3")/labels" > "$SMOKE_DIR/labels_replay2.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
cmp "$SMOKE_DIR/labels_replay1.json" "$SMOKE_DIR/labels_replay2.json" || {
    echo "label soak gate FAILED: two replays of the same WAL disagree"
    exit 1
}
BEFORE_HW=$(sed -n 's/.*"high_water_seq": *\([0-9]*\).*/\1/p' "$SMOKE_DIR/labels_before.json")
AFTER_HW=$(sed -n 's/.*"high_water_seq": *\([0-9]*\).*/\1/p' "$SMOKE_DIR/labels_replay1.json")
[ -n "$BEFORE_HW" ] && [ -n "$AFTER_HW" ] && [ "$AFTER_HW" -ge "$BEFORE_HW" ] || {
    echo "label soak gate FAILED: replayed high water $AFTER_HW < acked $BEFORE_HW"
    exit 1
}

echo "== compaction crash gate (kill -9 at both fault boundaries) =="
# Ingest a fresh vote batch (no kill racing it — the burst above may have
# landed anywhere from zero to all of its votes) and advance the manifest
# with one more (vote-triggered) retrain round, compaction off — leaving
# plenty of sealed, compactable segments below the new folded_seq for the
# fault injection below.
start_label_serve "$SMOKE_DIR/label_port4" 50 votes off
LABEL_ADDR4=$(head -n1 "$SMOKE_DIR/label_port4")
./target/release/loadgen --addr "$LABEL_ADDR4" \
    --requests 150 --concurrency 2 --seed 9 \
    --labels --label-frac 0.8 --label-preset oral --label-n 80 --label-seed 42 \
    --label-workers 8 \
    --out "$SMOKE_DIR/backlog_bench.json" \
    --labels-out "$SMOKE_DIR/backlog_soak.json" >/dev/null
for _ in $(seq 1 120); do
    ROUNDS=$(curl -sf "http://$LABEL_ADDR4/metrics?format=text" \
        | sed -n 's/^label\.retrain\.rounds \([0-9]*\)$/\1/p' || true)
    [ "${ROUNDS:-0}" -ge 1 ] && break
    sleep 1
done
[ "${ROUNDS:-0}" -ge 1 ] || { echo "compaction gate FAILED: backlog round never fired"; exit 1; }
curl -sf "http://$LABEL_ADDR4/labels" > "$SMOKE_DIR/labels_pre_compact.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
B0=$(wal_bytes)
# Fault 1: abort right after the snapshot write, before any deletion. The
# server process dies mid-/compact; every segment must still be on disk and
# a clean restart must serve the identical confidence surface.
RLL_COMPACT_FAULT=before-delete start_label_serve "$SMOKE_DIR/label_port5" 0 drift off
curl -s -m 30 -X POST -H 'Content-Length: 0' \
    "http://$(head -n1 "$SMOKE_DIR/label_port5")/compact" >/dev/null 2>&1 || true
for _ in $(seq 1 50); do kill -0 "$SERVE_PID" 2>/dev/null || break; sleep 0.2; done
kill -0 "$SERVE_PID" 2>/dev/null && {
    echo "compaction gate FAILED: before-delete fault never fired"
    exit 1
}
wait "$SERVE_PID" 2>/dev/null || true
[ "$(wal_bytes)" -eq "$B0" ] || {
    echo "compaction gate FAILED: before-delete abort lost segment bytes"
    exit 1
}
start_label_serve "$SMOKE_DIR/label_port6" 0 drift off
curl -sf "http://$(head -n1 "$SMOKE_DIR/label_port6")/labels" > "$SMOKE_DIR/labels_fault1.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
cmp "$SMOKE_DIR/labels_pre_compact.json" "$SMOKE_DIR/labels_fault1.json" || {
    echo "compaction gate FAILED: before-delete abort changed /labels"
    exit 1
}
# Fault 2: abort after the first segment deletion — the snapshot now covers
# records whose segments are partially gone. Replay must treat the leading
# gap as compacted prefix and still reproduce the exact surface.
RLL_COMPACT_FAULT=mid-delete start_label_serve "$SMOKE_DIR/label_port7" 0 drift off
curl -s -m 30 -X POST -H 'Content-Length: 0' \
    "http://$(head -n1 "$SMOKE_DIR/label_port7")/compact" >/dev/null 2>&1 || true
for _ in $(seq 1 50); do kill -0 "$SERVE_PID" 2>/dev/null || break; sleep 0.2; done
kill -0 "$SERVE_PID" 2>/dev/null && {
    echo "compaction gate FAILED: mid-delete fault never fired"
    exit 1
}
wait "$SERVE_PID" 2>/dev/null || true
[ "$(wal_bytes)" -lt "$B0" ] || {
    echo "compaction gate FAILED: mid-delete abort deleted nothing"
    exit 1
}
start_label_serve "$SMOKE_DIR/label_port8" 0 drift off
LABEL_ADDR8=$(head -n1 "$SMOKE_DIR/label_port8")
curl -sf "http://$LABEL_ADDR8/labels" > "$SMOKE_DIR/labels_fault2.json"
cmp "$SMOKE_DIR/labels_pre_compact.json" "$SMOKE_DIR/labels_fault2.json" || {
    echo "compaction gate FAILED: mid-delete abort changed /labels"
    exit 1
}
# Clean completion on the survivor: the interrupted run resumes, deletes the
# remaining covered segments, shrinks the log — and /labels still does not
# move, before or after one more kill -9.
curl -sf -X POST -H 'Content-Length: 0' \
    "http://$LABEL_ADDR8/compact" > "$SMOKE_DIR/compact_stats.json"
DELETED=$(sed -n 's/.*"segments_deleted": *\([0-9]*\).*/\1/p' "$SMOKE_DIR/compact_stats.json")
[ -n "$DELETED" ] && [ "$DELETED" -ge 1 ] || {
    echo "compaction gate FAILED: resumed compaction deleted no segments"
    exit 1
}
[ "$(wal_bytes)" -lt "$B0" ] || {
    echo "compaction gate FAILED: completed compaction did not shrink the WAL"
    exit 1
}
curl -sf "http://$LABEL_ADDR8/labels" > "$SMOKE_DIR/labels_compacted.json"
cmp "$SMOKE_DIR/labels_pre_compact.json" "$SMOKE_DIR/labels_compacted.json" || {
    echo "compaction gate FAILED: compaction changed /labels"
    exit 1
}
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
start_label_serve "$SMOKE_DIR/label_port9" 0 drift off
curl -sf "http://$(head -n1 "$SMOKE_DIR/label_port9")/labels" > "$SMOKE_DIR/labels_final.json"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
cmp "$SMOKE_DIR/labels_pre_compact.json" "$SMOKE_DIR/labels_final.json" || {
    echo "compaction gate FAILED: post-compaction replay changed /labels"
    exit 1
}
echo "label soak gate ok (zero-drop soak with hot reload, idempotent retries, and ≥1 compaction)"
echo "compaction crash gate ok (aborts at both boundaries are lossless; log shrank, /labels did not move)"

echo "All checks passed."
