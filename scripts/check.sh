#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rll-lint (workspace invariants) =="
mkdir -p results
cargo run -q -p rll-lint --release -- --out results/lint.json

echo "== cargo test =="
cargo test -q --workspace

echo "All checks passed."
