#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rll-lint (workspace invariants, suppression ratchet, lock graph) =="
mkdir -p results
LINT_TMP=$(mktemp -d)
cargo run -q -p rll-lint --release -- --out results/lint.json \
    --baseline results/lint_baseline.json \
    --lock-graph "$LINT_TMP/lock_graph.json"
# The committed lock graph is part of the review surface: any change to lock
# declarations, ranks, or nesting edges must show up as a diff. (A cycle is
# already a lint violation, so the run above fails outright on one.)
diff -u results/lock_graph.json "$LINT_TMP/lock_graph.json" || {
    echo "lock graph drifted from results/lock_graph.json — regenerate with"
    echo "  cargo run -q -p rll-lint --release -- --lock-graph results/lock_graph.json"
    rm -rf "$LINT_TMP"
    exit 1
}
rm -rf "$LINT_TMP"

echo "== cargo build (all targets, incl. examples and bins) =="
cargo build --workspace --all-targets

echo "== cargo test =="
cargo test -q --workspace

echo "== serve smoke test =="
# One real round trip through the serving stack: train a tiny checkpoint,
# serve it on an ephemeral port, fire a seeded load burst, shut down. Gates
# on loadgen's exit status (non-zero when no request succeeds).
#
# RLL_LOCK_WITNESS=1 arms the runtime lock-order witness in these release
# binaries (it defaults to debug builds only): every lock acquisition on the
# serve/train paths below asserts the declared rank ladder, so an ordering
# inversion aborts the smoke/determinism/crash gates instead of deadlocking
# in production.
export RLL_LOCK_WITNESS=1
cargo build -q --release -p rll-serve
SMOKE_DIR=$(mktemp -d)
trap 'kill "${SERVE_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
./target/release/serve train-demo --out "$SMOKE_DIR/smoke.rllckpt" \
    --n 80 --epochs 5 --seed 42 >/dev/null
./target/release/serve --checkpoint "$SMOKE_DIR/smoke.rllckpt" \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$SMOKE_DIR/port" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/port" ] || { echo "serve never wrote its port file"; exit 1; }
./target/release/loadgen --addr "$(head -n1 "$SMOKE_DIR/port")" \
    --requests 50 --concurrency 2 --seed 42 \
    --out "$SMOKE_DIR/serve_bench.json" >/dev/null
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
echo "serve smoke test ok"

echo "== tracing gate (trace/v1 JSONL valid; profiling never changes bytes) =="
# Re-run the smoke serve with request tracing on, then validate the emitted
# trace/v1 JSONL with `profile --validate` (schema, deterministic ids,
# monotone phase ordering). Gates the tentpole contract: every request is
# explainable end-to-end from its trace.
cargo build -q --release -p rll-bench --bin profile
./target/release/serve --checkpoint "$SMOKE_DIR/smoke.rllckpt" \
    --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/trace_port" \
    --trace-out "$SMOKE_DIR/trace.jsonl" >/dev/null &
SERVE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$SMOKE_DIR/trace_port" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/trace_port" ] || { echo "traced serve never wrote its port file"; exit 1; }
./target/release/loadgen --addr "$(head -n1 "$SMOKE_DIR/trace_port")" \
    --requests 50 --concurrency 2 --seed 42 \
    --out "$SMOKE_DIR/traced_bench.json" >/dev/null
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
./target/release/profile --validate "$SMOKE_DIR/trace.jsonl"
# Profiling must be observe-only: a profiled training run's checkpoint must
# be byte-identical to an unprofiled one (profiling reads clocks, never the
# RNG stream or the float math).
RLL_RUN_ID=trace-gate ./target/release/serve train-demo \
    --out "$SMOKE_DIR/prof_off.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
RLL_RUN_ID=trace-gate ./target/release/serve train-demo --profile \
    --out "$SMOKE_DIR/prof_on.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
cmp "$SMOKE_DIR/prof_off.rllckpt" "$SMOKE_DIR/prof_on.rllckpt" || {
    echo "tracing gate FAILED: --profile changed checkpoint bytes"
    exit 1
}
echo "tracing gate ok (traces valid; profiled checkpoint is byte-identical)"

echo "== determinism gate (RLL_THREADS must not change results) =="
# Two short training runs that differ only in worker-thread count must emit
# byte-identical checkpoints. RLL_RUN_ID pins the run id (normally it embeds
# a timestamp + pid) so the only possible difference is the math itself.
RLL_RUN_ID=det-gate RLL_THREADS=1 ./target/release/serve train-demo \
    --out "$SMOKE_DIR/det_t1.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
RLL_RUN_ID=det-gate RLL_THREADS=4 ./target/release/serve train-demo \
    --out "$SMOKE_DIR/det_t4.rllckpt" --n 80 --epochs 5 --seed 42 >/dev/null
cmp "$SMOKE_DIR/det_t1.rllckpt" "$SMOKE_DIR/det_t4.rllckpt" || {
    echo "determinism gate FAILED: thread count changed checkpoint bytes"
    exit 1
}
echo "determinism gate ok (1-thread and 4-thread checkpoints are identical)"

echo "== crash-safety gate (kill, resume, byte-compare) =="
# Fault-injected training must be losslessly resumable: crashtest kills a run
# after chosen epochs, resumes from the latest .rllstate snapshot, and fails
# unless the resumed .rllckpt is byte-identical to an uninterrupted run's.
# Run at both thread counts; each resume deliberately uses the *other*
# thread count to prove snapshots are portable across parallelism settings.
cargo build -q --release -p rll-bench --bin crashtest
RLL_RUN_ID=crash-gate RLL_THREADS=1 ./target/release/crashtest \
    --n 100 --epochs 10 --every 3 --kill-at 2,5,8 --resume-threads 4 \
    --out-dir "$SMOKE_DIR/crash_t1"
RLL_RUN_ID=crash-gate RLL_THREADS=4 ./target/release/crashtest \
    --n 100 --epochs 10 --every 3 --kill-at 2,5,8 --resume-threads 1 \
    --out-dir "$SMOKE_DIR/crash_t4"
# The two golden checkpoints came from independent processes at different
# thread counts — they must agree too.
cmp "$SMOKE_DIR/crash_t1/golden.rllckpt" "$SMOKE_DIR/crash_t4/golden.rllckpt" || {
    echo "crash-safety gate FAILED: goldens differ across thread counts"
    exit 1
}
echo "crash-safety gate ok (resume is bitwise lossless at RLL_THREADS=1 and 4)"

echo "== label soak gate (live ingest + retrain hot-swap + WAL crash replay) =="
# A live-labeling server takes an interleaved vote + embed/score load with
# connection churn, must complete at least one background retrain → hot
# reload with ZERO dropped requests (loadgen --strict --expect-reloads 1),
# and must survive kill -9: a restart on the same WAL directory replays to
# the exact same confidence state, byte for byte.
cp "$SMOKE_DIR/smoke.rllckpt" "$SMOKE_DIR/label.rllckpt"
LABEL_DIR="$SMOKE_DIR/labels"
start_label_serve() { # $1 = port file, $2 = retrain vote threshold
    ./target/release/serve --checkpoint "$SMOKE_DIR/label.rllckpt" \
        --addr 127.0.0.1:0 --port-file "$1" \
        --labels-dir "$LABEL_DIR" --labels-shards 2 --labels-segment 64 \
        --live-preset oral --live-n 80 --live-seed 42 --live-workers 8 \
        --retrain-votes "$2" --retrain-epochs 3 >/dev/null &
    SERVE_PID=$!
    for _ in $(seq 1 50); do
        [ -s "$1" ] && break
        sleep 0.1
    done
    [ -s "$1" ] || { echo "label serve never wrote its port file"; exit 1; }
}
start_label_serve "$SMOKE_DIR/label_port" 40
LABEL_ADDR=$(head -n1 "$SMOKE_DIR/label_port")
./target/release/loadgen --addr "$LABEL_ADDR" \
    --requests 300 --concurrency 3 --seed 42 \
    --labels --label-frac 0.4 --label-preset oral --label-n 80 --label-seed 42 \
    --label-workers 8 --label-flip 0.1 \
    --expect-reloads 1 --reload-wait 120 --strict \
    --out "$SMOKE_DIR/label_bench.json" \
    --labels-out "$SMOKE_DIR/label_soak.json" >/dev/null
# Quiesced acked state, then kill -9 with the active WAL segments unsealed
# (no graceful shutdown exists to seal them) and a fresh vote burst racing
# the kill — the on-disk shape is a mid-ingest crash, torn tail and all.
curl -sf "http://$LABEL_ADDR/labels" > "$SMOKE_DIR/labels_before.json"
./target/release/loadgen --addr "$LABEL_ADDR" \
    --requests 400 --concurrency 2 --seed 7 \
    --labels --label-frac 1.0 --label-preset oral --label-n 80 --label-seed 42 \
    --label-workers 8 \
    --out "$SMOKE_DIR/burst_bench.json" \
    --labels-out "$SMOKE_DIR/burst_soak.json" >/dev/null 2>&1 &
BURST_PID=$!
sleep 0.2
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
wait "$BURST_PID" 2>/dev/null || true
# Two independent restarts must replay the crashed WAL to identical state
# (replay determinism), and that state must contain every pre-kill acked
# vote (durability): the quiesced snapshot's high-water mark can only grow.
start_label_serve "$SMOKE_DIR/label_port2" 0
LABEL_ADDR2=$(head -n1 "$SMOKE_DIR/label_port2")
curl -sf "http://$LABEL_ADDR2/labels" > "$SMOKE_DIR/labels_replay1.json"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
start_label_serve "$SMOKE_DIR/label_port3" 0
LABEL_ADDR3=$(head -n1 "$SMOKE_DIR/label_port3")
curl -sf "http://$LABEL_ADDR3/labels" > "$SMOKE_DIR/labels_replay2.json"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
cmp "$SMOKE_DIR/labels_replay1.json" "$SMOKE_DIR/labels_replay2.json" || {
    echo "label soak gate FAILED: two replays of the same WAL disagree"
    exit 1
}
BEFORE_HW=$(sed -n 's/.*"high_water_seq": *\([0-9]*\).*/\1/p' "$SMOKE_DIR/labels_before.json")
AFTER_HW=$(sed -n 's/.*"high_water_seq": *\([0-9]*\).*/\1/p' "$SMOKE_DIR/labels_replay1.json")
[ -n "$BEFORE_HW" ] && [ -n "$AFTER_HW" ] && [ "$AFTER_HW" -ge "$BEFORE_HW" ] || {
    echo "label soak gate FAILED: replayed high water $AFTER_HW < acked $BEFORE_HW"
    exit 1
}
echo "label soak gate ok (zero-drop soak with hot reload; kill -9 replay is deterministic and lossless)"

echo "All checks passed."
