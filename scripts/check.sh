#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, tests. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "All checks passed."
