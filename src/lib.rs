#![warn(missing_docs)]

//! # `rll` — Representation Learning with Crowdsourced Labels
//!
//! Umbrella crate for the reproduction of *“Learning Effective Embeddings From
//! Crowdsourced Labels: An Educational Case Study”* (Xu et al., ICDE 2019).
//!
//! The workspace is split into focused subsystem crates; this crate re-exports
//! each of them under a stable module name so downstream users can depend on a
//! single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`par`] | `rll-par` | deterministic scoped-thread fan-out (`RLL_THREADS`) |
//! | [`tensor`] | `rll-tensor` | dense matrices, sampling, initializers |
//! | [`nn`] | `rll-nn` | MLP layers, losses, optimizers |
//! | [`crowd`] | `rll-crowd` | label aggregation, confidence estimation, worker simulation |
//! | [`data`] | `rll-data` | synthetic `oral` / `class` datasets, splits |
//! | [`baselines`] | `rll-baselines` | logistic regression, Siamese/Triplet/Relation nets |
//! | [`core`] | `rll-core` | the RLL framework itself |
//! | [`eval`] | `rll-eval` | metrics, cross-validation, experiment runners |
//! | [`serve`] | `rll-serve` | checkpoints, inference engine, HTTP serving |
//!
//! ## Quickstart
//!
//! ```
//! use rll::data::presets;
//! use rll::core::{RllConfig, RllPipeline, RllVariant};
//!
//! // Simulate the paper's `oral` dataset at 1/8 scale (fast for doctests).
//! let ds = presets::oral_scaled(110, 7).expect("valid preset");
//! let cfg = RllConfig {
//!     variant: RllVariant::Bayesian,
//!     epochs: 3,
//!     groups_per_epoch: 64,
//!     ..RllConfig::default()
//! };
//! let mut pipeline = RllPipeline::new(cfg);
//! let report = pipeline
//!     .fit_evaluate(&ds.features, &ds.annotations, &ds.expert_labels, 42)
//!     .expect("training succeeds");
//! assert!(report.accuracy >= 0.0 && report.accuracy <= 1.0);
//! ```

pub use rll_baselines as baselines;
pub use rll_core as core;
pub use rll_crowd as crowd;
pub use rll_data as data;
pub use rll_eval as eval;
pub use rll_nn as nn;
pub use rll_par as par;
pub use rll_serve as serve;
pub use rll_tensor as tensor;
