//! The paper's first application: predicting speech fluency from crowd-labeled
//! oral math answers ("oral" dataset).
//!
//! Compares a Group-1 baseline (EM), a Group-2 baseline (TripletNet), a
//! Group-3 pipeline (TripletNet+EM), and the three RLL variants under the
//! paper's 5-fold cross-validation protocol on the simulated dataset.
//!
//! ```text
//! cargo run --release --example oral_fluency
//! ```

use rll::core::RllVariant;
use rll::data::presets;
use rll::eval::harness::CrossValidator;
use rll::eval::method::{EmbedKind, MethodSpec, TrainBudget, TwoStageAgg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size simulation keeps this example around a minute in release
    // mode; `repro_table1 --full` runs the paper-size version.
    let ds = presets::oral_scaled(440, 11)?;
    println!(
        "oral fluency: {} clips, {} features/clip, {} annotators, pos:neg = {:.2}\n",
        ds.len(),
        ds.dim(),
        ds.num_workers(),
        ds.class_ratio().unwrap_or(f64::NAN)
    );

    let methods = [
        MethodSpec::Em,
        MethodSpec::Embed(EmbedKind::Triplet),
        MethodSpec::TwoStage(EmbedKind::Triplet, TwoStageAgg::Em),
        MethodSpec::Rll(RllVariant::Plain),
        MethodSpec::Rll(RllVariant::Mle),
        MethodSpec::Rll(RllVariant::Bayesian),
    ];

    let cv = CrossValidator::paper_protocol(TrainBudget::full(), 42);
    println!(
        "{:<18}{:<7}{:<18}{:<10}",
        "Method", "Group", "Accuracy", "F1"
    );
    println!("{}", "-".repeat(53));
    for spec in methods {
        let score = cv.evaluate(spec, &ds)?;
        println!(
            "{:<18}{:<7}{:.3} ± {:.3}     {:.3}",
            score.method, score.group, score.accuracy.mean, score.accuracy.std, score.f1.mean
        );
    }

    println!(
        "\nPaper Table I shape: the RLL variants (group 4) finish on top, with the\nconfidence-weighted variants ahead of plain RLL. At this reduced n the\nmargins are within one fold-std; `repro_table1 --full` runs the paper-size\nversion where the group-4 lead is consistent (see EXPERIMENTS.md)."
    );
    Ok(())
}
