//! Annotation-quality audit: agreement statistics, worker ranking, and
//! spammer detection on a simulated crowd.
//!
//! Before training anything, a practitioner should ask: how consistent are my
//! annotators, and is anyone just clicking through? This example runs the
//! audit tools on a crowd that contains a known spammer and a known
//! adversary, then shows the paper's oral-vs-class agreement contrast.
//!
//! ```text
//! cargo run --release --example annotation_quality
//! ```

use rll::crowd::aggregate::DawidSkene;
use rll::crowd::agreement::{agreement_report, cohens_kappa};
use rll::crowd::quality::{detect_spammers, rank_workers, worker_qualities};
use rll::crowd::simulate::{WorkerModel, WorkerPool};
use rll::data::presets;
use rll::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A crowd with two good workers, one mediocre, one spammer, one adversary.
    let mut rng = Rng64::seed_from_u64(7);
    let truth: Vec<u8> = (0..600).map(|_| u8::from(rng.bernoulli(0.6))).collect();
    let pool = WorkerPool::new(vec![
        WorkerModel::OneCoin { accuracy: 0.92 },
        WorkerModel::OneCoin { accuracy: 0.88 },
        WorkerModel::OneCoin { accuracy: 0.70 },
        WorkerModel::Spammer { positive_rate: 0.6 },
        WorkerModel::OneCoin { accuracy: 0.15 }, // systematically wrong
    ]);
    let ann = pool.annotate(&truth, &mut rng)?;

    println!("== agreement audit (600 items, 5 workers) ==");
    let report = agreement_report(&ann)?;
    println!(
        "Fleiss kappa {:.3} | mean pairwise Cohen kappa {:.3} | split votes {:.0}%",
        report.fleiss_kappa,
        report.mean_cohens_kappa,
        100.0 * report.split_vote_fraction
    );
    println!(
        "kappa(worker0, worker1) = {:.3}  (two reliable workers)",
        cohens_kappa(&ann, 0, 1)?
    );
    println!(
        "kappa(worker0, worker4) = {:.3}  (reliable vs adversary — negative!)",
        cohens_kappa(&ann, 0, 4)?
    );

    println!("\n== worker quality from the Dawid-Skene fit ==");
    let fit = DawidSkene::default().fit(&ann)?;
    let qualities = worker_qualities(&fit, &ann)?;
    println!(
        "{:<8}{:<16}{:<18}votes",
        "worker", "exp. accuracy", "informativeness"
    );
    for q in &qualities {
        println!(
            "{:<8}{:<16.3}{:<18.3}{}",
            q.worker, q.expected_accuracy, q.informativeness, q.annotation_count
        );
    }
    println!("ranked best-first: {:?}", rank_workers(&qualities));
    println!(
        "flagged as spammers (informativeness < 0.2): {:?}",
        detect_spammers(&qualities, 0.2)
    );
    println!("note: the adversary is NOT flagged — its votes are informative once inverted,\nwhich is exactly what the Dawid-Skene confusion matrix captures.");

    println!("\n== the paper's task contrast ==");
    let oral = presets::oral_scaled(400, 11)?;
    let class = presets::class_scaled(400, 11)?;
    let oral_report = agreement_report(&oral.annotations)?;
    let class_report = agreement_report(&class.annotations)?;
    println!(
        "oral : Fleiss kappa {:.3}, split votes {:.0}%",
        oral_report.fleiss_kappa,
        100.0 * oral_report.split_vote_fraction
    );
    println!(
        "class: Fleiss kappa {:.3}, split votes {:.0}%",
        class_report.fleiss_kappa,
        100.0 * class_report.split_vote_fraction
    );
    println!("Judging a 65-minute class is far more ambiguous than judging a short\nspeech clip — the regime the RLL confidence estimator was designed for.");
    Ok(())
}
