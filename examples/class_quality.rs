//! The paper's second application: judging the quality of 65-minute online
//! 1-v-1 classes ("class" dataset) — the harder, more ambiguous task.
//!
//! Demonstrates why confidence weighting matters there: the example inspects
//! crowd disagreement, compares the MLE and Bayesian confidence estimates on
//! ambiguous items, and shows the downstream effect on held-out accuracy.
//!
//! ```text
//! cargo run --release --example class_quality
//! ```

use rll::core::{RllConfig, RllPipeline, RllVariant};
use rll::crowd::aggregate::{Aggregator, MajorityVote};
use rll::crowd::{BetaPrior, ConfidenceEstimator};
use rll::data::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ds = presets::class_scaled(280, 13)?;
    println!(
        "class quality: {} recorded classes, {} interaction features, {} annotators\n",
        ds.len(),
        ds.dim(),
        ds.num_workers()
    );

    // How inconsistent are the crowd votes?
    let mut split_votes = 0usize;
    for i in 0..ds.len() {
        let pos = ds.annotations.positive_votes(i)?;
        let d = ds.annotations.annotation_count(i)?;
        if pos != 0 && pos != d {
            split_votes += 1;
        }
    }
    println!(
        "{} of {} classes ({:.0}%) have split votes — judging a 65-minute class is ambiguous",
        split_votes,
        ds.len(),
        100.0 * split_votes as f64 / ds.len() as f64
    );

    // Confidence estimates on a few representative vote patterns.
    let labels = MajorityVote::positive_ties().hard_labels(&ds.annotations)?;
    let prior = BetaPrior::from_class_prior(ds.positive_prior(), 2.0)?;
    let mle = ConfidenceEstimator::Mle;
    let bayes = ConfidenceEstimator::Bayesian(prior);
    println!(
        "\nvotes (of 5)   δ_MLE    δ_Bayesian   (prior mean {:.2})",
        prior.mean()
    );
    for target in [5usize, 4, 3] {
        if let Some(i) = (0..ds.len())
            .find(|&i| ds.annotations.positive_votes(i).unwrap() == target && labels[i] == 1)
        {
            let d = ds.annotations.annotation_count(i)?;
            println!(
                "  {target}/{d} positive   {:.3}    {:.3}",
                mle.positiveness(target, d)?,
                bayes.positiveness(target, d)?
            );
        }
    }
    println!("Bayesian shrinkage keeps 5/5 votes from being treated as absolute certainty\nand pulls 3/5 votes toward the class prior — exactly eq. (2).");

    // Downstream effect: plain RLL vs RLL-Bayesian, averaged over three
    // held-out splits (a single split at this size is too noisy to read).
    println!("\ntraining plain RLL and RLL-Bayesian (3 splits each, same budget)...");
    for variant in [RllVariant::Plain, RllVariant::Bayesian] {
        let seeds = [42u64, 43, 44];
        let (mut acc, mut f1) = (0.0, 0.0);
        for &seed in &seeds {
            let mut pipeline = RllPipeline::new(RllConfig {
                variant,
                epochs: 40,
                groups_per_epoch: 256,
                ..RllConfig::default()
            });
            let report =
                pipeline.fit_evaluate(&ds.features, &ds.annotations, &ds.expert_labels, seed)?;
            acc += report.accuracy;
            f1 += report.f1;
        }
        println!(
            "  {:<14} mean held-out accuracy {:.3}, F1 {:.3}",
            variant.name(),
            acc / seeds.len() as f64,
            f1 / seeds.len() as f64
        );
    }
    println!(
        "At full scale (472 classes, 5-fold CV) the confidence-weighted variants\nlead plain RLL by about a point — see EXPERIMENTS.md Table I."
    );
    Ok(())
}
