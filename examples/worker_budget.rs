//! Annotation-budget planning: how many crowd workers per item do you need?
//!
//! The paper's Table III shows RLL-Bayesian improving monotonically with the
//! worker count `d`. This example reruns that sweep on a mid-size simulated
//! `oral` dataset under the paper's 5-fold protocol and frames it as a budget
//! decision: each extra worker costs one more full listen of every clip.
//!
//! ```text
//! cargo run --release --example worker_budget
//! ```

use rll::core::RllVariant;
use rll::data::presets;
use rll::eval::harness::CrossValidator;
use rll::eval::method::{MethodSpec, TrainBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = presets::oral_scaled(440, 17)?;
    println!(
        "worker budget study on {} clips (each worker listens to every clip once);\n5-fold cross validation per budget\n",
        full.len()
    );
    println!(
        "{:<4}{:<22}{:<18}{:<8}",
        "d", "annotation cost", "accuracy", "F1"
    );
    println!("{}", "-".repeat(52));

    let cv = CrossValidator::paper_protocol(TrainBudget::full(), 42);
    let mut previous: Option<f64> = None;
    let mut monotone = true;
    for d in [1usize, 3, 5] {
        let ds = full.with_workers(d)?;
        let score = cv.evaluate(MethodSpec::Rll(RllVariant::Bayesian), &ds)?;
        println!(
            "{:<4}{:<22}{:.3} ± {:.3}     {:.3}",
            d,
            format!("{} listens", d * full.len()),
            score.accuracy.mean,
            score.accuracy.std,
            score.f1.mean
        );
        if let Some(prev) = previous {
            monotone &= score.accuracy.mean >= prev - 1e-9;
        }
        previous = Some(score.accuracy.mean);
    }

    println!(
        "\nPaper Table III shape: accuracy rises with d — more votes per item let\nthe Bayesian estimator pin down label confidence. Measured trend on this\nrun: {}. At n=440 one fold-std is ~0.03, so occasional inversions at small\nn are expected; the full-size run (`repro_table3 --full`) is monotone.",
        if monotone { "monotone ✔" } else { "not monotone at this size/seed" }
    );
    Ok(())
}
