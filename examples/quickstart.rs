//! Quickstart: walk the RLL architecture (paper Figure 1) stage by stage,
//! then train the full pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rll::core::loss::{group_posterior, group_softmax_loss};
use rll::core::{GroupSampler, RllConfig, RllPipeline, RllVariant, SamplingStrategy};
use rll::crowd::aggregate::{Aggregator, MajorityVote};
use rll::crowd::{BetaPrior, ConfidenceEstimator};
use rll::data::presets;
use rll::nn::{Activation, Mlp, MlpConfig};
use rll::tensor::{init::Init, Rng64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== RLL quickstart: the five stages of Figure 1 ==\n");

    // Simulate a small slice of the paper's `oral` dataset: 200 speech
    // samples, each annotated by 5 crowd workers, expert labels held out.
    let ds = presets::oral_scaled(200, 7)?;
    println!(
        "dataset: {} examples x {} features, {} workers/item, pos:neg = {:.2}",
        ds.len(),
        ds.dim(),
        ds.num_workers(),
        ds.class_ratio().unwrap_or(f64::NAN)
    );

    // Stage 1 — infer hard labels from the crowd (majority vote) and build
    // the GROUPING LAYER: g = <x+_i, x+_j, x-_1, ..., x-_k>.
    let labels = MajorityVote::positive_ties().hard_labels(&ds.annotations)?;
    let sampler = GroupSampler::new(&labels, 3, SamplingStrategy::Uniform, None)?;
    println!(
        "\n[grouping layer] theoretical group space: {} groups from {} labels",
        sampler.group_space_size(),
        ds.len()
    );
    let mut rng = Rng64::seed_from_u64(1);
    let group = sampler.sample(&mut rng)?;
    println!(
        "  sampled group: anchor={}, positive={}, negatives={:?}",
        group.anchor, group.positive, group.negatives
    );

    // Stage 2 — estimate label confidences δ (Bayesian, eq. 2) with the prior
    // set from the class ratio, as the paper prescribes.
    let prior = BetaPrior::from_class_prior(ds.positive_prior(), 2.0)?;
    let estimator = ConfidenceEstimator::Bayesian(prior);
    let confidences = estimator.label_confidences(&ds.annotations, &labels)?;
    println!(
        "\n[confidence] Beta prior = ({:.2}, {:.2})",
        prior.alpha, prior.beta
    );
    for &m in group.members().iter().take(3) {
        let votes = ds.annotations.positive_votes(m)?;
        println!(
            "  example {m}: votes {votes}/5 positive, label {}, δ = {:.3}",
            labels[m], confidences[m]
        );
    }

    // Stage 3 — the multi-layer non-linear projection (shared MLP encoder).
    let mlp = Mlp::new(
        &MlpConfig {
            input_dim: ds.dim(),
            hidden_dims: vec![64, 32],
            output_dim: 16,
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Tanh,
            dropout: 0.0,
            init: Init::XavierNormal,
        },
        &mut rng,
    )?;
    let member_features = ds.features.select_rows(&group.members())?;
    let embeddings = mlp.forward(&member_features)?;
    println!(
        "\n[projection] embedded {} group members into {} dims ({} parameters)",
        embeddings.rows(),
        embeddings.cols(),
        mlp.param_count()
    );

    // Stage 4 — cosine relevance + confidence-weighted softmax (eq. 3).
    let cand_conf: Vec<f64> = group.members()[1..]
        .iter()
        .map(|&m| confidences[m])
        .collect();
    let posterior = group_posterior(&embeddings, &cand_conf, 10.0)?;
    let (loss, grads) = group_softmax_loss(&embeddings, &cand_conf, 10.0)?;
    println!("\n[posterior] p(x+_j | x+_i) = {posterior:.4} (untrained), loss = {loss:.4}");
    println!(
        "  gradient norms per member: {:?}",
        (0..grads.rows())
            .map(|r| format!("{:.3}", rll::tensor::ops::norm(grads.row(r).unwrap())))
            .collect::<Vec<_>>()
    );

    // Stage 5 — the full pipeline: train RLL-Bayesian end to end and score
    // held-out predictions against the expert labels.
    println!("\n[training] RLL-Bayesian, 20 epochs x 128 groups...");
    let mut pipeline = RllPipeline::new(RllConfig {
        variant: RllVariant::Bayesian,
        epochs: 20,
        groups_per_epoch: 128,
        ..RllConfig::default()
    });
    let report = pipeline.fit_evaluate(&ds.features, &ds.annotations, &ds.expert_labels, 42)?;
    println!(
        "held-out: accuracy {:.3}, F1 {:.3} (precision {:.3}, recall {:.3}, n={})",
        report.accuracy, report.f1, report.precision, report.recall, report.n_test
    );
    let trace = pipeline.trace().expect("fitted pipeline has a trace");
    println!(
        "training loss: {:.3} (epoch 1) -> {:.3} (epoch {})",
        trace.epoch_losses.first().unwrap(),
        trace.epoch_losses.last().unwrap(),
        trace.epoch_losses.len()
    );
    Ok(())
}
